"""E21 — the compilation planner vs. the straight (unplanned) pipeline.

The planner (:mod:`repro.plan`) must pay for itself: compile+evaluate
through the pass pipeline (ε-elimination, trimming, predicate fusion,
sequentialisation) must beat the straight Thompson-translation engine on
the library's own workloads, while producing *identical* outputs at every
opt level.  Three measurements:

* the **expressions** workload — the seller-like sequential CSV
  extraction, where the win is the smaller post-pass automaton;
* the **server-logs** workload — the access-log extraction over growing
  documents, same lever (the pass pipeline roughly halves the states the
  per-position sweeps touch);
* a **non-sequential VA** — the CSV automaton plus one bogus
  ``v0⊢`` self-loop on the final state, which no valid run can take but
  which makes the automaton fail Proposition 5.5's check.  Unplanned,
  every oracle call pays the ``O(2^{2k}·3^k)`` general sweep of Theorem
  5.10; planned, the sequentialisation pass (Proposition 5.6) restores
  the polynomial Theorem-5.7 sweep — the asymptotics, not just the
  constant, change.

Acceptance: identical mapping outputs at opt levels 0, 1 and 2 on every
workload, and (full mode) planned compile+evaluate at least
``MINIMUM_SPEEDUP`` faster than unplanned on the non-sequential sweep's
larger configurations.  Under ``REPRO_BENCH_QUICK`` only output equality
is asserted.
"""

import time

import pytest

from benchmarks._harness import print_table, quick_mode, sizes, write_results
from repro.automata.labels import Open
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.engine.compiled import CompiledSpanner
from repro.plan import OPT_LEVELS, plan
from repro.workloads import server_logs
from repro.workloads.expressions import (
    field_document,
    seller_like_sequential_rgx,
)

MINIMUM_SPEEDUP = 1.1

FIELD_COUNTS = sizes(full=[3, 4, 5], quick=[2])
LOG_LINES = sizes(full=[8, 16], quick=[2])
DOCUMENTS_PER_CONFIG = 8


def _timed_run(source, documents, opt_level=None, repeat=2):
    """Compile (planned or not) and evaluate every document.

    Returns best-of-``repeat`` wall-clock seconds for the full
    compile+evaluate cycle (a fresh engine each time, so compilation and
    planning costs are inside the measurement) and the outputs.
    """
    best, outputs = float("inf"), None
    for _ in range(repeat):
        started = time.perf_counter()
        if opt_level is None:
            # The unplanned straight path: Thompson translation, no passes.
            automaton = source if isinstance(source, VA) else to_va(source)
            engine = CompiledSpanner(automaton)
        else:
            engine = CompiledSpanner(plan=plan(source, opt_level))
        outputs = [engine.mappings(document) for document in documents]
        best = min(best, time.perf_counter() - started)
    return best, outputs


def _non_sequential_csv_va(field_count: int) -> VA:
    """The seller-like CSV automaton plus a bogus open on the final state.

    Every accepting path of the chain opens and closes each variable, so
    the extra ``v0⊢`` self-loop is unusable by any valid run — semantics
    are untouched — but a path through it opens ``v0`` twice, so the
    automaton is non-sequential and the unplanned engine falls back to
    the general (FPT, exponential-in-``k``) sweep.
    """
    automaton = to_va(seller_like_sequential_rgx(field_count))
    looped = automaton.transitions + (
        (automaton.final, Open("v0"), automaton.final),
    )
    return VA(automaton.num_states, automaton.initial, automaton.final, looped)


def _sweep(source, documents):
    """Unplanned vs. planned-at-every-level rows; asserts identical outputs."""
    unplanned_time, unplanned_outputs = _timed_run(source, documents)
    row = [unplanned_time]
    for level in OPT_LEVELS:
        planned_time, planned_outputs = _timed_run(source, documents, level)
        assert planned_outputs == unplanned_outputs, (
            f"planned opt {level} diverged from the unplanned engine"
        )
        row.append(planned_time)
    return row, unplanned_outputs


@pytest.mark.benchmark(group="e21")
def test_e21_planner(benchmark):
    _timed_run(seller_like_sequential_rgx(2), ["f0=a;f1=b;"], 1)  # warm caches
    rows = []

    for field_count in FIELD_COUNTS:
        documents = [
            field_document(field_count, value_length=6, seed=seed)
            for seed in range(DOCUMENTS_PER_CONFIG)
        ]
        expression = seller_like_sequential_rgx(field_count)
        times, _ = _sweep(expression, documents)
        rows.append(("expressions", f"k={field_count}", *times, times[0] / times[2]))

    for line_count in LOG_LINES:
        documents = [
            server_logs.generate_document(line_count, seed=seed)
            for seed in range(2)
        ]
        times, _ = _sweep(server_logs.access_expression(), documents)
        rows.append(("server-logs", f"lines={line_count}", *times, times[0] / times[2]))

    non_sequential_speedups = []
    for field_count in FIELD_COUNTS:
        documents = [
            field_document(field_count, value_length=6, seed=seed)
            for seed in range(DOCUMENTS_PER_CONFIG)
        ]
        automaton = _non_sequential_csv_va(field_count)
        times, outputs = _sweep(automaton, documents)
        assert any(outputs), "the non-sequential workload must produce mappings"
        speedup = times[0] / times[2]
        non_sequential_speedups.append((field_count, speedup))
        rows.append(("non-seq VA", f"k={field_count}", *times, speedup))

    print_table(
        "E21: planned vs unplanned compile+evaluate (opt levels 0/1/2)",
        ["workload", "size", "unplanned s", "opt0 s", "opt1 s", "opt2 s", "speedup@1"],
        rows,
    )
    write_results(
        "e21",
        {
            "series": [
                {
                    "workload": row[0],
                    "size": row[1],
                    "unplanned_s": row[2],
                    "opt0_s": row[3],
                    "opt1_s": row[4],
                    "opt2_s": row[5],
                    "speedup_at_opt1": row[6],
                }
                for row in rows
            ],
            "non_sequential_speedups": [
                {"fields": fields, "speedup": speedup}
                for fields, speedup in non_sequential_speedups
            ],
            "minimum_speedup": MINIMUM_SPEEDUP,
        },
    )

    if not quick_mode():
        # The asymptotic claim: on the larger non-sequential configurations
        # the sequentialisation pass must beat the general sweep outright.
        field_count, speedup = max(
            non_sequential_speedups, key=lambda pair: pair[0]
        )
        assert speedup >= MINIMUM_SPEEDUP, (
            f"planned opt 1 only {speedup:.2f}x faster than the unplanned "
            f"general sweep at k={field_count}"
        )

    documents = [
        field_document(FIELD_COUNTS[-1], value_length=6, seed=seed)
        for seed in range(DOCUMENTS_PER_CONFIG)
    ]
    automaton = _non_sequential_csv_va(FIELD_COUNTS[-1])
    benchmark(lambda: _timed_run(automaton, documents, 1))
