"""E19 — the compiled engine vs. the seed oracle enumerator.

The compiled engine (:mod:`repro.engine`) must enumerate exactly the seed
path's mapping set — in the seed's output order — while cutting the
per-output delay.  We run the paper's seller/tax extraction (the E1
workload) over growing land-registry documents and record, for both
engines, the median and maximum gap between consecutive outputs.  The
engine's three levers are measured together: precompiled transition
tables, reachability-based span pruning, and prefix-sharing oracles.

Acceptance: the compiled engine's median per-output delay is at least 2×
lower than the seed's on every measured size (the observed gap is two to
three orders of magnitude).  Under ``REPRO_BENCH_QUICK`` the sweep shrinks
to one tiny size and only the equality of outputs is asserted — the CI
smoke job exists to catch breakage, not to time a loaded runner.
"""

import statistics
import time

import pytest

from benchmarks._harness import print_table, quick_mode, sizes, write_results
from repro.automata.thompson import to_va
from repro.evaluation.enumerate import enumerate_va, enumerate_va_oracle
from repro.workloads import land_registry

ROW_COUNTS = sizes(full=[2, 3, 4, 6], quick=[2])
MINIMUM_SPEEDUP = 2.0


def _delays(iterator):
    gaps, outputs = [], []
    last = time.perf_counter()
    for mapping in iterator:
        now = time.perf_counter()
        gaps.append(now - last)
        last = now
        outputs.append(mapping)
    return gaps, outputs


@pytest.mark.benchmark(group="e19")
def test_e19_compiled_engine(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())
    rows = []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=7)
        seed_gaps, seed_outputs = _delays(enumerate_va_oracle(automaton, document))
        compiled_gaps, compiled_outputs = _delays(enumerate_va(automaton, document))
        assert compiled_outputs == seed_outputs  # same mappings, same order
        if not seed_outputs:
            continue
        seed_median = statistics.median(seed_gaps)
        compiled_median = statistics.median(compiled_gaps)
        speedup = seed_median / compiled_median if compiled_median else float("inf")
        rows.append(
            (
                row_count,
                len(document),
                len(seed_outputs),
                seed_median,
                compiled_median,
                max(seed_gaps),
                max(compiled_gaps),
                speedup,
            )
        )
        if not quick_mode():
            assert speedup >= MINIMUM_SPEEDUP, (
                f"compiled median delay only {speedup:.2f}x better "
                f"at {row_count} rows"
            )
    print_table(
        "E19: compiled engine vs seed oracle enumeration (seller/tax seqRGX)",
        [
            "rows",
            "|d|",
            "#out",
            "seed med s",
            "compiled med s",
            "seed max s",
            "compiled max s",
            "speedup",
        ],
        rows,
    )
    write_results(
        "e19",
        {
            "series": [
                {
                    "rows": row[0],
                    "document_length": row[1],
                    "outputs": row[2],
                    "seed_median_s": row[3],
                    "compiled_median_s": row[4],
                    "seed_max_s": row[5],
                    "compiled_max_s": row[6],
                    "speedup": row[7],
                }
                for row in rows
            ],
            "median_speedup": statistics.median(row[7] for row in rows)
            if rows
            else None,
            "minimum_speedup": MINIMUM_SPEEDUP,
        },
    )

    document = land_registry.generate_document(ROW_COUNTS[-1], seed=7)
    benchmark(lambda: list(enumerate_va(automaton, document)))
