"""E23 — online serving: coalescing + micro-batching vs naive per-request.

PR 5's tentpole: the serving subsystem (:mod:`repro.server`) must beat
the server someone would write first — compile the pattern, evaluate the
document, answer, forget — on *byte-identical responses*.  A closed-loop
load generator (``CLIENT_THREADS`` keep-alive connections, each taking
the next request off a shared counter) drives two in-process servers over
real sockets:

* **naive** (``ServerConfig(naive=True)``, the ablation baseline): no
  spanner cache, no request coalescing, no micro-batching — every
  request compiles its own engine and every document runs alone;
* **coalesced**: the default dispatcher — one compile shared by every
  request for the pattern (plan-fingerprint ``SpannerCache``), documents
  from many requests micro-batched onto the shared executor, warm
  kernel/index/verdict caches across requests.

The request mix models steady serving traffic: one extraction pattern,
requests cycling over a pool of hot documents (the repeated-document
pattern the engine's per-spanner caches target).

Acceptance (the ISSUE 5 contract):

* responses are **byte-identical** between both servers, request by
  request;
* (full mode) coalesced throughput ≥ ``MINIMUM_SPEEDUP`` × naive
  throughput;
* the **graceful-drain check** passes: requests parked in open
  micro-batches when the drain starts are all answered exactly once —
  no lost, no duplicated in-flight requests.

With ``REPRO_BENCH_JSON`` set the measured series lands in
``BENCH_e23.json``.  Under ``REPRO_BENCH_QUICK`` only identity and the
drain check are asserted.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

import pytest

from benchmarks._harness import print_table, quick_mode, sizes, write_results
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.workloads import land_registry

REQUESTS = sizes(full=[320], quick=[24])[0]
CLIENT_THREADS = 8
#: Hot-document pool the requests cycle over (serving traffic repeats
#: documents; the per-spanner index/verdict caches are built for this).
DISTINCT_DOCUMENTS = 12
ROWS_PER_DOCUMENT = 2
MINIMUM_SPEEDUP = 3.0
PATTERN = ".*Seller: x{[^,\n]*}, ID.*, \\$y{[0-9]+[0-9,]*}\n.*"
#: Serving amortises compilation, so the requests ask for the planner's
#: heaviest pipeline (budgeted determinisation) — the trade a
#: long-running server makes on purpose, and exactly the cost the naive
#: baseline pays again on every request.
OPT_LEVEL = 2

DRAIN_REQUESTS = 10


def _documents() -> list[str]:
    pool = [
        land_registry.generate_document(ROWS_PER_DOCUMENT, seed=seed)
        for seed in range(DISTINCT_DOCUMENTS)
    ]
    return [pool[i % DISTINCT_DOCUMENTS] for i in range(REQUESTS)]


def _run_load(
    config: ServerConfig, documents: list[str]
) -> tuple[float, list[bytes], dict]:
    """Closed loop: every thread pulls the next request until all are done."""
    responses: list[bytes | None] = [None] * len(documents)
    counter = itertools.count()
    failures: list[str] = []

    with ServerThread(config) as server:
        host, port = server.address

        def drive() -> None:
            client = ServerClient(host, port)
            try:
                while True:
                    position = next(counter)
                    if position >= len(documents):
                        return
                    body = json.dumps(
                        {
                            "pattern": PATTERN,
                            "document": documents[position],
                            "opt_level": OPT_LEVEL,
                        }
                    ).encode("utf-8")
                    status, raw = client.request_raw("POST", "/enumerate", body)
                    if status != 200:
                        failures.append(f"request {position}: HTTP {status}")
                        return
                    responses[position] = raw
            finally:
                client.close()

        threads = [
            threading.Thread(target=drive, name=f"e23-client-{i}")
            for i in range(CLIENT_THREADS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        with ServerClient(host, port) as observer:
            snapshot = observer.healthz()
            metrics = observer.metrics_text()

    assert not failures, failures
    assert all(response is not None for response in responses)
    counters = {}
    for line in metrics.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, value = line.rsplit(" ", 1)
        counters[name] = float(value)
    counters["healthz"] = snapshot
    return elapsed, responses, counters


def _drain_check() -> None:
    """Requests parked in an open batch survive a drain, exactly once.

    The batch delay is far beyond the test horizon, so nothing flushes by
    timer: every request is parked in an open micro-batch when the drain
    begins, and only the drain's flush can answer it.
    """
    config = ServerConfig(
        port=0, batch_max_delay=30.0, batch_max_size=10_000
    )
    answers: dict[int, dict] = {}
    errors: list[str] = []
    with ServerThread(config) as server:
        host, port = server.address
        dispatcher = server.server.dispatcher

        def post(position: int) -> None:
            with ServerClient(host, port) as client:
                reply = client.enumerate(".*x{a}b", [f"{'z' * position}ab"])
                if position in answers:
                    errors.append(f"request {position} answered twice")
                answers[position] = reply

        threads = [
            threading.Thread(target=post, args=(position,))
            for position in range(DRAIN_REQUESTS)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if dispatcher.stats()["pending_documents"] >= DRAIN_REQUESTS:
                break
            time.sleep(0.005)
        else:
            raise AssertionError(
                f"only {dispatcher.stats()['pending_documents']} of "
                f"{DRAIN_REQUESTS} requests reached the batch queue"
            )
        server.drain(timeout=30.0)
        for thread in threads:
            thread.join(timeout=10.0)
    assert not errors, errors
    assert sorted(answers) == list(range(DRAIN_REQUESTS)), (
        f"lost in-flight requests: {sorted(set(range(DRAIN_REQUESTS)) - set(answers))}"
    )
    for position, reply in answers.items():
        expected = [{"x": "a"}]
        assert reply["results"][0]["mappings"] == expected, (position, reply)


@pytest.mark.benchmark(group="e23")
def test_e23_server_throughput(benchmark):
    documents = _documents()

    naive_config = ServerConfig(port=0, naive=True)
    batched_config = ServerConfig(
        port=0, workers=0, batch_max_size=16, batch_max_delay=0.002
    )

    naive_seconds, naive_responses, naive_counters = _run_load(
        naive_config, documents
    )
    batched_seconds, batched_responses, batched_counters = _run_load(
        batched_config, documents
    )

    for position, (naive, batched) in enumerate(
        zip(naive_responses, batched_responses)
    ):
        assert naive == batched, (
            f"request {position}: naive and coalesced responses differ"
        )

    speedup = naive_seconds / batched_seconds if batched_seconds else float("inf")
    batches = batched_counters.get("repro_batches_total", 0)
    batched_docs = batched_counters.get("repro_batch_documents_sum", 0)
    mean_batch = batched_docs / batches if batches else 0.0
    coalesced = batched_counters.get("repro_compiles_coalesced_total", 0)

    print_table(
        f"E23: server throughput, {REQUESTS} single-document requests over "
        f"{CLIENT_THREADS} keep-alive connections",
        ["server", "seconds", "req/s", "speedup", "mean batch", "coalesced"],
        [
            (
                "naive",
                naive_seconds,
                REQUESTS / naive_seconds,
                1.0,
                1.0,
                0,
            ),
            (
                "coalesced+batched",
                batched_seconds,
                REQUESTS / batched_seconds,
                speedup,
                mean_batch,
                int(coalesced),
            ),
        ],
    )

    _drain_check()
    print("drain check: all parked requests answered exactly once")

    write_results(
        "e23",
        {
            "requests": REQUESTS,
            "client_threads": CLIENT_THREADS,
            "distinct_documents": DISTINCT_DOCUMENTS,
            "naive_seconds": naive_seconds,
            "batched_seconds": batched_seconds,
            "naive_req_per_s": REQUESTS / naive_seconds,
            "batched_req_per_s": REQUESTS / batched_seconds,
            "speedup": speedup,
            "mean_batch_documents": mean_batch,
            "compiles_coalesced": coalesced,
            "minimum_speedup": MINIMUM_SPEEDUP,
            "byte_identical": True,
            "drain_check": "passed",
        },
    )

    if not quick_mode():
        assert mean_batch > 1.0, (
            f"micro-batching never grouped documents (mean batch {mean_batch:.2f})"
        )
        assert speedup >= MINIMUM_SPEEDUP, (
            f"coalesced/batched server only {speedup:.2f}x the naive "
            f"one-request-one-eval baseline (need {MINIMUM_SPEEDUP}x)"
        )

    benchmark(lambda: _run_load(batched_config, documents[: len(documents) // 4]))
