"""E8 — Theorem 5.10: Eval[VA] is FPT in the number of variables.

Claim: with the variable count ``k`` as the parameter, Eval is
``O(f(k) · poly(n))``.  We sweep ``k`` at fixed document length (runtime
grows exponentially in k on a non-sequential star-of-unions family) and
``n`` at fixed k (bounded polynomial slope).
"""

import pytest

from benchmarks._harness import growth_ratios, loglog_slope, measure, print_table
from repro.automata.thompson import to_va
from repro.evaluation.eval_problem import eval_general_va
from repro.rgx.ast import VarBind, char, star, union
from repro.spans.mapping import ExtendedMapping

VARIABLE_COUNTS = [1, 2, 3, 4, 5]
DOCUMENT_LENGTHS = [8, 16, 32, 64]


def star_of_bindings(k: int):
    """``(x1{a} | x2{a} | ... | xk{a})*`` — non-sequential, k variables."""
    options = [VarBind(f"x{i}", char("a")) for i in range(k)]
    return star(union(*options) if len(options) > 1 else options[0])


@pytest.mark.benchmark(group="e08")
def test_e08_fpt_in_variables(benchmark):
    rows = []
    timings = []
    document = "a" * 6
    for k in VARIABLE_COUNTS:
        automaton = to_va(star_of_bindings(k))
        elapsed = measure(
            lambda: eval_general_va(automaton, document, ExtendedMapping.empty()),
            repeat=1,
        )
        rows.append((k, automaton.size(), elapsed))
        timings.append(elapsed)
    print_table(
        "E8a: general Eval vs variable count k (fixed |d|=6)",
        ["k", "|A|", "time s"],
        rows,
    )
    print(
        f"growth ratios: {[f'{r:.1f}' for r in growth_ratios(timings)]} "
        "(exponential in k — the FPT parameter)"
    )

    automaton = to_va(star_of_bindings(3))
    rows = []
    lengths, timings = [], []
    for n in DOCUMENT_LENGTHS:
        document = "a" * n
        elapsed = measure(
            lambda: eval_general_va(automaton, document, ExtendedMapping.empty()),
            repeat=2,
        )
        rows.append((n, elapsed))
        lengths.append(n)
        timings.append(elapsed)
    slope = loglog_slope(lengths, timings)
    print_table(
        "E8b: general Eval vs document length (fixed k=3)",
        ["|d|", "time s"],
        rows,
    )
    print(f"log-log slope vs |d|: {slope:.2f} (polynomial in n at fixed k)")
    assert slope < 4.0

    benchmark(
        lambda: eval_general_va(automaton, "a" * 16, ExtendedMapping.empty())
    )
