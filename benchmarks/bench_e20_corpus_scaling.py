"""E20 — corpus evaluation throughput vs. worker count.

The service layer (:mod:`repro.service`) shards a corpus across a process
pool; each worker compiles its own engine once and serves every chunk it
receives.  We evaluate the seller/tax extraction over a land-registry
corpus and measure throughput (documents/second) for the serial
``evaluate_many`` baseline and for ``evaluate_corpus`` at 1, 2, and 4
workers, in ordered mode.

Acceptance (the PR 2 contract):

* ordered-mode outputs are **byte-identical** across all configurations —
  serialised canonically, every worker count produces exactly the bytes
  the serial baseline produces;
* on a machine with ≥2 usable cores, 4 workers beat the serial baseline's
  throughput on a ≥200-document corpus.  On a single-core runner (or
  under ``REPRO_BENCH_QUICK``) the speedup assertion is skipped — a
  process pool cannot beat serial without parallel hardware — but the
  identity assertion always runs.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks._harness import (
    measure,
    print_table,
    quick_mode,
    sizes,
    write_results,
)
from repro.service import evaluate_corpus
from repro.workloads import land_registry

DOCUMENT_COUNT = sizes(full=[240], quick=[12])[0]
ROWS_PER_DOCUMENT = 2 if quick_mode() else 8
WORKER_COUNTS = [1, 2, 4]
MINIMUM_CORPUS = 200


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _canonical(outputs) -> bytes:
    """Deterministic bytes for a list of per-document mapping sets."""
    decoded = [
        sorted(
            sorted((variable, [span.begin, span.end]) for variable, span in mapping.items())
            for mapping in output
        )
        for output in outputs
    ]
    return json.dumps(decoded, sort_keys=True).encode()


@pytest.mark.benchmark(group="e20")
def test_e20_corpus_scaling(benchmark):
    corpus = land_registry.corpus(
        DOCUMENT_COUNT, rows_per_document=ROWS_PER_DOCUMENT, seed=11
    )
    texts = [text for _, text in corpus]
    engine = land_registry.compiled_spanner()

    # Serial baseline: the engine's own batch API.
    serial_seconds = measure(lambda: engine.evaluate_many(texts), repeat=1)
    baseline = _canonical(engine.evaluate_many(texts))

    def run_corpus(workers: int):
        results = list(
            evaluate_corpus(engine, corpus, workers=workers, ordered=True)
        )
        assert all(result.ok for result in results)
        return [result.mappings for result in results]

    rows = [
        (
            "evaluate_many",
            1,
            serial_seconds,
            DOCUMENT_COUNT / serial_seconds,
            1.0,
        )
    ]
    parallel_seconds = {}
    for workers in WORKER_COUNTS:
        outputs = run_corpus(workers)
        assert _canonical(outputs) == baseline, (
            f"ordered mode with {workers} workers diverged from serial output"
        )
        seconds = measure(lambda w=workers: run_corpus(w), repeat=1)
        parallel_seconds[workers] = seconds
        rows.append(
            (
                "evaluate_corpus",
                workers,
                seconds,
                DOCUMENT_COUNT / seconds,
                serial_seconds / seconds,
            )
        )

    print_table(
        f"E20: corpus throughput, {DOCUMENT_COUNT} registry documents "
        f"x {ROWS_PER_DOCUMENT} rows ({_effective_cpus()} usable cores)",
        ["api", "workers", "seconds", "docs/s", "speedup"],
        rows,
    )

    write_results(
        "e20",
        {
            "documents": DOCUMENT_COUNT,
            "rows_per_document": ROWS_PER_DOCUMENT,
            "usable_cores": _effective_cpus(),
            "series": [
                {
                    "api": api,
                    "workers": workers,
                    "seconds": seconds,
                    "docs_per_s": throughput,
                    "speedup": speedup,
                }
                for api, workers, seconds, throughput, speedup in rows
            ],
        },
    )

    if (
        not quick_mode()
        and DOCUMENT_COUNT >= MINIMUM_CORPUS
        and _effective_cpus() >= 2
    ):
        assert parallel_seconds[4] < serial_seconds, (
            f"4 workers ({parallel_seconds[4]:.2f}s) did not beat serial "
            f"evaluate_many ({serial_seconds:.2f}s) on "
            f"{_effective_cpus()} cores"
        )

    benchmark(lambda: run_corpus(WORKER_COUNTS[-1]))
