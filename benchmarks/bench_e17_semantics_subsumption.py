"""E17 — Theorems 4.1/4.2: the mapping semantics subsumes both previous
proposals.

* funcRGX outputs are total over var(γ) — the *relations* of [8];
* spanRGX joined with all total mappings equals the semantics of [2].

Measured as a correctness sweep over random functional/span expressions
plus the timing of the subsumption checks themselves.
"""

import pytest

from benchmarks._harness import measure, print_table
from repro.rgx.properties import is_functional
from repro.rgx.semantics import classical_semantics, mappings, outputs_relation
from repro.spans.mapping import all_total_mappings, join
from repro.rgx.parser import parse
from repro.workloads.expressions import random_document

FUNCTIONAL_EXPRESSIONS = [
    "x{a*}y{b*}",
    "x{a}|x{b}",
    "x{y{(a|b)*}a}|x{y{b}b}",
    "(a|b)*x{a|b}",
]
SPAN_EXPRESSIONS = ["x{.*}a|b", "a*x{.*}b*", "x{.*}(y{.*}|ε)a"]
LENGTHS = [2, 4, 6]


@pytest.mark.benchmark(group="e17")
def test_e17_semantics_subsumption(benchmark):
    rows = []
    for text in FUNCTIONAL_EXPRESSIONS:
        expression = parse(text)
        assert is_functional(expression)
        checked = 0
        for seed in range(3):
            for length in LENGTHS:
                document = random_document(length, seed=seed)
                assert outputs_relation(expression, document)
                for mapping in mappings(expression, document):
                    assert mapping.domain == expression.variables()
                checked += 1
        elapsed = measure(
            lambda: outputs_relation(expression, random_document(6, seed=0)),
            repeat=2,
        )
        rows.append(("Thm 4.1 (funcRGX ⇒ relations)", text, checked, elapsed))
    for text in SPAN_EXPRESSIONS:
        expression = parse(text)
        checked = 0
        for seed in range(2):
            for length in LENGTHS:
                document = random_document(length, seed=seed)
                expected = join(
                    all_total_mappings(expression.variables(), length),
                    mappings(expression, document),
                )
                assert classical_semantics(expression, document) == expected
                checked += 1
        elapsed = measure(
            lambda: classical_semantics(expression, random_document(4, seed=0)),
            repeat=2,
        )
        rows.append(("Thm 4.2 ([2] semantics)", text, checked, elapsed))
    print_table(
        "E17: subsumption of the previous semantics",
        ["claim", "expression", "documents checked", "time s"],
        rows,
    )

    expression = parse("x{.*}a|b")
    benchmark(lambda: classical_semantics(expression, "ababa"))
