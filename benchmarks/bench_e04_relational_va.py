"""E4 — Proposition 5.4: NonEmp of *relational* VA is NP-complete.

Claim: restricting VA to produce relations does not restore tractability.
Workload: the Figure 4 Hamiltonian-path family; runtime grows
super-polynomially in the vertex count, answers certified by brute force.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.reductions.hamiltonian import (
    brute_force_hamiltonian,
    random_graph,
    to_relational_va,
    va_nonempty_on_epsilon,
)

VERTEX_COUNTS = [3, 4, 5, 6]


@pytest.mark.benchmark(group="e04")
def test_e04_relational_va_nonemptiness(benchmark):
    rows = []
    timings = []
    for vertex_count in VERTEX_COUNTS:
        graph = random_graph(vertex_count, 0.5, seed=3)
        automaton = to_relational_va(graph)
        answer = va_nonempty_on_epsilon(graph)
        assert answer == brute_force_hamiltonian(graph)
        elapsed = measure(lambda: va_nonempty_on_epsilon(graph), repeat=1)
        rows.append((vertex_count, automaton.size(), answer, elapsed))
        timings.append(elapsed)
    print_table(
        "E4: NonEmp of relational VA on Hamiltonian instances (Prop 5.4)",
        ["|V|", "|A|", "non-empty", "time s"],
        rows,
    )
    print(
        f"growth ratios: {[f'{r:.1f}' for r in growth_ratios(timings)]} "
        "(super-polynomial in |V| while |A| grows quadratically)"
    )

    graph = random_graph(4, 0.5, seed=3)
    benchmark(lambda: va_nonempty_on_epsilon(graph))
