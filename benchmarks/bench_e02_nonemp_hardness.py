"""E2 — Theorem 5.2: NonEmp[spanRGX] is NP-complete.

Claim: non-emptiness of spanRGX (hence of RGX and VA) cannot be decided
in polynomial time unless P = NP.  We run the general evaluator on the
paper's 1-IN-3-SAT reduction family and watch the runtime grow
super-polynomially with the clause count, while a brute-force solver of
the source instances certifies every answer.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.reductions.one_in_three_sat import (
    brute_force_one_in_three,
    random_instance,
    spanrgx_nonempty_on_epsilon,
    to_spanrgx,
)

CLAUSE_COUNTS = [2, 3, 4, 5, 6]


@pytest.mark.benchmark(group="e02")
def test_e02_nonemp_spanrgx_hardness(benchmark):
    rows = []
    timings = []
    for clause_count in CLAUSE_COUNTS:
        instance = random_instance(clause_count, 4, seed=11)
        expression = to_spanrgx(instance)
        answer = spanrgx_nonempty_on_epsilon(instance)
        assert answer == brute_force_one_in_three(instance)
        elapsed = measure(lambda: spanrgx_nonempty_on_epsilon(instance), repeat=1)
        rows.append((clause_count, expression.size(), answer, elapsed))
        timings.append(elapsed)
    ratios = growth_ratios(timings)
    print_table(
        "E2: NonEmp[spanRGX] on the 1-IN-3-SAT family (Theorem 5.2)",
        ["clauses", "|γ|", "non-empty", "time s"],
        rows,
    )
    print(f"growth ratios: {[f'{r:.1f}' for r in ratios]} (super-polynomial ⇔ NP-hard family)")
    # The expression grows polynomially while time grows much faster.
    assert timings[-1] > timings[0]

    small = random_instance(4, 4, seed=11)
    benchmark(lambda: spanrgx_nonempty_on_epsilon(small))
