"""E15 — Propositions 4.8/4.9 + Theorem 4.10: rule → tree-like unions.

Claim: every simple rule is a union of functional dag-like rules (one
exponential blowup) and every satisfiable dag-like rule a union of
functional tree-like rules (another); RGX ≡ unions of simple rules.  We
measure the union sizes along the pipeline on rules with growing
disjunction width — the blowup the paper predicts — and verify semantic
equality (projected to the source variables) on probe documents.
"""

import pytest

from benchmarks._harness import measure, print_table
from repro.rgx.ast import union
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.rules.rule import Rule, bare
from repro.rules.translate import (
    daglike_to_treelike,
    to_functional_daglike,
    union_of_rules_to_rgx,
)

WIDTHS = [1, 2, 3]
PROBES = ["", "a", "b", "ab", "ba", "ab#", "#"]


def wide_rule(width: int) -> Rule:
    root = union(*(bare(f"x{i}") for i in range(width))) if width > 1 else bare("x0")
    conjuncts = tuple(
        (f"x{i}", parse("ab*|ba*") if i % 2 == 0 else parse("a*|b*"))
        for i in range(width)
    )
    return Rule(root, conjuncts)


@pytest.mark.benchmark(group="e15")
def test_e15_rule_translation_blowup(benchmark):
    rows = []
    for width in WIDTHS:
        rule = wide_rule(width)
        dags = to_functional_daglike(rule)
        trees = [tree for dag in dags for tree in daglike_to_treelike(dag)]
        expression = union_of_rules_to_rgx([rule])
        keep = rule.variables()
        for probe in PROBES:
            expected = rule.evaluate(probe)
            via_trees = set()
            for tree in trees:
                via_trees |= {m.project(keep) for m in tree.evaluate(probe)}
            assert via_trees == expected, (width, probe)
            via_rgx = {m.project(keep) for m in mappings(expression, probe)}
            assert via_rgx == expected, (width, probe)
        elapsed = measure(lambda: union_of_rules_to_rgx([rule]), repeat=1)
        rows.append(
            (width, len(dags), len(trees), expression.size(), elapsed)
        )
    print_table(
        "E15: rule → dag-like → tree-like → RGX pipeline sizes",
        ["union width", "#dag-like", "#tree-like", "|RGX|", "time s"],
        rows,
    )

    rule = wide_rule(2)
    benchmark(lambda: union_of_rules_to_rgx([rule]))
