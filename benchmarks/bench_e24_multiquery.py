"""E24 — multi-query plan sharing: one QuerySet engine vs. N independent runs.

PR 6's tentpole: the query-set compiler
(:class:`repro.service.queryset.QuerySet`) factors common sub-automata
across a set of registered algebra queries — projections peel off to the
decode edge, cores deduplicate by plan fingerprint, and the distinct
cores union into **one** combined engine — so each document is scanned
once no matter how many queries are registered.

The workload is the multi-tenant shape the ROADMAP names: twenty-four
named queries over a land-registry-style corpus, built from three
distinct cores (seller records, buyer records, and their union) with
the full projection lattice over the three variables on top.  The
baseline compiles one independent engine per query and scans every
document twenty-four times; the query set answers all twenty-four from
one pass.  The corpus is sized past the engine's per-spanner
document-index LRU so every timed pass pays the per-document
reachability sweep — the serving scenario (a stream of fresh
documents), and exactly the cost the shared engine amortises.

Acceptance: per-query decoded mappings byte-identical to the independent
engines on every document, and (full mode) at least
``MINIMUM_SPEEDUP``x faster end-to-end.  With ``REPRO_BENCH_JSON`` set,
the measured series lands in ``BENCH_e24.json``.  Under
``REPRO_BENCH_QUICK`` only output equality is asserted.
"""

import pytest

from benchmarks._harness import (
    print_table,
    quick_mode,
    sizes,
    write_results,
)
from repro.algebra import query
from repro.engine.compiled import CompiledSpanner
from repro.plan import plan as build_plan
from repro.service.queryset import QuerySet

# Past the engine's 64-entry per-spanner document-index LRU (see above).
DOCUMENT_COUNT = sizes(full=[96], quick=[4])[0]
ROWS_PER_DOCUMENT = sizes(full=[40], quick=[4])[0]
OPT_LEVEL = 1
MINIMUM_SPEEDUP = 2.0
REPEAT = 3

_SELLER_RECORDS = ".*Seller: x{[^,]*}, ID y{[0-9]+}, lot z{[0-9]+}.*"
_BUYER_RECORDS = ".*Buyer: x{[^,]*}, ID y{[0-9]+}, lot z{[0-9]+}.*"

#: The projection lattice over {x: name, y: id, z: lot} — eight query
#: shapes per core, ``None`` meaning the unprojected record query.
_SUBSETS = (
    ("records", None),
    ("names", ("x",)),
    ("ids", ("y",)),
    ("lots", ("z",)),
    ("name_ids", ("x", "y")),
    ("name_lots", ("x", "z")),
    ("id_lots", ("y", "z")),
    ("exists", ()),
)


def _expressions():
    """Twenty-four named algebra queries over three distinct cores."""
    seller = query(_SELLER_RECORDS)
    buyer = query(_BUYER_RECORDS)
    cores = {"seller": seller, "buyer": buyer, "party": seller.union(buyer)}
    return {
        f"{prefix}_{label}": core if keep is None else core.project(keep)
        for prefix, core in cores.items()
        for label, keep in _SUBSETS
    }


def _register(queryset: QuerySet) -> None:
    """The same queries in wire-spec form, exercising Ref sharing."""
    queryset.register("seller_records", _SELLER_RECORDS)
    queryset.register("buyer_records", _BUYER_RECORDS)
    queryset.register(
        "party_records",
        {
            "op": "union",
            "of": [
                {"op": "ref", "name": "seller_records"},
                {"op": "ref", "name": "buyer_records"},
            ],
        },
    )
    for prefix in ("seller", "buyer", "party"):
        for label, keep in _SUBSETS:
            if keep is None:
                continue
            queryset.register(
                f"{prefix}_{label}",
                {
                    "op": "project",
                    "of": {"op": "ref", "name": f"{prefix}_records"},
                    "keep": list(keep),
                },
            )


def _corpus(documents: int, rows: int) -> list[str]:
    """Registry-style documents: mostly filler, a few deal rows each.

    Matches are kept sparse so the per-document cost is the reachability
    index sweep, not output enumeration — the shape a serving deployment
    sees, and the cost the shared engine pays once instead of N times.
    """
    names = ("John", "Mark", "Ann", "Sue", "Pat")
    texts = []
    for position in range(documents):
        lines = []
        for row in range(rows):
            if row % (rows // 2 or 1) == 0:
                role = "Seller" if (position + row) % 2 == 0 else "Buyer"
                name = names[(position * 3 + row) % len(names)]
                lines.append(
                    f"{role}: {name}, ID {position % 10}{row}, lot {row % 7}"
                )
            else:
                lines.append(
                    f"Log: parcel {position}-{row} surveyed and filed"
                )
        texts.append("\n".join(lines))
    return texts


def _best_of(action, repeat: int = REPEAT) -> float:
    import time

    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def test_multiquery_sharing():
    documents = _corpus(DOCUMENT_COUNT, ROWS_PER_DOCUMENT)
    expressions = _expressions()

    # Baseline: one independent engine per query (compiled up front — the
    # comparison is about evaluation sharing, not compile time).
    independent = {
        name: CompiledSpanner(
            plan=build_plan(expression, opt_level=OPT_LEVEL)
        )
        for name, expression in expressions.items()
    }

    queryset = QuerySet(opt_level=OPT_LEVEL)
    _register(queryset)
    stats = queryset.stats()
    assert stats["queries"] == len(expressions) == 24
    assert stats["cores"] == 3, queryset.explain()
    assert sorted(queryset.names()) == sorted(expressions)

    # Byte-identical decoded mappings, per query, per document.
    for text in documents:
        shared = queryset.extract(text)
        for name, engine in independent.items():
            assert shared[name] == engine.extract(text), (name, text)

    def run_independent():
        for text in documents:
            for engine in independent.values():
                engine.extract(text)

    def run_shared():
        for text in documents:
            queryset.extract(text)

    run_independent()  # warm both paths before timing
    run_shared()
    baseline = _best_of(run_independent)
    shared_time = _best_of(run_shared)
    speedup = baseline / shared_time if shared_time > 0 else float("inf")

    print_table(
        "E24: multi-query plan sharing "
        f"({len(expressions)} queries, {stats['cores']} cores, "
        f"{len(documents)} documents)",
        ["path", "seconds", "speedup"],
        [
            ["independent engines", baseline, 1.0],
            ["shared QuerySet engine", shared_time, speedup],
        ],
    )
    write_results(
        "e24",
        {
            "queries": stats["queries"],
            "cores": stats["cores"],
            "documents": len(documents),
            "rows_per_document": ROWS_PER_DOCUMENT,
            "opt_level": OPT_LEVEL,
            "engine_states": stats["engine_states"],
            "independent_seconds": baseline,
            "shared_seconds": shared_time,
            "speedup": speedup,
        },
    )
    if quick_mode():
        pytest.skip("quick mode: outputs checked, speedup not asserted")
    assert speedup >= MINIMUM_SPEEDUP, (
        f"shared engine only {speedup:.2f}x faster "
        f"(need {MINIMUM_SPEEDUP}x); baseline {baseline:.4f}s, "
        f"shared {shared_time:.4f}s"
    )
