"""E16 — Proposition 6.5: every VA determinises (exponential worst case).

Claim: the subset construction over letters *and* variable operations
preserves the semantics; the classical family ``(a|b)*a(a|b)^n`` exhibits
the exponential state blowup, while the variable-marked variant stays
linear (the operation symbol resolves the nondeterminism) — an
instructive contrast recorded in EXPERIMENTS.md.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.automata.determinize import determinize, is_complete_deterministic
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.rgx.parser import parse

SUFFIXES = [2, 3, 4, 5, 6, 7]


@pytest.mark.benchmark(group="e16")
def test_e16_determinization(benchmark):
    rows = []
    dfa_sizes = []
    for n in SUFFIXES:
        plain = to_va(parse("(a|b)*a" + "(a|b)" * n))
        marked = to_va(parse("(a|b)*x{a}" + "(a|b)" * n))
        plain_dfa = determinize(plain)
        marked_dfa = determinize(marked)
        assert is_complete_deterministic(plain_dfa)
        assert is_complete_deterministic(marked_dfa)
        if n <= 4:
            for probe in ["", "a" * (n + 1), "ab" * n, "b" * (n + 2)]:
                assert evaluate_va(marked_dfa, probe) == evaluate_va(
                    marked, probe
                )
        elapsed = measure(lambda: determinize(plain), repeat=1)
        rows.append(
            (n, plain.num_states, plain_dfa.num_states, marked_dfa.num_states, elapsed)
        )
        dfa_sizes.append(plain_dfa.num_states)
    print_table(
        "E16: determinisation blowup, (a|b)*a(a|b)^n (Prop 6.5)",
        ["n", "NFA states", "DFA states", "DFA states (marked)", "time s"],
        rows,
    )
    print(
        f"DFA growth ratios: {[f'{r:.2f}' for r in growth_ratios(dfa_sizes)]} "
        "(≈2 each step: exponential, as the subset construction predicts)"
    )
    assert all(ratio > 1.6 for ratio in growth_ratios(dfa_sizes))

    nfa = to_va(parse("(a|b)*a(a|b)(a|b)(a|b)(a|b)"))
    benchmark(lambda: determinize(nfa))
