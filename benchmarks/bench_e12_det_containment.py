"""E12 — Theorems 6.6/6.7: determinism lowers containment complexity, and
point-disjointness makes it polynomial.

Series (a): the DNF-validity family (deterministic sequential, *not*
point-disjoint) through the general algorithm — the coNP-hard case.
Series (b): deterministic sequential *point-disjoint* chains through the
pairwise simulation of Theorem 6.7 — near-linear.
"""

import pytest

from benchmarks._harness import growth_ratios, loglog_slope, measure, print_table
from repro.analysis.containment import (
    contained_det_sequential_point_disjoint,
    contained_va,
)
from repro.automata.determinize import determinize
from repro.automata.sequential import make_sequential
from repro.automata.thompson import to_va
from repro.reductions.dnf_validity import (
    brute_force_valid,
    random_dnf,
    to_containment_instance,
)
from repro.workloads.expressions import seller_like_sequential_rgx

CLAUSE_COUNTS = [1, 2, 3]
FIELD_COUNTS = [1, 2, 4, 8]


@pytest.mark.benchmark(group="e12")
def test_e12_det_containment(benchmark):
    rows = []
    timings = []
    for clauses in CLAUSE_COUNTS:
        formula = random_dnf(clauses, 3, seed=7)
        first, second = to_containment_instance(formula)
        answer = contained_va(first, second)
        assert answer == brute_force_valid(formula)
        elapsed = measure(lambda: contained_va(first, second), repeat=1)
        rows.append((clauses, first.size(), second.size(), answer, elapsed))
        timings.append(elapsed)
    print_table(
        "E12a: det sequential containment, DNF family (Theorem 6.6)",
        ["clauses", "|A1|", "|A2|", "contained", "time s"],
        rows,
    )
    print(f"growth ratios: {[f'{r:.1f}' for r in growth_ratios(timings)]}")

    rows = []
    sizes, timings = [], []
    for fields in FIELD_COUNTS:
        expression = seller_like_sequential_rgx(fields)
        first = determinize(make_sequential(to_va(expression)))
        second = first
        answer = contained_det_sequential_point_disjoint(first, second)
        assert answer
        elapsed = measure(
            lambda: contained_det_sequential_point_disjoint(first, second),
            repeat=2,
        )
        rows.append((fields, first.size(), answer, elapsed))
        sizes.append(first.size())
        timings.append(elapsed)
    slope = loglog_slope(sizes, timings)
    print_table(
        "E12b: point-disjoint det sequential containment (Theorem 6.7)",
        ["fields", "|A|", "contained", "time s"],
        rows,
    )
    print(f"log-log slope vs |A|: {slope:.2f} (polynomial — Theorem 6.7)")
    assert slope < 3.5

    formula = random_dnf(2, 3, seed=7)
    first, second = to_containment_instance(formula)
    benchmark(lambda: contained_va(first, second))
