"""E1 — Theorems 5.1 + 5.7: polynomial-delay enumeration for seqRGX.

Claim: Eval of sequential RGX is PTIME, hence Algorithm 2 enumerates
``⟦γ⟧_d`` with polynomial delay.  We enumerate the paper's seller/tax
extraction over growing land-registry documents and record the maximum
and mean gap between consecutive outputs; the max-delay curve must scale
polynomially (bounded log-log slope), and the automaton stays fixed while
the document grows.
"""

import time

import pytest

from benchmarks._harness import loglog_slope, print_table, quick_mode, sizes
from repro.automata.thompson import to_va
from repro.evaluation.enumerate import enumerate_va
from repro.workloads import land_registry

ROW_COUNTS = sizes(full=[1, 2, 3, 4, 6], quick=[2, 3])


def _delays(automaton, document):
    gaps = []
    last = time.perf_counter()
    count = 0
    for _ in enumerate_va(automaton, document):
        now = time.perf_counter()
        gaps.append(now - last)
        last = now
        count += 1
    return gaps, count


@pytest.mark.benchmark(group="e01")
def test_e01_enumeration_delay(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())
    rows = []
    lengths, max_delays = [], []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=7)
        sellers = sum(
            1
            for r in land_registry.generate_rows(row_count, seed=7)
            if r.kind == "Seller"
        )
        if sellers == 0:
            continue  # nothing to enumerate at this size
        gaps, outputs = _delays(automaton, document)
        assert outputs == sellers  # one mapping per seller row
        max_delay = max(gaps)
        rows.append(
            (row_count, len(document), outputs, max_delay, sum(gaps) / len(gaps))
        )
        lengths.append(len(document))
        max_delays.append(max_delay)
    slope = loglog_slope(lengths, max_delays)
    print_table(
        "E1: polynomial-delay enumeration (seller/tax seqRGX)",
        ["rows", "|d|", "#outputs", "max delay s", "mean delay s"],
        rows,
    )
    print(f"max-delay log-log slope vs |d|: {slope:.2f} (polynomial ⇔ bounded; paper: PTIME Eval)")
    if not quick_mode():  # tiny sweeps are too noisy for a slope estimate
        assert slope < 5.0

    document = land_registry.generate_document(2, seed=7)
    benchmark(lambda: list(enumerate_va(automaton, document)))
