"""E25 — the flat-table kernel vs. the dict bitmask kernel.

This PR's tentpole: interned integer state ids walking contiguous
``array``-backed transition rows (:class:`~repro.engine.kernel.FlatTables`,
:class:`~repro.engine.oracle.FlatNodeSweep`) must beat the dict-keyed
``delta[(mask, class)]`` memo they compile away — on *identical outputs* —
across the same two serving shapes benchmark E22 locked down for the
layer below:

* **enumeration delay** — seller/tax extraction over land-registry
  documents large enough that span verdicts dominate (the flat sweep's
  lazy open-sweep and backward co-acceptance caches are the win);
* **corpus throughput** — server-logs documents through one warm engine,
  the worker-process serving pattern.

Both paths share the compiled tables and alphabet classes; the only
variable is the flat layer (:func:`~repro.engine.kernel.flat_disabled`
pins the old dict path, exactly as ``kernel_disabled`` pins E22's
baseline).  Warm-vs-warm: each side keeps its own memo across repeats.

Acceptance: byte-identical outputs everywhere, and (full mode) a median
speedup of at least ``MINIMUM_SPEEDUP`` on both workload families.  With
``REPRO_BENCH_JSON`` set the series lands in ``BENCH_e25.json``.  Under
``REPRO_BENCH_QUICK`` only output equality is asserted.
"""

import statistics
import time

import pytest

from benchmarks._harness import (
    percentile,
    print_table,
    quick_mode,
    sizes,
    write_results,
)
from repro.automata.thompson import to_va
from repro.engine import flat_disabled
from repro.engine.compiled import compile_spanner
from repro.workloads import land_registry, server_logs

#: Enumeration documents: large enough that per-span verdict work, not
#: index construction, dominates (the flat layer's target regime).
ROW_COUNTS = sizes(full=[29, 37, 45], quick=[3])
#: Corpus shape: fewer, larger documents than E22 — per-document sweep
#: cost is where the flat rows pay off.
LOG_LINES = sizes(full=[32, 48], quick=[4])
CORPUS_DOCUMENTS = sizes(full=[12], quick=[3])[0]
MINIMUM_SPEEDUP = 3.0


def _delays(iterator):
    gaps, outputs = [], []
    last = time.perf_counter()
    for mapping in iterator:
        now = time.perf_counter()
        gaps.append(now - last)
        last = now
        outputs.append(mapping)
    return gaps, outputs


def _enumerate_best(automaton, document, repeat=3):
    """Best-of-``repeat`` delay profile (lowest median), fresh engine each
    run (empty per-spanner caches), shared warm tables."""
    best_gaps, outputs = None, None
    for _ in range(1 if quick_mode() else repeat):
        gaps, outputs = _delays(compile_spanner(automaton).enumerate(document))
        if best_gaps is None or (
            gaps and statistics.median(gaps) < statistics.median(best_gaps)
        ):
            best_gaps = gaps
    return best_gaps, outputs


def _corpus_once(source, documents):
    engine = compile_spanner(source)
    started = time.perf_counter()
    outputs = [engine.mappings(document) for document in documents]
    return time.perf_counter() - started, outputs


def _best_corpus(source, documents, repeat=3):
    best, outputs = float("inf"), None
    for _ in range(repeat):
        elapsed, outputs = _corpus_once(source, documents)
        best = min(best, elapsed)
    return best, outputs


@pytest.mark.benchmark(group="e25")
def test_e25_flat_kernel(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())

    enumeration_rows = []
    enumeration_records = []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=7)
        with flat_disabled():
            old_gaps, old_outputs = _enumerate_best(automaton, document)
        new_gaps, new_outputs = _enumerate_best(automaton, document)
        assert new_outputs == old_outputs  # same mappings, same order
        if not new_outputs:
            continue
        old_median = statistics.median(old_gaps)
        new_median = statistics.median(new_gaps)
        speedup = old_median / new_median if new_median else float("inf")
        enumeration_rows.append(
            (
                row_count,
                len(document),
                len(new_outputs),
                old_median,
                new_median,
                percentile(old_gaps, 0.9),
                percentile(new_gaps, 0.9),
                speedup,
            )
        )
        enumeration_records.append(
            {
                "rows": row_count,
                "document_length": len(document),
                "outputs": len(new_outputs),
                "dict_median_s": old_median,
                "flat_median_s": new_median,
                "dict_p90_s": percentile(old_gaps, 0.9),
                "flat_p90_s": percentile(new_gaps, 0.9),
                "speedup": speedup,
            }
        )

    corpus_rows = []
    corpus_records = []
    expression = server_logs.access_expression()
    for lines in LOG_LINES:
        documents = [
            server_logs.generate_document(lines, seed=seed)
            for seed in range(CORPUS_DOCUMENTS)
        ]
        with flat_disabled():
            old_time, old_outputs = _best_corpus(expression, documents)
        new_time, new_outputs = _best_corpus(expression, documents)
        assert new_outputs == old_outputs
        speedup = old_time / new_time if new_time else float("inf")
        name = f"server-logs/{lines}"
        corpus_rows.append(
            (name, len(documents), old_time, new_time, speedup)
        )
        corpus_records.append(
            {
                "workload": name,
                "lines": lines,
                "documents": len(documents),
                "dict_s": old_time,
                "flat_s": new_time,
                "flat_docs_per_s": len(documents) / new_time if new_time else None,
                "speedup": speedup,
            }
        )

    print_table(
        "E25: flat vs dict kernel — enumeration delay (seller/tax)",
        ["rows", "|d|", "#out", "dict med s", "flat med s",
         "dict p90 s", "flat p90 s", "speedup"],
        enumeration_rows,
    )
    print_table(
        "E25: flat vs dict kernel — corpus throughput (server logs)",
        ["workload", "docs", "dict s", "flat s", "speedup"],
        corpus_rows,
    )

    assert enumeration_records, "every enumeration size produced zero outputs"
    enumeration_speedup = statistics.median(
        record["speedup"] for record in enumeration_records
    )
    corpus_speedup = statistics.median(
        record["speedup"] for record in corpus_records
    )
    write_results(
        "e25",
        {
            "enumeration": enumeration_records,
            "corpus": corpus_records,
            "median_speedup": {
                "enumeration": enumeration_speedup,
                "corpus": corpus_speedup,
            },
            "minimum_speedup": MINIMUM_SPEEDUP,
        },
    )

    if not quick_mode():
        assert enumeration_speedup >= MINIMUM_SPEEDUP, (
            f"flat enumeration median delay only {enumeration_speedup:.2f}x "
            f"better than the dict kernel"
        )
        assert corpus_speedup >= MINIMUM_SPEEDUP, (
            f"flat corpus throughput only {corpus_speedup:.2f}x "
            f"better than the dict kernel"
        )

    documents = [
        server_logs.generate_document(LOG_LINES[0], seed=seed)
        for seed in range(CORPUS_DOCUMENTS)
    ]
    benchmark(lambda: _best_corpus(expression, documents, repeat=1))
