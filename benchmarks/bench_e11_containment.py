"""E11 — Theorem 6.4: Containment of VA is PSPACE-complete.

Claim: containment inherits the PSPACE-hardness of regular-expression
containment, with a matching upper bound via the subset-pair search.  We
sweep the classical hard family ``(a|b)* ⊆? (a|b)*a(a|b)^n``
(exponential subset growth) and a positive variable family.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.analysis.containment import contained_va
from repro.automata.thompson import to_va
from repro.rgx.parser import parse
from repro.workloads.expressions import seller_like_sequential_rgx

SUFFIX_LENGTHS = [2, 4, 6, 8, 10]
FIELD_COUNTS = [1, 2, 4, 8]


@pytest.mark.benchmark(group="e11")
def test_e11_containment(benchmark):
    rows = []
    timings = []
    for n in SUFFIX_LENGTHS:
        # Positive instances force the search to exhaust the subset space
        # of the exponential-DFA family on the left-hand side.
        left = to_va(parse("(a|b)*a" + "(a|b)" * n))
        right = to_va(parse("(a|b)*" + "." * (n + 1)))
        answer = contained_va(left, right)
        assert answer
        negative = contained_va(to_va(parse("(a|b)*")), left)
        assert not negative  # b^{n+1} is an early counterexample
        elapsed = measure(lambda: contained_va(left, right), repeat=1)
        rows.append((n, left.size(), answer, elapsed))
        timings.append(elapsed)
    print_table(
        "E11a: containment over the exponential-subset family (Thm 6.4)",
        ["n", "|A1|", "contained", "time s"],
        rows,
    )
    print(
        f"growth ratios: {[f'{r:.2f}' for r in growth_ratios(timings)]} "
        "(exhaustive subset-pair exploration grows super-polynomially)"
    )

    rows = []
    for fields in FIELD_COUNTS:
        expression = seller_like_sequential_rgx(fields)
        left = to_va(expression)
        right = to_va(expression)
        answer = contained_va(left, right)
        assert answer
        elapsed = measure(lambda: contained_va(left, right), repeat=1)
        rows.append((fields, left.size(), answer, elapsed))
    print_table(
        "E11b: self-containment of variable chains (positive instances)",
        ["fields", "|A|", "contained", "time s"],
        rows,
    )

    left = to_va(parse("(a|b)*"))
    right = to_va(parse("(a|b)*a(a|b)(a|b)"))
    benchmark(lambda: contained_va(left, right))
