"""E14 — Theorem 4.7: cycle elimination runs in polynomial time.

Claim: converting a functional simple rule into an equivalent dag-like
rule is polynomial.  We sweep pure-cycle rules of growing length and
cycle rules with pendant chains, asserting dag-likeness and a bounded
log-log slope.
"""

import pytest

from benchmarks._harness import loglog_slope, measure, print_table
from repro.rgx.ast import concat
from repro.rules.cycles import to_daglike
from repro.rules.graph import is_dag_like
from repro.rules.rule import Rule, bare

CYCLE_LENGTHS = [4, 8, 16, 32, 64]


def cycle_rule(length: int, pendant: bool = False) -> Rule:
    heads = [f"v{i}" for i in range(length)]
    conjuncts = []
    for index in range(length):
        successor = heads[(index + 1) % length]
        if pendant and index % 3 == 0:
            formula = concat(bare(successor), bare(f"w{index}"))
        else:
            formula = bare(successor)
        conjuncts.append((heads[index], formula))
    return Rule(bare(heads[0]), tuple(conjuncts))


@pytest.mark.benchmark(group="e14")
def test_e14_cycle_elimination(benchmark):
    rows = []
    sizes, timings = [], []
    for length in CYCLE_LENGTHS:
        rule = cycle_rule(length)
        transformed = to_daglike(rule)
        assert is_dag_like(transformed)
        elapsed = measure(lambda: to_daglike(rule), repeat=2)
        rows.append((length, False, len(transformed.conjuncts), elapsed))
        sizes.append(length)
        timings.append(elapsed)
    slope = loglog_slope(sizes, timings)
    print_table(
        "E14a: cycle elimination on pure cycles (Theorem 4.7)",
        ["cycle length", "pendants", "#conjuncts out", "time s"],
        rows,
    )
    print(f"log-log slope vs length: {slope:.2f} (paper: polynomial)")
    assert slope < 3.5

    rows = []
    for length in CYCLE_LENGTHS[:4]:
        rule = cycle_rule(length, pendant=True)
        transformed = to_daglike(rule)
        assert is_dag_like(transformed)
        elapsed = measure(lambda: to_daglike(rule), repeat=2)
        rows.append((length, True, len(transformed.conjuncts), elapsed))
    print_table(
        "E14b: cycle elimination with pendant variables",
        ["cycle length", "pendants", "#conjuncts out", "time s"],
        rows,
    )

    rule = cycle_rule(16)
    benchmark(lambda: to_daglike(rule))
