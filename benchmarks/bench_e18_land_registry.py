"""E18 — Table 1 end to end: the incomplete-information CSV scenario.

The paper's motivating workload: extract seller names and optional tax
fields from land-registry CSVs.  Three pipelines over the same documents:

* the Section 3.1 RGX via automaton evaluation,
* the same RGX via oracle enumeration (Algorithm 2),
* the Section 3.3 rule via the tree-like evaluator (Theorem 5.9);

all three must produce the ground truth the generator recorded.
"""

import pytest

from benchmarks._harness import measure, print_table
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.evaluation.enumerate import enumerate_va
from repro.evaluation.rules_eval import enumerate_treelike_rule
from repro.workloads import land_registry

ROW_COUNTS = [1, 2, 4]


@pytest.mark.benchmark(group="e18")
def test_e18_land_registry_pipelines(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())
    rule = land_registry.seller_rule()
    rows = []
    for row_count in ROW_COUNTS:
        generated = land_registry.generate_rows(row_count, seed=23)
        document = land_registry.render(generated)
        truth = land_registry.expected_extraction(generated)

        direct = evaluate_va(automaton, document)
        assert land_registry.extraction_pairs(document, direct) == truth
        direct_time = measure(lambda: evaluate_va(automaton, document), repeat=2)

        enumerated = set(enumerate_va(automaton, document))
        assert land_registry.extraction_pairs(document, enumerated) == truth
        enumerate_time = measure(
            lambda: list(enumerate_va(automaton, document)), repeat=1
        )

        via_rule = set(enumerate_treelike_rule(rule, document))
        assert land_registry.extraction_pairs(document, via_rule) == truth
        rule_time = measure(
            lambda: list(enumerate_treelike_rule(rule, document)), repeat=1
        )

        rows.append(
            (
                row_count,
                len(document),
                len(direct),
                direct_time,
                enumerate_time,
                rule_time,
            )
        )
    print_table(
        "E18: Table 1 scenario — three pipelines, one ground truth",
        ["rows", "|d|", "#mappings", "VA eval s", "Alg.2 s", "rule s"],
        rows,
    )

    document = land_registry.generate_document(4, seed=23)
    benchmark(lambda: evaluate_va(automaton, document))
