"""Shared helpers for the experiment benchmarks.

Every benchmark prints the scaling series it measured (the "table/figure"
being reproduced) before handing the headline configuration to
pytest-benchmark.  The printed series is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections.abc import Callable, Sequence


def quick_mode() -> bool:
    """True when ``REPRO_BENCH_QUICK`` is set (CI smoke runs tiny inputs)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def sizes(full: Sequence, quick: Sequence) -> Sequence:
    """The scaling series to sweep: ``quick`` under ``REPRO_BENCH_QUICK``."""
    return quick if quick_mode() else full


def measure(action: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call."""
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) with linear interpolation.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    >>> percentile([5.0], 0.9)
    5.0
    """
    ordered = sorted(values)
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def results_dir() -> str | None:
    """Where machine-readable results go, or ``None`` when disabled.

    Controlled by ``REPRO_BENCH_JSON``: unset/``0`` disables, ``1`` means
    the current directory, anything else is the output directory itself.
    """
    value = os.environ.get("REPRO_BENCH_JSON", "")
    if value in ("", "0"):
        return None
    return "." if value == "1" else value


def write_results(name: str, payload: dict) -> str | None:
    """Write ``BENCH_<name>.json`` so the perf trajectory is tracked across PRs.

    ``payload`` should carry the benchmark's headline series — median/p90
    timings and speedup ratios — exactly as printed.  A ``quick`` flag is
    stamped in so CI smoke numbers are never confused with full runs.
    Returns the path written, or ``None`` when ``REPRO_BENCH_JSON`` is off.
    """
    directory = results_dir()
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {"benchmark": name, "quick": quick_mode(), **payload}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """An aligned plain-text table (the regenerated 'figure')."""
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _format(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100 or abs(cell) < 0.0001:
            return f"{cell:.3e}"
        return f"{cell:.5f}".rstrip("0").rstrip(".")
    return str(cell)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    A polynomial-time algorithm shows a bounded slope (its effective
    degree); exponential behaviour shows a slope that keeps growing with
    the range, better diagnosed with :func:`growth_ratios`.
    """
    points = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        return 0.0
    mean_x = sum(p[0] for p in points) / len(points)
    mean_y = sum(p[1] for p in points) / len(points)
    numerator = sum((px - mean_x) * (py - mean_y) for px, py in points)
    denominator = sum((px - mean_x) ** 2 for px, py in points)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def growth_ratios(ys: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1]/y[i]`` — roughly constant > 1 means
    exponential growth in a linear-step sweep."""
    return [
        later / earlier if earlier > 0 else math.inf
        for earlier, later in zip(ys, ys[1:])
    ]
