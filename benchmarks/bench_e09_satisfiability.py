"""E9 — Theorems 6.1/6.2: Sat is NP-complete in general, NLOGSPACE for
sequential VA.

Two series: (a) satisfiability of sequential chains decided by plain
reachability scales near-linearly; (b) the 1-IN-3-SAT spanRGX family —
whose automata are *not* sequential in the relevant sense (the conflict
variables interact) — shows the hard case.
"""

import pytest

from benchmarks._harness import growth_ratios, loglog_slope, measure, print_table
from repro.analysis.satisfiability import satisfiable_va, satisfying_document
from repro.automata.thompson import to_va
from repro.reductions.one_in_three_sat import random_instance, to_spanrgx
from repro.workloads.expressions import seller_like_sequential_rgx

FIELD_COUNTS = [4, 8, 16, 32, 64]
CLAUSE_COUNTS = [2, 3, 4, 5]


@pytest.mark.benchmark(group="e09")
def test_e09_satisfiability(benchmark):
    rows = []
    sizes, timings = [], []
    for fields in FIELD_COUNTS:
        automaton = to_va(seller_like_sequential_rgx(fields))
        assert satisfiable_va(automaton)
        elapsed = measure(lambda: satisfiable_va(automaton), repeat=2)
        rows.append((fields, automaton.size(), elapsed))
        sizes.append(automaton.size())
        timings.append(elapsed)
    slope = loglog_slope(sizes, timings)
    print_table(
        "E9a: Sat of sequential VA = reachability (Theorem 6.2)",
        ["fields", "|A|", "time s"],
        rows,
    )
    print(f"log-log slope vs |A|: {slope:.2f} (near-linear expected)")
    assert slope < 3.0

    rows = []
    timings = []
    for clauses in CLAUSE_COUNTS:
        instance = random_instance(clauses, 4, seed=5)
        automaton = to_va(to_spanrgx(instance))
        elapsed = measure(lambda: satisfiable_va(automaton), repeat=1)
        witness = satisfying_document(automaton)
        rows.append((clauses, automaton.size(), witness is not None, elapsed))
        timings.append(elapsed)
    print_table(
        "E9b: Sat of the 1-IN-3-SAT spanRGX family (Theorem 6.1)",
        ["clauses", "|A|", "satisfiable", "time s"],
        rows,
    )
    print(f"growth ratios: {[f'{r:.1f}' for r in growth_ratios(timings)]}")

    automaton = to_va(seller_like_sequential_rgx(32))
    benchmark(lambda: satisfiable_va(automaton))
