"""E13 — Theorems 4.3/4.4: RGX ≡ VAstk, with an exponential path union.

Claim: every RGX converts to a VAstk (linear, Thompson) and back (as a
potentially exponential union of functional formulas).  We measure the
expansion factor |γ'|/|γ| and the round-trip cost on random expressions,
asserting semantic equality via the reference evaluator.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.automata.path_union import vastk_to_rgx
from repro.automata.thompson import to_vastk
from repro.rgx.ast import VarBind, star, union, chars
from repro.rgx.semantics import mappings
from repro.workloads.expressions import random_rgx

VARIABLE_COUNTS = [1, 2, 3, 4]
RANDOM_SIZES = [6, 10, 14, 18]
PROBES = ["", "a", "b", "ab", "ba"]


def star_family(k: int):
    """``(x1{[ab]*} | ... | xk{[ab]*})*`` — the paper's union-of-functional
    decomposition has one disjunct per ordered subset of the variables."""
    options = [VarBind(f"x{i}", star(chars("ab"))) for i in range(k)]
    return star(union(*options) if len(options) > 1 else options[0])


@pytest.mark.benchmark(group="e13")
def test_e13_roundtrip(benchmark):
    rows = []
    recovered_sizes = []
    for k in VARIABLE_COUNTS:
        expression = star_family(k)
        automaton = to_vastk(expression)
        recovered = vastk_to_rgx(automaton)
        for probe in PROBES:
            assert mappings(recovered, probe) == mappings(expression, probe)
        elapsed = measure(lambda: vastk_to_rgx(automaton), repeat=1)
        rows.append(
            (
                k,
                expression.size(),
                automaton.size(),
                recovered.size(),
                round(recovered.size() / expression.size(), 1),
                elapsed,
            )
        )
        recovered_sizes.append(recovered.size())
    print_table(
        "E13a: path union of (x1{..}|...|xk{..})* (Theorem 4.3)",
        ["k", "|γ|", "|A|", "|γ'|", "expansion", "time s"],
        rows,
    )
    print(
        f"|γ'| growth ratios: {[f'{r:.1f}' for r in growth_ratios(recovered_sizes)]} "
        "(exponential union of functional formulas, as the theorem allows)"
    )
    assert all(ratio > 1.5 for ratio in growth_ratios(recovered_sizes))

    rows = []
    for size in RANDOM_SIZES:
        expression = random_rgx(size, seed=size)
        automaton = to_vastk(expression)
        recovered = vastk_to_rgx(automaton)
        for probe in PROBES:
            expected = mappings(expression, probe)
            actual = set() if recovered is None else mappings(recovered, probe)
            assert actual == expected, (expression, probe)
        recovered_size = 0 if recovered is None else recovered.size()
        elapsed = measure(lambda: vastk_to_rgx(automaton), repeat=1)
        rows.append(
            (size, expression.size(), automaton.size(), recovered_size, elapsed)
        )
    print_table(
        "E13b: round trip on random RGX (semantic equality asserted)",
        ["target", "|γ|", "|A|", "|γ'|", "time s"],
        rows,
    )

    automaton = to_vastk(star_family(3))
    benchmark(lambda: vastk_to_rgx(automaton))
