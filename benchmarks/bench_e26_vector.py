"""E26 — lockstep vectorized sweeps + shared-memory engine segments.

This PR's tentpole, measured on the serving shapes it targets:

* **corpus throughput (lockstep)** — NonEmp verdicts for server-logs
  corpora through :func:`~repro.service.evaluate.evaluate_records`,
  vector layer on vs off (:func:`~repro.engine.vector.vector_disabled`
  pins PR 25's per-document flat path).  The lockstep sweep advances
  every document's DFA state with one gather per *position*, so the win
  grows with batch width; outputs must be identical batch-for-batch.
* **mapping batches** — the same comparison for full output sets (the
  prewarm path): equality is the point, the speedup rides on how much
  of the work enumeration dominates.
* **worker memory (shared segments)** — a :class:`WorkerPool` run with
  shared-memory segments against one without: every worker must attach
  the one published segment (no fallbacks), and the per-worker private
  memory attributable to engine delivery must not exceed the
  pickle-path baseline — the engine bytes live once per host, not once
  per worker.

Acceptance: byte-identical outputs everywhere, and (full mode) a median
corpus-throughput speedup of at least ``MINIMUM_SPEEDUP`` from the
lockstep path.  With ``REPRO_BENCH_JSON`` set the series lands in
``BENCH_e26.json``.  Under ``REPRO_BENCH_QUICK`` only output equality
and the shared-memory invariants are asserted.
"""

import os
import statistics
import time

import pytest

from benchmarks._harness import (
    print_table,
    quick_mode,
    sizes,
    write_results,
)
from repro.engine.compiled import compile_spanner
from repro.engine.kernel import numpy_or_none
from repro.engine.vector import vector_disabled
from repro.service.evaluate import WorkerPool, evaluate_records
from repro.service.shm_store import shm_available
from repro.workloads import server_logs

#: (documents, log lines) corpus shapes: wide batches are the lockstep
#: sweep's regime — per-position numpy dispatch amortises across lanes.
CORPUS_SHAPES = sizes(full=[(256, 48), (512, 24), (1024, 12)], quick=[(16, 4)])
MAPPING_SHAPE = sizes(full=[(96, 24)], quick=[(8, 3)])[0]
MINIMUM_SPEEDUP = 2.0
REPEATS = 1 if quick_mode() else 5


def _corpus(documents: int, lines: int):
    return [
        (f"doc-{seed}", server_logs.generate_document(lines, seed=seed))
        for seed in range(documents)
    ]


def _run_records(expression, records, kind: str):
    """Fresh engine (cold per-spanner caches), shared warm tables."""
    engine = compile_spanner(expression)
    started = time.perf_counter()
    triples = evaluate_records(engine, records, kind=kind)
    return time.perf_counter() - started, triples


def _best(expression, records, kind: str, vectorized: bool):
    best, triples = float("inf"), None
    for _ in range(REPEATS):
        if vectorized:
            elapsed, triples = _run_records(expression, records, kind)
        else:
            with vector_disabled():
                elapsed, triples = _run_records(expression, records, kind)
        best = min(best, elapsed)
    return best, triples


def _worker_private_kib(pid: int) -> "int | None":
    """The worker's private (unshared) memory, KiB, via smaps_rollup."""
    try:
        with open(f"/proc/{pid}/smaps_rollup", encoding="ascii") as handle:
            totals = {}
            for line in handle:
                key, _, rest = line.partition(":")
                parts = rest.split()
                if parts and parts[-1] == "kB":
                    totals[key] = int(parts[0])
        return totals.get("Private_Clean", 0) + totals.get("Private_Dirty", 0)
    except OSError:  # pragma: no cover - no smaps on this platform
        return None


def _pool_memory_probe(expression, records, shared_memory: bool):
    """Evaluate one batch per worker; report stats and worker memory."""
    engine = compile_spanner(expression)
    with WorkerPool(2, shared_memory=shared_memory) as pool:
        futures = [
            pool.submit(engine, records[i::2], kind="mappings")
            for i in range(2)
        ]
        triples = [future.result() for future in futures]
        private = [
            _worker_private_kib(pid) for pid in pool._pool._processes
        ]
        stats = pool.stats()
    merged = [triple for batch in triples for triple in batch]
    merged.sort(key=lambda triple: triple[0])
    private = [kib for kib in private if kib is not None]
    return merged, stats["shm"], (max(private) if private else None)


@pytest.mark.benchmark(group="e26")
def test_e26_vector(benchmark):
    if numpy_or_none() is None:
        pytest.skip("numpy unavailable: the vector layer cannot engage")
    expression = server_logs.access_expression()

    corpus_rows = []
    corpus_records = []
    for documents, lines in CORPUS_SHAPES:
        records = _corpus(documents, lines)
        flat_time, flat_out = _best(expression, records, "matches", False)
        vector_time, vector_out = _best(expression, records, "matches", True)
        assert vector_out == flat_out  # identical verdict triples
        speedup = flat_time / vector_time if vector_time else float("inf")
        total_chars = sum(len(text) for _, text in records)
        name = f"server-logs/{documents}x{lines}"
        corpus_rows.append(
            (name, documents, total_chars, flat_time, vector_time, speedup)
        )
        corpus_records.append(
            {
                "workload": name,
                "documents": documents,
                "lines": lines,
                "total_chars": total_chars,
                "flat_s": flat_time,
                "vector_s": vector_time,
                "vector_docs_per_s": (
                    documents / vector_time if vector_time else None
                ),
                "speedup": speedup,
            }
        )

    documents, lines = MAPPING_SHAPE
    records = _corpus(documents, lines)
    flat_time, flat_out = _best(expression, records, "mappings", False)
    vector_time, vector_out = _best(expression, records, "mappings", True)
    assert vector_out == flat_out  # identical mapping sets, same order
    mapping_record = {
        "workload": f"server-logs/{documents}x{lines}",
        "documents": documents,
        "flat_s": flat_time,
        "vector_s": vector_time,
        "speedup": flat_time / vector_time if vector_time else float("inf"),
    }

    memory_record = None
    if shm_available():
        records = _corpus(*MAPPING_SHAPE)
        shm_out, shm_stats, shm_private = _pool_memory_probe(
            expression, records, shared_memory=True
        )
        pickle_out, _, pickle_private = _pool_memory_probe(
            expression, records, shared_memory=False
        )
        assert shm_out == pickle_out  # segment delivery changes nothing
        assert shm_stats.get("publishes") == 1  # one segment per host
        assert shm_stats.get("attaches", 0) >= 1
        assert shm_stats.get("fallbacks", 0) == 0
        memory_record = {
            "segment_bytes": shm_stats.get("bytes"),
            "worker_private_kib_shm": shm_private,
            "worker_private_kib_pickle": pickle_private,
        }
        if shm_private is not None and pickle_private is not None:
            # The segment keeps engine bytes out of per-worker private
            # memory; allow generous noise headroom (allocator slack).
            assert shm_private <= pickle_private + 16 * 1024, memory_record

    print_table(
        "E26: lockstep vector vs per-document flat — corpus verdicts",
        ["workload", "docs", "chars", "flat s", "vector s", "speedup"],
        corpus_rows,
    )
    print_table(
        "E26: shared-memory worker delivery",
        ["segment B", "worker private KiB (shm)", "worker private KiB (pickle)"],
        [
            (
                memory_record["segment_bytes"] if memory_record else "-",
                memory_record["worker_private_kib_shm"] if memory_record else "-",
                memory_record["worker_private_kib_pickle"]
                if memory_record
                else "-",
            )
        ],
    )

    corpus_speedup = statistics.median(
        record["speedup"] for record in corpus_records
    )
    write_results(
        "e26",
        {
            "corpus": corpus_records,
            "mappings": mapping_record,
            "memory": memory_record,
            "median_speedup": {"corpus": corpus_speedup},
            "minimum_speedup": MINIMUM_SPEEDUP,
        },
    )

    if not quick_mode():
        assert corpus_speedup >= MINIMUM_SPEEDUP, (
            f"lockstep corpus throughput only {corpus_speedup:.2f}x "
            f"the per-document flat path"
        )

    headline = _corpus(*CORPUS_SHAPES[0])
    benchmark(lambda: _best(expression, headline, "matches", True))
