"""A2 — Ablation: set-tracking Eval vs the paper's per-permutation variant.

Theorem 5.10's appendix algorithm iterates over all orderings of each
coalesced operation set (``|T_i|!``); our implementation tracks the set of
performed operations instead (``2^{|T_i|}``).  Same answers (asserted),
different costs as operation clusters grow: the workload pins ``k``
variables to the *same* empty span, forcing a size-``2k`` cluster at one
position.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.automata.thompson import to_va
from repro.evaluation.eval_problem import (
    eval_general_va,
    eval_va_permutation_baseline,
)
from repro.rgx.ast import VarBind, concat, star, union, char, EPSILON
from repro.spans.mapping import ExtendedMapping
from repro.spans.span import Span

CLUSTER_SIZES = [1, 2, 3, 4]


def cluster_expression(k: int):
    """``(x1{ε}|...|xk{ε})* a`` — k variables capturable at position 1."""
    options = [VarBind(f"x{i}", EPSILON) for i in range(k)]
    body = union(*options) if len(options) > 1 else options[0]
    return concat(star(body), char("a"))


@pytest.mark.benchmark(group="a2")
def test_a2_eval_ablation(benchmark):
    rows = []
    set_times, perm_times = [], []
    for k in CLUSTER_SIZES:
        automaton = to_va(cluster_expression(k))
        pinned = ExtendedMapping(
            {f"x{i}": Span(1, 1) for i in range(k)}
        )
        ours = eval_general_va(automaton, "a", pinned)
        baseline = eval_va_permutation_baseline(automaton, "a", pinned)
        assert ours == baseline == True  # noqa: E712 — both must accept
        set_time = measure(
            lambda: eval_general_va(automaton, "a", pinned), repeat=2
        )
        perm_time = measure(
            lambda: eval_va_permutation_baseline(automaton, "a", pinned),
            repeat=1,
        )
        rows.append((k, 2 * k, set_time, perm_time, round(perm_time / max(set_time, 1e-9), 1)))
        set_times.append(set_time)
        perm_times.append(perm_time)
    print_table(
        "A2: coalesced-set DP vs permutation baseline (Theorem 5.10)",
        ["k", "cluster size", "set DP s", "permutations s", "perm/set"],
        rows,
    )
    print(
        f"permutation growth: {[f'{r:.1f}' for r in growth_ratios(perm_times)]} "
        f"vs set-DP growth: {[f'{r:.1f}' for r in growth_ratios(set_times)]}"
    )

    automaton = to_va(cluster_expression(3))
    pinned = ExtendedMapping({f"x{i}": Span(1, 1) for i in range(3)})
    benchmark(lambda: eval_general_va(automaton, "a", pinned))
