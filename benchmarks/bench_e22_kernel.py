"""E22 — the bitmask kernel engine vs. the set-based engine.

PR 4's tentpole: alphabet-class compression, bitmask state sets and the
lazy-DFA memo (:mod:`repro.engine.kernel`) must beat the set-based sweeps
they replace — on *identical outputs* — across the two serving shapes the
ROADMAP targets:

* **enumeration delay** — the seller/tax extraction over growing
  land-registry documents; per-output gap medians and p90s, old engine
  (:func:`~repro.engine.kernel.kernel_disabled`) vs. new;
* **corpus throughput** — many small documents (the server-logs and
  land-registry workloads) through one engine, the pattern the corpus
  service runs in every worker; total wall-clock per corpus, old vs. new.

Both modes share the compiled tables; the only variable is the kernel.
The lazy-DFA memo is *meant* to stay warm across documents — that is the
serving behaviour — and the set path symmetrically keeps its own
``(state, char)`` step cache, so the comparison is warm-vs-warm.

Acceptance: byte-identical outputs everywhere, and (full mode) a median
speedup of at least ``MINIMUM_SPEEDUP`` on both workload families.  With
``REPRO_BENCH_JSON`` set, the measured series lands in ``BENCH_e22.json``
(median/p90 timings and speedup ratios) for cross-PR tracking.  Under
``REPRO_BENCH_QUICK`` only output equality is asserted.
"""

import statistics
import time

import pytest

from benchmarks._harness import (
    percentile,
    print_table,
    quick_mode,
    sizes,
    write_results,
)
from repro.automata.thompson import to_va
from repro.engine import kernel_disabled
from repro.engine.compiled import compile_spanner
from repro.workloads import land_registry, server_logs

ROW_COUNTS = sizes(full=[5, 7, 9], quick=[2])
CORPUS_DOCUMENTS = sizes(full=[48], quick=[4])[0]
LOG_LINES = 4
REGISTRY_ROWS = 2
MINIMUM_SPEEDUP = 3.0


def _delays(iterator):
    gaps, outputs = [], []
    last = time.perf_counter()
    for mapping in iterator:
        now = time.perf_counter()
        gaps.append(now - last)
        last = now
        outputs.append(mapping)
    return gaps, outputs


def _enumerate_best(automaton, document, repeat=3):
    """Best-of-``repeat`` delay profile (lowest median), fresh engine each
    run (empty per-spanner caches), shared warm tables."""
    best_gaps, outputs = None, None
    for _ in range(1 if quick_mode() else repeat):
        gaps, outputs = _delays(compile_spanner(automaton).enumerate(document))
        if best_gaps is None or (
            gaps and statistics.median(gaps) < statistics.median(best_gaps)
        ):
            best_gaps = gaps
    return best_gaps, outputs


def _corpus_once(source, documents):
    engine = compile_spanner(source)
    started = time.perf_counter()
    outputs = [engine.mappings(document) for document in documents]
    return time.perf_counter() - started, outputs


def _best_corpus(source, documents, repeat=3):
    best, outputs = float("inf"), None
    for _ in range(repeat):
        elapsed, outputs = _corpus_once(source, documents)
        best = min(best, elapsed)
    return best, outputs


@pytest.mark.benchmark(group="e22")
def test_e22_kernel_engine(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())

    enumeration_rows = []
    enumeration_records = []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=7)
        with kernel_disabled():
            old_gaps, old_outputs = _enumerate_best(automaton, document)
        new_gaps, new_outputs = _enumerate_best(automaton, document)
        assert new_outputs == old_outputs  # same mappings, same order
        if not new_outputs:
            continue
        old_median = statistics.median(old_gaps)
        new_median = statistics.median(new_gaps)
        speedup = old_median / new_median if new_median else float("inf")
        enumeration_rows.append(
            (
                row_count,
                len(document),
                len(new_outputs),
                old_median,
                new_median,
                percentile(old_gaps, 0.9),
                percentile(new_gaps, 0.9),
                speedup,
            )
        )
        enumeration_records.append(
            {
                "rows": row_count,
                "document_length": len(document),
                "outputs": len(new_outputs),
                "sets_median_s": old_median,
                "kernel_median_s": new_median,
                "sets_p90_s": percentile(old_gaps, 0.9),
                "kernel_p90_s": percentile(new_gaps, 0.9),
                "speedup": speedup,
            }
        )

    corpora = [
        (
            "server-logs",
            server_logs.access_expression(),
            [
                server_logs.generate_document(LOG_LINES, seed=seed)
                for seed in range(CORPUS_DOCUMENTS)
            ],
        ),
        (
            "land-registry",
            to_va(land_registry.seller_tax_expression()),
            [
                land_registry.generate_document(REGISTRY_ROWS, seed=seed)
                for seed in range(CORPUS_DOCUMENTS)
            ],
        ),
    ]
    corpus_rows = []
    corpus_records = []
    for name, source, documents in corpora:
        with kernel_disabled():
            old_time, old_outputs = _best_corpus(source, documents)
        new_time, new_outputs = _best_corpus(source, documents)
        assert new_outputs == old_outputs
        speedup = old_time / new_time if new_time else float("inf")
        corpus_rows.append(
            (name, len(documents), old_time, new_time, speedup)
        )
        corpus_records.append(
            {
                "workload": name,
                "documents": len(documents),
                "sets_s": old_time,
                "kernel_s": new_time,
                "kernel_docs_per_s": len(documents) / new_time if new_time else None,
                "speedup": speedup,
            }
        )

    print_table(
        "E22: kernel vs set-based engine — enumeration delay (seller/tax)",
        ["rows", "|d|", "#out", "sets med s", "kernel med s",
         "sets p90 s", "kernel p90 s", "speedup"],
        enumeration_rows,
    )
    print_table(
        "E22: kernel vs set-based engine — corpus throughput",
        ["workload", "docs", "sets s", "kernel s", "speedup"],
        corpus_rows,
    )

    assert enumeration_records, "every enumeration size produced zero outputs"
    enumeration_speedup = statistics.median(
        record["speedup"] for record in enumeration_records
    )
    corpus_speedup = statistics.median(
        record["speedup"] for record in corpus_records
    )
    write_results(
        "e22",
        {
            "enumeration": enumeration_records,
            "corpus": corpus_records,
            "median_speedup": {
                "enumeration": enumeration_speedup,
                "corpus": corpus_speedup,
            },
            "minimum_speedup": MINIMUM_SPEEDUP,
        },
    )

    if not quick_mode():
        assert enumeration_speedup >= MINIMUM_SPEEDUP, (
            f"kernel enumeration median delay only {enumeration_speedup:.2f}x "
            f"better than the set-based engine"
        )
        assert corpus_speedup >= MINIMUM_SPEEDUP, (
            f"kernel corpus throughput only {corpus_speedup:.2f}x "
            f"better than the set-based engine"
        )

    documents = corpora[0][2]
    expression = corpora[0][1]
    benchmark(lambda: _best_corpus(expression, documents, repeat=1))
