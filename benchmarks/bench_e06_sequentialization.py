"""E6 — Proposition 5.6: every VA has an equivalent sequential VA.

Claim: sequentialisation preserves the extraction function.  We measure
the state blowup of the status-product construction on random automata
and assert semantic equality on probe documents (the paper gives no size
bound; the product is exponential in the variable count only).
"""

import pytest

from benchmarks._harness import measure, print_table
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.simulate import evaluate_va
from repro.workloads.expressions import random_va

STATE_COUNTS = [4, 8, 16, 32]
PROBES = ["", "a", "b", "ab", "ba", "aab"]


@pytest.mark.benchmark(group="e06")
def test_e06_sequentialization(benchmark):
    rows = []
    for states in STATE_COUNTS:
        automaton = random_va(states, seed=2, variables=("x", "y"))
        sequential = make_sequential(automaton)
        assert is_sequential(sequential)
        for probe in PROBES:
            assert evaluate_va(sequential, probe) == evaluate_va(
                automaton, probe
            )
        elapsed = measure(lambda: make_sequential(automaton), repeat=2)
        rows.append(
            (
                states,
                automaton.size(),
                sequential.size(),
                round(sequential.size() / max(automaton.size(), 1), 2),
                elapsed,
            )
        )
    print_table(
        "E6: sequentialisation blowup and cost (Prop 5.6)",
        ["states", "|A|", "|A_seq|", "blowup", "time s"],
        rows,
    )

    automaton = random_va(16, seed=2, variables=("x", "y"))
    benchmark(lambda: make_sequential(automaton))
