"""A1 — Ablation: Algorithm 2 (Eval oracle) vs direct run-DAG enumeration.

The oracle-driven enumerator buys a *delay guarantee* at the price of
repeated Eval calls; the direct evaluator materialises the run DAG with
feasibility pruning.  Both must produce identical sets; the table shows
what the guarantee costs on the seller/tax workload.
"""

import pytest

from benchmarks._harness import measure, print_table
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.evaluation.enumerate import enumerate_va
from repro.workloads import land_registry

ROW_COUNTS = [1, 2, 4]


@pytest.mark.benchmark(group="a1")
def test_a1_enumerator_ablation(benchmark):
    automaton = to_va(land_registry.seller_tax_expression())
    rows = []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=31)
        oracle_result = set(enumerate_va(automaton, document))
        direct_result = evaluate_va(automaton, document)
        assert oracle_result == direct_result
        oracle_time = measure(
            lambda: list(enumerate_va(automaton, document)), repeat=1
        )
        direct_time = measure(lambda: evaluate_va(automaton, document), repeat=1)
        rows.append(
            (
                row_count,
                len(document),
                len(direct_result),
                oracle_time,
                direct_time,
                round(oracle_time / max(direct_time, 1e-9), 1),
            )
        )
    print_table(
        "A1: Algorithm 2 vs direct run-DAG enumeration",
        ["rows", "|d|", "#outputs", "oracle s", "direct s", "oracle/direct"],
        rows,
    )
    print("(the ratio is the cost of the polynomial-delay guarantee)")

    document = land_registry.generate_document(4, seed=31)
    benchmark(lambda: evaluate_va(automaton, document))
