"""E27 — distributed serving: coordinator + rack nodes vs a single host.

PR 10's tentpole: the cluster tier (:mod:`repro.cluster`) must turn
worker *processes on other ports* into real corpus throughput.  The
coordinator runs in-process (so the benchmark can read its registry and
requeue counters directly); each rack node is a genuine ``repro worker``
subprocess with its own interpreter, joined over the HTTP control plane
— the same topology ``tools/cluster_smoke.py`` exercises, measured
instead of just survived.

One NDJSON corpus sweep per node count.  The corpus is access-log
extraction (:mod:`repro.workloads.server_logs` documents) under a
string pattern, so every batch rides the remote wire format.

Acceptance (the ISSUE 10 contract):

* NDJSON output is **byte-identical** across every node count and to a
  plain single ``repro serve``-equivalent baseline;
* warm-affinity routing fires: ``repro_cluster_warm_hits_total > 0``
  once a node has advertised the corpus engine;
* (full mode, ≥ 4 usable cores — the nodes are real single-core
  processes, so a 1-core box physically cannot show distribution wins,
  same gate as E20's worker scaling) throughput at 3 nodes ≥
  ``MINIMUM_SPEEDUP`` × the 1-node cluster sweep.

The pattern is deliberately *selective* (500s from ``user=root`` only):
the rack nodes pay the full document sweep while the coordinator only
re-serialises the few surviving mappings.  A result-dense pattern would
measure the coordinator's NDJSON encoder, not the cluster.

With ``REPRO_BENCH_JSON`` set the series lands in ``BENCH_e27.json``
(picked up by ``tools/bench_trajectory.py``).  Under
``REPRO_BENCH_QUICK`` only 1- and 2-node sweeps run and only identity
and warm-affinity are asserted.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from benchmarks._harness import print_table, quick_mode, sizes, write_results
from repro.cluster import CoordinatorConfig, CoordinatorThread
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.workloads import server_logs

NODE_COUNTS = sizes(full=[1, 2, 3], quick=[1, 2])
DOCUMENTS = sizes(full=[192], quick=[16])[0]
LINES_PER_DOCUMENT = sizes(full=[400], quick=[8])[0]
#: Root's server errors as a *string* pattern: only engines with a
#: serialisable source ride the remote wire (AST-compiled ones run
#: local), and the rare match keeps result decoding off the critical
#: path — the sweep cost lands on the rack nodes.
PATTERN = ".*GET p{[^ \n]*} 500 user=root[^\n]*\n.*"
MINIMUM_SPEEDUP = 1.5

_BANNER = re.compile(r"https?://([0-9.]+):([0-9]+)")


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _corpus() -> list[tuple[str, str]]:
    return [
        (
            f"access-{index:05d}.log",
            server_logs.generate_document(LINES_PER_DOCUMENT, seed=index),
        )
        for index in range(DOCUMENTS)
    ]


def _spawn_worker(join_url: str) -> subprocess.Popen:
    source_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = source_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--join",
            join_url,
            "--port",
            "0",
            "--workers",
            "0",
        ],
        env=env,
        stderr=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
    )
    banner = process.stderr.readline().decode()
    assert "repro worker: serving" in banner, banner
    return process


def _stop_worker(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)
    if process.stderr is not None:
        process.stderr.close()


def _cluster_sweep(
    documents: list[tuple[str, str]], node_count: int
) -> tuple[float, list, dict]:
    """One corpus through a coordinator with ``node_count`` rack nodes."""
    config = CoordinatorConfig(
        port=0, heartbeat_interval=0.5, heartbeat_timeout=5.0
    )
    with CoordinatorThread(config) as coordinator:
        workers = [_spawn_worker(coordinator.url) for _ in range(node_count)]
        try:
            deadline = time.monotonic() + 30.0
            while len(coordinator.coordinator.registry) < node_count:
                assert time.monotonic() < deadline, "nodes never registered"
                time.sleep(0.05)
            client = ServerClient(*coordinator.address, timeout=300.0)
            try:
                # A tiny warmup batch so every sweep starts with the
                # pattern compiled on the coordinator (the nodes stay
                # cold: warm-affinity learning is part of the measured
                # sweep, as in production).
                client.enumerate_ndjson(PATTERN, documents[:1])
                started = time.perf_counter()
                lines = client.enumerate_ndjson(PATTERN, documents)
                elapsed = time.perf_counter() - started
            finally:
                client.close()
            stats = coordinator.coordinator.cluster.stats()
            stats["warm_hits_metric"] = coordinator.coordinator.metrics.value(
                "repro_cluster_warm_hits_total"
            )
        finally:
            for process in workers:
                _stop_worker(process)
    return elapsed, lines, stats


@pytest.mark.benchmark(group="e27")
def test_e27_cluster_scaling(benchmark):
    documents = _corpus()

    # Ground truth: the same corpus through a plain single server.
    with ServerThread(ServerConfig(port=0)) as single:
        client = ServerClient(*single.address, timeout=300.0)
        try:
            client.enumerate_ndjson(PATTERN, documents[:1])
            started = time.perf_counter()
            baseline = client.enumerate_ndjson(PATTERN, documents)
            single_seconds = time.perf_counter() - started
        finally:
            client.close()

    rows = [
        ("single host", 0, single_seconds, DOCUMENTS / single_seconds, "-")
    ]
    sweeps: dict[int, float] = {}
    warm_hits: dict[int, float] = {}
    for node_count in NODE_COUNTS:
        elapsed, lines, stats = _cluster_sweep(documents, node_count)
        assert lines == baseline, (
            f"{node_count}-node cluster output differs from the single host"
        )
        assert stats["local_batches"] == 0, (
            f"{node_count}-node sweep fell back to local execution: {stats}"
        )
        sweeps[node_count] = elapsed
        warm_hits[node_count] = stats["warm_hits_metric"]
        rows.append(
            (
                "cluster",
                node_count,
                elapsed,
                DOCUMENTS / elapsed,
                f"{stats['remote_batches']}/{stats['warm_hits_metric']:g}",
            )
        )

    speedup = sweeps[NODE_COUNTS[0]] / sweeps[NODE_COUNTS[-1]]
    print_table(
        f"E27: cluster corpus throughput, {DOCUMENTS} documents x "
        f"{LINES_PER_DOCUMENT} log lines ({_effective_cpus()} usable cores)",
        ["topology", "nodes", "seconds", "docs/s", "batches/warm"],
        rows,
    )
    print(
        f"scaling: {NODE_COUNTS[-1]} nodes = {speedup:.2f}x the "
        f"{NODE_COUNTS[0]}-node sweep (byte-identical throughout)"
    )

    write_results(
        "e27",
        {
            "documents": DOCUMENTS,
            "lines_per_document": LINES_PER_DOCUMENT,
            "node_counts": list(NODE_COUNTS),
            "usable_cores": _effective_cpus(),
            "single_host_seconds": single_seconds,
            "cluster_seconds": {str(n): sweeps[n] for n in NODE_COUNTS},
            "warm_hits": {str(n): warm_hits[n] for n in NODE_COUNTS},
            "median_speedup": {"cluster": speedup},
            "minimum_speedup": MINIMUM_SPEEDUP,
            "byte_identical": True,
        },
    )

    # Warm-affinity must have fired on every sweep: after the first batch
    # lands, later batches for the same engine prefer nodes holding it.
    for node_count, hits in warm_hits.items():
        assert hits > 0, f"{node_count}-node sweep never hit a warm node"

    if not quick_mode() and _effective_cpus() >= NODE_COUNTS[-1] + 1:
        assert speedup >= MINIMUM_SPEEDUP, (
            f"{NODE_COUNTS[-1]} nodes only {speedup:.2f}x the single-node "
            f"cluster sweep (need {MINIMUM_SPEEDUP}x on "
            f"{_effective_cpus()} cores)"
        )

    benchmark(
        lambda: _cluster_sweep(documents[: max(4, len(documents) // 8)], 1)
    )
