"""E10 — Theorem 6.3: Sat of functional dag-like rules is NP-hard, while
sequential tree-like rules are *always* satisfiable.

Series (a): the Theorem 5.8 reduction family through the full
4.8/4.9-pipeline decision procedure — super-polynomial growth.
Series (b): tree-like rules of growing size — constant-time, always SAT.
"""

import pytest

from benchmarks._harness import growth_ratios, measure, print_table
from repro.analysis.satisfiability import satisfiable_rule
from repro.reductions.one_in_three_sat import (
    brute_force_one_in_three,
    random_instance,
    to_daglike_rule,
)
from repro.rgx.ast import ANY_STAR, char, concat
from repro.rules.rule import Rule, bare

CLAUSE_COUNTS = [1, 2, 3]
CHAIN_LENGTHS = [4, 16, 64, 256]


def tree_chain(length: int) -> Rule:
    """doc → v0 → v1 → ... — a deep sequential tree-like rule."""
    conjuncts = []
    for index in range(length - 1):
        conjuncts.append(
            (f"v{index}", concat(char("a"), bare(f"v{index + 1}")))
        )
    conjuncts.append((f"v{length - 1}", ANY_STAR))
    return Rule(bare("v0"), tuple(conjuncts))


@pytest.mark.benchmark(group="e10")
def test_e10_rule_satisfiability(benchmark):
    rows = []
    timings = []
    for clauses in CLAUSE_COUNTS:
        instance = random_instance(clauses, 3, seed=2)
        rule = to_daglike_rule(instance)
        answer = satisfiable_rule(rule)
        assert answer == brute_force_one_in_three(instance)
        elapsed = measure(lambda: satisfiable_rule(rule), repeat=1)
        rows.append((clauses, len(rule.conjuncts), answer, elapsed))
        timings.append(elapsed)
    print_table(
        "E10a: Sat of functional dag-like rules (Theorems 5.8/6.3)",
        ["clauses", "#conjuncts", "satisfiable", "time s"],
        rows,
    )
    print(f"growth ratios: {[f'{r:.1f}' for r in growth_ratios(timings)]}")

    rows = []
    for length in CHAIN_LENGTHS:
        rule = tree_chain(length)
        answer = satisfiable_rule(rule)
        assert answer  # Theorem 6.3: sequential tree-like ⇒ satisfiable
        elapsed = measure(lambda: satisfiable_rule(rule), repeat=3)
        rows.append((length, answer, elapsed))
    print_table(
        "E10b: Sat of sequential tree-like rules (always satisfiable)",
        ["chain length", "satisfiable", "time s"],
        rows,
    )

    instance = random_instance(2, 3, seed=2)
    rule = to_daglike_rule(instance)
    benchmark(lambda: satisfiable_rule(rule))
