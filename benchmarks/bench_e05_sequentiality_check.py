"""E5 — Proposition 5.5: deciding sequentiality is in NLOGSPACE (⊆ PTIME).

Claim: the product walk over (state, per-variable status) pairs decides
sequentiality cheaply.  We sweep automaton sizes and verify a near-linear
log-log slope.
"""

import pytest

from benchmarks._harness import loglog_slope, measure, print_table
from repro.automata.sequential import is_sequential
from repro.automata.thompson import to_va
from repro.workloads.expressions import random_va, seller_like_sequential_rgx

FIELD_COUNTS = [4, 8, 16, 32, 64]
STATE_COUNTS = [20, 40, 80, 160, 320]


@pytest.mark.benchmark(group="e05")
def test_e05_sequentiality_check(benchmark):
    rows = []
    sizes, timings = [], []
    for fields in FIELD_COUNTS:
        automaton = to_va(seller_like_sequential_rgx(fields))
        assert is_sequential(automaton)
        elapsed = measure(lambda: is_sequential(automaton), repeat=2)
        rows.append(("seqRGX chain", fields, automaton.size(), True, elapsed))
        sizes.append(automaton.size())
        timings.append(elapsed)
    slope = loglog_slope(sizes, timings)
    print_table(
        "E5a: sequentiality check on sequential chains (Prop 5.5)",
        ["family", "fields", "|A|", "sequential", "time s"],
        rows,
    )
    print(f"log-log slope vs |A|: {slope:.2f} (near-linear expected)")
    assert slope < 3.0

    rows = []
    for states in STATE_COUNTS:
        automaton = random_va(states, seed=1, variables=("x", "y", "z"))
        answer = is_sequential(automaton)
        elapsed = measure(lambda: is_sequential(automaton), repeat=2)
        rows.append(("random VA", states, automaton.size(), answer, elapsed))
    print_table(
        "E5b: sequentiality check on random VA",
        ["family", "states", "|A|", "sequential", "time s"],
        rows,
    )

    automaton = to_va(seller_like_sequential_rgx(32))
    benchmark(lambda: is_sequential(automaton))
