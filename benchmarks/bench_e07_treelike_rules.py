"""E7 — Theorem 5.9: Eval of sequential tree-like rules is in PTIME.

Claim: tree-likeness makes rule evaluation tractable (in contrast to the
dag-like hardness of E10).  We enumerate the land-registry rule over
growing documents with the interval-DP evaluator and verify a bounded
log-log slope; outputs are checked against the reference semantics on the
smaller sizes.
"""

import pytest

from benchmarks._harness import loglog_slope, measure, print_table
from repro.evaluation.rules_eval import enumerate_treelike_rule
from repro.workloads import land_registry

ROW_COUNTS = [1, 2, 3, 4]


@pytest.mark.benchmark(group="e07")
def test_e07_treelike_rule_eval(benchmark):
    rule = land_registry.seller_rule()
    rows = []
    lengths, timings = [], []
    for row_count in ROW_COUNTS:
        document = land_registry.generate_document(row_count, seed=13)
        produced = set(enumerate_treelike_rule(rule, document))
        if row_count <= 4:
            assert produced == rule.evaluate(document)
        elapsed = measure(
            lambda: list(enumerate_treelike_rule(rule, document)), repeat=1
        )
        rows.append((row_count, len(document), len(produced), elapsed))
        lengths.append(len(document))
        timings.append(elapsed)
    slope = loglog_slope(lengths, timings)
    print_table(
        "E7: sequential tree-like rule enumeration (Theorem 5.9)",
        ["rows", "|d|", "#outputs", "time s"],
        rows,
    )
    print(f"log-log slope vs |d|: {slope:.2f} (paper: PTIME Eval ⇒ poly delay)")
    assert slope < 6.0

    document = land_registry.generate_document(2, seed=13)
    benchmark(lambda: list(enumerate_treelike_rule(rule, document)))
