"""E3 — Proposition 5.3: Eval[funcRGX] is in PTIME.

Claim: the functional restriction of [8] makes Eval tractable.  We sweep
both document length (fixed expression) and expression size (fixed
document) for field-extraction funcRGX and verify bounded log-log slopes.
"""

import pytest

from benchmarks._harness import loglog_slope, measure, print_table
from repro.automata.thompson import to_va
from repro.evaluation.eval_problem import eval_va
from repro.spans.mapping import ExtendedMapping
from repro.spans.span import Span
from repro.workloads.expressions import field_document, seller_like_sequential_rgx

DOCUMENT_FIELDS = [4, 8, 16, 32, 64]
EXPRESSION_FIELDS = [2, 4, 8, 16]


def _strip_padding(expression):
    # seller_like expressions are functional apart from the Σ* padding;
    # the padded form is sequential, which Prop 5.3 subsumes.
    return expression


@pytest.mark.benchmark(group="e03")
def test_e03_eval_functional_scaling(benchmark):
    expression = seller_like_sequential_rgx(3)
    automaton = to_va(expression)
    pinned = ExtendedMapping({"v0": Span(4, 8)})

    rows = []
    lengths, timings = [], []
    for fields in DOCUMENT_FIELDS:
        document = field_document(fields, seed=5)
        elapsed = measure(lambda: eval_va(automaton, document, pinned), repeat=2)
        rows.append((fields, len(document), elapsed))
        lengths.append(len(document))
        timings.append(elapsed)
    doc_slope = loglog_slope(lengths, timings)
    print_table(
        "E3a: Eval[funcRGX] vs document length",
        ["fields", "|d|", "time s"],
        rows,
    )
    print(f"log-log slope vs |d|: {doc_slope:.2f} (paper: PTIME)")
    assert doc_slope < 4.0

    document = field_document(16, seed=5)
    rows = []
    sizes, timings = [], []
    for fields in EXPRESSION_FIELDS:
        expr = seller_like_sequential_rgx(fields)
        auto = to_va(expr)
        elapsed = measure(
            lambda: eval_va(auto, document, ExtendedMapping.empty()), repeat=2
        )
        rows.append((fields, expr.size(), auto.size(), elapsed))
        sizes.append(expr.size())
        timings.append(elapsed)
    expr_slope = loglog_slope(sizes, timings)
    print_table(
        "E3b: Eval[funcRGX] vs expression size",
        ["fields", "|γ|", "|A|", "time s"],
        rows,
    )
    print(f"log-log slope vs |γ|: {expr_slope:.2f} (paper: PTIME)")
    assert expr_slope < 4.0

    benchmark(lambda: eval_va(automaton, field_document(16, seed=5), pinned))
