"""Server-log extraction with two independent optional fields.

Each access-log line has a path and a status; the authenticated user and
the referrer are optional, giving four possible mapping domains — a
richer incomplete-information workload than Table 1.  Run with::

    python examples/server_logs.py
"""

from collections import Counter

from repro.automata import to_va
from repro.automata.simulate import evaluate_va
from repro.workloads import server_logs


def main() -> None:
    lines = server_logs.generate_lines(12, seed=7)
    document = server_logs.render(lines)
    print("input log:")
    print(document)

    expression = server_logs.access_expression()
    output = evaluate_va(to_va(expression), document)

    print("extracted tuples (None = field absent):")
    tuples = server_logs.extraction_tuples(document, output)
    for path, status, user, ref in sorted(
        tuples, key=lambda t: (t[0], t[1], t[2] or "", t[3] or "")
    ):
        print(f"  {path:<15} {status}  user={user}  ref={ref}")

    domains = Counter(frozenset(m.domain) for m in output)
    print("\nmapping domains observed:")
    for domain, count in sorted(domains.items(), key=lambda kv: sorted(kv[0])):
        print(f"  {sorted(domain)}: {count} mappings")

    assert server_logs.extraction_tuples(document, output) == (
        server_logs.expected_tuples(lines)
    )
    print("\nextraction matches the generator's ground truth ✔")


if __name__ == "__main__":
    main()
