"""The paper's Table 1 scenario: land-registry CSV with optional tax.

Demonstrates why mappings beat relations for incomplete information:
seller rows may or may not carry a tax field, and the Section 3.1
expression extracts the maximum available in either case.  Run with::

    python examples/land_registry.py
"""

from repro.automata import to_va
from repro.automata.simulate import evaluate_va
from repro.evaluation.rules_eval import enumerate_treelike_rule
from repro.rgx.semantics import outputs_relation
from repro.workloads import land_registry


def main() -> None:
    rows = land_registry.generate_rows(8, tax_probability=0.5, seed=42)
    document = land_registry.render(rows)
    print("input document (Table 1 style):")
    print(document)

    # --- the Section 3.1 RGX with an optional tax group --------------------
    expression = land_registry.seller_tax_expression()
    output = evaluate_va(to_va(expression), document)
    print("mappings extracted by the RGX:")
    for mapping in sorted(output, key=lambda m: m["x"]):
        name = mapping["x"].content(document)
        tax_span = mapping.get("y")
        if tax_span is None:
            print(f"  x={name!r}                (no tax information)")
        else:
            print(f"  x={name!r}  y={tax_span.content(document)!r}")

    # The output is NOT a relation: domains differ — exactly the point.
    print(
        "\noutput is a relation?",
        outputs_relation(expression, document),
        "(mappings with and without y coexist)",
    )

    # --- the same task as a tree-like extraction rule ----------------------
    rule = land_registry.seller_rule()
    print(f"\nrule formulation: {rule}")
    rule_output = set(enumerate_treelike_rule(rule, document))
    pairs = land_registry.extraction_pairs(document, rule_output)
    print(
        "rule pipeline extracts:",
        sorted(pairs, key=lambda pair: (pair[0], pair[1] or "")),
    )

    expected = land_registry.expected_extraction(rows)
    assert land_registry.extraction_pairs(document, output) == expected
    assert pairs == expected
    print("\nboth pipelines match the generator's ground truth ✔")


if __name__ == "__main__":
    main()
