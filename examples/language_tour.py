"""A tour of the expressiveness results (Section 4).

One extraction task expressed as RGX, as a variable-stack automaton, and
as extraction rules; the translations between them; and the witnesses of
Theorem 4.6's incomparability.  Run with::

    python examples/language_tour.py
"""

from repro.automata import to_vastk, vastk_to_rgx
from repro.rgx import mappings, parse
from repro.rules import Rule, rgx_to_treelike_rules, treelike_to_rgx
from repro.rules.rule import bare


def main() -> None:
    document = "key=a1;key=b2;"
    expression = parse(".*key=x{[^;]*};.*")
    print(f"task: extract values of 'key' from {document!r}")
    print(f"RGX:  {expression}")

    # --- RGX → automaton → back (Theorem 4.3) ------------------------------
    stack_automaton = to_vastk(expression)
    print(f"VAstk: {stack_automaton.num_states} states")
    recovered = vastk_to_rgx(stack_automaton)
    print(f"recovered RGX (path union): {str(recovered)[:70]}...")
    assert mappings(recovered, document) == mappings(expression, document)
    print("round trip preserves the semantics ✔")

    # --- RGX → union of tree-like rules (Theorem 4.10 / Lemma B.2) ---------
    rules = rgx_to_treelike_rules(expression)
    print(f"\nas a union of {len(rules)} tree-like rule(s):")
    for rule_instance in rules[:3]:
        print(f"  {rule_instance}")
    union_result = set()
    for rule_instance in rules:
        union_result |= rule_instance.evaluate(document)
    assert union_result == mappings(expression, document)
    print("rule union agrees with the RGX ✔")

    # --- tree-like rule → RGX (Lemma B.1) -----------------------------------
    back = treelike_to_rgx(rules[0])
    print(f"\nfirst rule nested back into an RGX: {str(back)[:70]}...")

    # --- Theorem 4.6: the two languages are incomparable -------------------
    print("\nTheorem 4.6 witnesses:")
    overlap_rule = Rule(
        bare("x"),
        (
            ("x", parse("a(y{.*})aa")),
            ("x", parse("aa(z{.*})a")),
        ),
    )
    produced = overlap_rule.evaluate("aaaaa")
    non_hierarchical = [m for m in produced if not m.is_hierarchical()]
    print(
        f"  rule makes y and z overlap non-hierarchically on 'aaaaa': "
        f"{non_hierarchical[0]}"
    )
    print("  (no RGX can output that mapping — RGX outputs are hierarchical)")

    disjunction = parse("a(x{b})|b(x{a})")
    print(
        f"  RGX {disjunction} has models only on 'ab' and 'ba' — "
        "the paper proves no single extraction rule matches exactly these"
    )
    for probe in ["ab", "ba", "aa"]:
        print(f"    on {probe!r}: {sorted(map(str, mappings(disjunction, probe)))}")


if __name__ == "__main__":
    main()
