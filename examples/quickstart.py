"""Quickstart: spans, mappings, variable regex, enumeration.

Walks through Section 2 and Section 3.1 of the paper with the library's
public API.  Run with::

    python examples/quickstart.py
"""

from repro import Document, Span, api, mappings, parse
from repro.automata import to_va
from repro.evaluation import enumerate_va


def main() -> None:
    # --- Section 2: documents and spans -----------------------------------
    d0 = Document("Information extraction")
    print(f"document: {d0!r}  (length {len(d0)})")
    p1, p2 = Span(1, 12), Span(13, 23)
    print(f"span {p1} -> {d0[p1]!r}")
    print(f"span {p2} -> {d0[p2]!r}")
    print(f"the document has {len(d0.spans())} spans in total\n")

    # --- Section 3.1: variable regex ---------------------------------------
    # Extract every word (maximal run of letters) into x.
    expression = parse("( *)x{[^ ]+}( .*|ε)")
    print(f"expression: {expression}")
    for mapping in sorted(
        mappings(expression, d0.text), key=lambda m: m["x"]
    ):
        span = mapping["x"]
        print(f"  x -> {span}  content {d0[span]!r}")

    # --- mappings are partial: optional parts ------------------------------
    # y is extracted only when the optional '!' suffix is present.
    optional = parse("x{[a-z]+}(y{!}|ε)")
    for document in ["hello", "hello!"]:
        result = mappings(optional, document)
        print(f"\n⟦γ⟧ on {document!r}:")
        for mapping in result:
            assigned = {
                variable: mapping[variable].content(document)
                for variable in sorted(mapping.domain)
            }
            print(f"  {assigned}")

    # --- enumeration via the Eval oracle (Algorithm 2) ---------------------
    automaton = to_va(parse(".*x{ab}.*"))
    document = "abab"
    print(f"\nenumerating .*x{{ab}}.* over {document!r}:")
    for mapping in enumerate_va(automaton, document):
        print(f"  {mapping}")

    # --- the batch API: compile once, evaluate many ------------------------
    # api.compile precompiles the automaton into indexed tables; the
    # CompiledSpanner then serves any number of documents through a memoised
    # Eval oracle with span pruning — the engine behind enumerate_va above.
    engine = api.compile(".*Seller: x{[^,]*}, y{[^,]*}")
    documents = [
        "Seller: John, ID75",
        "Seller: Mark, ID7",
        "Buyer: Ana, ID3",
    ]
    print("\nbatch extraction over three documents:")
    for doc, result in zip(documents, engine.evaluate_many(documents)):
        decoded = [
            {v: s.content(doc) for v, s in mapping.items()}
            for mapping in sorted(result, key=lambda m: sorted(m.items()))
        ]
        print(f"  {doc!r} -> {decoded}")

    # --- the corpus service: many documents, stable ids, worker pools ------
    # api.evaluate streams (doc_id, output) results; with workers=N
    # documents are sharded over a process pool and, in ordered mode (the
    # default), the output is identical to the serial run.  A bad
    # document yields an error record instead of aborting the corpus —
    # mirrored on the command line by:
    #   repro '.*Seller: x{[^,]*},.*' --glob 'data/*.csv' --workers 4 --ndjson
    corpus = {
        "north.csv": "Seller: John, ID75\n",
        "south.csv": "Seller: Mark, ID7, $35,000\n",
        "broken.csv": None,  # unreadable: reported, never fatal
    }
    print("\ncorpus extraction with per-document error isolation:")
    for result in api.evaluate(".*Seller: x{[^,\n]*},.*", corpus):
        if result.ok:
            print(f"  {result.doc_id}: {list(result.mappings)}")
        else:
            print(f"  {result.doc_id}: ERROR {result.error}")

    # --- many queries, one engine pass -------------------------------------
    # api.query registers named algebra queries (strings, expression
    # combinators, or JSON specs with "ref" cross-references) and factors
    # their shared cores into one combined engine per document.
    queries = api.query({
        "sellers": ".*Seller: x{[^,\n]*},.*",
        "names": {"op": "project", "of": {"op": "ref", "name": "sellers"},
                  "keep": ["x"]},
    })
    print("\nmulti-query extraction (one engine pass):")
    for name, rows in queries.extract("Seller: John, ID75\n").items():
        print(f"  {name}: {rows}")


if __name__ == "__main__":
    main()
