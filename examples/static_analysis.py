"""Static analysis in action: satisfiability, containment, determinism.

Section 6 of the paper as a working session: check extraction programs
*before* running them on data.  Run with::

    python examples/static_analysis.py
"""

from repro.analysis import (
    contained_va,
    containment_counterexample,
    equivalent_va,
    satisfiable_rgx,
    satisfying_document,
)
from repro.automata import determinize, is_sequential, make_sequential, to_va
from repro.rgx import parse


def main() -> None:
    # --- satisfiability ------------------------------------------------------
    print("satisfiability (Theorems 6.1/6.2):")
    for text in ["x{a*}y{b*}", "x{a}x{b}", "x{x{a}}", "(x{a})*"]:
        expression = parse(text)
        verdict = satisfiable_rgx(expression)
        witness = satisfying_document(to_va(expression))
        print(f"  {text:<14} satisfiable={verdict}  witness={witness!r}")

    # --- sequentiality: the tractability dial --------------------------------
    print("\nsequentiality (Propositions 5.5/5.6):")
    for text in ["x{a*}y{b*}", "(x{a}|y{b})*"]:
        automaton = to_va(parse(text))
        sequential = is_sequential(automaton)
        print(f"  {text:<14} sequential={sequential}", end="")
        if not sequential:
            repaired = make_sequential(automaton)
            print(f"  → sequentialised to {repaired.num_states} states", end="")
        print()

    # --- containment ----------------------------------------------------------
    print("\ncontainment (Theorem 6.4):")
    queries = [
        ("x{a}b", "x{a}."),
        ("x{a|b}", "x{a}"),
        ("x{a}|x{b}", "x{a|b}"),
    ]
    for left, right in queries:
        verdict = contained_va(to_va(parse(left)), to_va(parse(right)))
        print(f"  {left:<10} ⊆ {right:<10} : {verdict}")
        if not verdict:
            witness = containment_counterexample(
                to_va(parse(left)), to_va(parse(right))
            )
            document, mapping = witness
            print(f"      counterexample: d={document!r}, µ={mapping}")

    # --- equivalence of a refactoring ----------------------------------------
    print("\nequivalence check of a refactored expression:")
    original = to_va(parse("x{a}b|x{a}c"))
    refactored = to_va(parse("x{a}(b|c)"))
    print(f"  x{{a}}b|x{{a}}c ≡ x{{a}}(b|c) : {equivalent_va(original, refactored)}")

    # --- determinisation --------------------------------------------------------
    print("\ndeterminisation (Proposition 6.5):")
    nfa = to_va(parse("(a|b)*x{a}(a|b)"))
    dfa = determinize(nfa)
    print(f"  NFA {nfa.num_states} states → DFA {dfa.num_states} states")


if __name__ == "__main__":
    main()
