"""Algebraic laws of the mapping join and the spanner algebra.

These invariants are not stated as theorems in the paper but follow from
the Section 2 definitions; they pin down the semantics against regression.
"""

from hypothesis import given, settings

from repro.spans.mapping import Mapping, join
from repro.spans.span import Span
from tests.strategies import mappings_over


class TestJoinLaws:
    @given(mappings_over(), mappings_over(), mappings_over())
    @settings(max_examples=150)
    def test_join_associative(self, a, b, c):
        assert join(join({a}, {b}), {c}) == join({a}, join({b}, {c}))

    @given(mappings_over(), mappings_over())
    def test_join_distributes_over_union(self, a, b):
        others = {Mapping({"w": Span(1, 1)}), Mapping.empty()}
        assert join({a} | {b}, others) == join({a}, others) | join({b}, others)

    @given(mappings_over())
    def test_empty_mapping_is_unit(self, mu):
        assert join({mu}, {Mapping.empty()}) == {mu}

    @given(mappings_over())
    def test_join_idempotent_on_singletons(self, mu):
        assert join({mu}, {mu}) == {mu}


class TestSpannerAlgebraLaws:
    DOCS = ["", "a", "b", "ab", "ba"]

    def spanners(self):
        from repro.spanner import Spanner

        return (
            Spanner.compile("x{a*}y{b*}"),
            Spanner.compile("x{a*}.*"),
            Spanner.compile("(y{b}|ε).*"),
        )

    def test_union_commutative(self):
        s1, s2, _ = self.spanners()
        left, right = s1.union(s2), s2.union(s1)
        for document in self.DOCS:
            assert left.mappings(document) == right.mappings(document)

    def test_join_commutative(self):
        s1, s2, _ = self.spanners()
        left, right = s1.join(s2), s2.join(s1)
        for document in self.DOCS:
            assert left.mappings(document) == right.mappings(document)

    def test_join_associative_on_semantics(self):
        s1, s2, s3 = self.spanners()
        left = s1.join(s2).join(s3)
        right = s1.join(s2.join(s3))
        for document in self.DOCS:
            assert left.mappings(document) == right.mappings(document)

    def test_projection_composes(self):
        s1, _, _ = self.spanners()
        twice = s1.project({"x", "y"}).project({"x"})
        once = s1.project({"x"})
        for document in self.DOCS:
            assert twice.mappings(document) == once.mappings(document)

    def test_projection_to_empty_is_boolean(self):
        s1, _, _ = self.spanners()
        boolean = s1.project(set())
        for document in self.DOCS:
            result = boolean.mappings(document)
            assert result in (set(), {Mapping.empty()})
            assert bool(result) == bool(s1.mappings(document))

    def test_union_contains_both_sides(self):
        s1, s2, _ = self.spanners()
        combined = s1.union(s2)
        assert s1.contained_in(combined)
        assert s2.contained_in(combined)

    def test_join_contained_in_neither_necessarily(self):
        # µ1 ∪ µ2 typically has a larger domain than either side's output,
        # so the join is generally incomparable — but joining with the
        # universal boolean spanner is the identity.
        from repro.spanner import Spanner

        s1, _, _ = self.spanners()
        true_spanner = Spanner.compile(".*")
        identity = s1.join(true_spanner)
        for document in self.DOCS:
            assert identity.mappings(document) == s1.mappings(document)
