"""Tarjan SCC and topological order (used by Theorem 4.7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.graphs import (
    reachable_from,
    strongly_connected_components,
    topological_order,
)


class TestScc:
    def test_single_cycle(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert set(components[0]) == {"a", "b", "c"}

    def test_dag_gives_singletons(self):
        graph = {"a": ["b", "c"], "b": ["c"], "c": []}
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)

    def test_reverse_topological_emission(self):
        graph = {"a": ["b"], "b": []}
        components = strongly_connected_components(graph)
        # b can't reach a, so b's component is emitted first.
        assert components[0] == ["b"]

    def test_two_cycles_bridge(self):
        graph = {
            "a": ["b"], "b": ["a", "c"],
            "c": ["d"], "d": ["c"],
        }
        components = strongly_connected_components(graph)
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c", "d"]]
        # {c,d} is downstream, emitted before {a,b}.
        assert set(components[0]) == {"c", "d"}

    def test_implicit_nodes(self):
        graph = {"a": ["ghost"]}
        components = strongly_connected_components(graph)
        assert sorted(sorted(c) for c in components) == [["a"], ["ghost"]]

    def test_deep_chain_no_recursion_error(self):
        graph = {i: [i + 1] for i in range(5000)}
        components = strongly_connected_components(graph)
        assert len(components) == 5001

    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.sets(st.integers(0, 7), max_size=4).map(list),
            max_size=8,
        )
    )
    def test_components_partition_nodes(self, graph):
        components = strongly_connected_components(graph)
        nodes = set(graph) | {s for succ in graph.values() for s in succ}
        flattened = [node for component in components for node in component]
        assert sorted(flattened) == sorted(nodes)


class TestTopologicalOrder:
    def test_simple_dag(self):
        order = topological_order({"a": ["b"], "b": ["c"], "c": []})
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_order({"a": ["b"], "b": ["a"]})

    def test_self_loop_raises(self):
        with pytest.raises(ValueError):
            topological_order({"a": ["a"]})


class TestReachability:
    def test_includes_sources(self):
        assert reachable_from({"a": ["b"]}, ["a"]) == {"a", "b"}

    def test_unreachable_excluded(self):
        graph = {"a": ["b"], "c": ["d"]}
        assert reachable_from(graph, ["a"]) == {"a", "b"}

    def test_multiple_sources(self):
        graph = {"a": ["b"], "c": ["d"]}
        assert reachable_from(graph, ["a", "c"]) == {"a", "b", "c", "d"}
