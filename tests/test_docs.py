"""The documentation is executable: tools/check_docs.py passes.

Runs the same checker the CI docs job runs — every fenced python block in
README.md and docs/*.md must execute, and every intra-repo markdown link
must resolve — so documentation drift fails the tier-1 suite, not just CI.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_docs_tree_exists():
    for page in ("architecture.md", "api.md", "semantics.md", "cli.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"


def test_check_docs_passes():
    completed = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"docs check failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "python block(s) executed" in completed.stdout


def test_check_docs_catches_broken_link(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [missing](./absent.md)\n")
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(page)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 1
    assert "broken link" in completed.stderr


def test_check_docs_catches_failing_block(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("```python\nraise RuntimeError('drifted')\n```\n")
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(page)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 1
    assert "code block failed" in completed.stderr
