"""Randomised cross-validation of Eval against the reference semantics.

For random expressions, documents, and *random extended mappings* (pins
to spans, pins to ⊥, free variables), the Eval verdict must equal
"some reference mapping admits the pin".
"""

import random

import pytest

from repro.automata.thompson import to_va
from repro.evaluation.eval_problem import (
    eval_general_va,
    eval_va,
    eval_va_permutation_baseline,
)
from repro.rgx.semantics import mappings
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span
from repro.workloads.expressions import random_document, random_rgx


def random_pin(variables, document_length: int, rng: random.Random) -> ExtendedMapping:
    assignments = {}
    for variable in variables:
        roll = rng.random()
        if roll < 0.4:
            continue  # leave free
        if roll < 0.6:
            assignments[variable] = NULL
            continue
        begin = rng.randint(1, document_length + 1)
        end = rng.randint(begin, document_length + 1)
        assignments[variable] = Span(begin, end)
    return ExtendedMapping(assignments)


@pytest.mark.parametrize("seed", range(40))
def test_eval_matches_reference(seed):
    rng = random.Random(seed)
    expression = random_rgx(8, seed=seed)
    document = random_document(rng.randint(0, 4), seed=seed * 3 + 1)
    automaton = to_va(expression)
    reference = mappings(expression, document)
    for trial in range(4):
        pinned = random_pin(
            sorted(expression.variables()), len(document), rng
        )
        expected = any(pinned.admits(m) for m in reference)
        assert eval_va(automaton, document, pinned) == expected, (
            expression,
            document,
            pinned,
        )


@pytest.mark.parametrize("seed", range(15))
def test_general_and_permutation_baseline_agree(seed):
    rng = random.Random(seed + 7_000)
    expression = random_rgx(7, seed=seed + 7_000)
    document = random_document(rng.randint(0, 3), seed=seed * 5 + 2)
    automaton = to_va(expression)
    for trial in range(3):
        pinned = random_pin(
            sorted(expression.variables()), len(document), rng
        )
        assert eval_general_va(
            automaton, document, pinned
        ) == eval_va_permutation_baseline(automaton, document, pinned)


@pytest.mark.parametrize("seed", range(15))
def test_treelike_rule_eval_matches_reference(seed):
    """Random sequential tree-like rules: Eval vs the reference semantics."""
    from repro.evaluation.rules_eval import eval_treelike_rule
    from repro.rgx.ast import ANY_STAR, char, concat, union, var as bare
    from repro.rules.rule import Rule

    rng = random.Random(seed + 11_000)
    # Random small tree: doc -> x (-> y?) with random letter scaffolding.
    letters = "ab"
    pieces = [char(rng.choice(letters)), bare("x"), char(rng.choice(letters))]
    rng.shuffle(pieces)
    root = concat(*pieces)
    if rng.random() < 0.7:
        x_formula = union(
            concat(bare("y"), char(rng.choice(letters))), ANY_STAR
        )
        rule = Rule(root, (("x", x_formula), ("y", ANY_STAR)))
    else:
        rule = Rule(root, (("x", ANY_STAR),))
    document = random_document(rng.randint(0, 4), seed=seed * 9 + 3)
    reference = rule.evaluate(document)
    for trial in range(4):
        pinned = random_pin(["x", "y"], len(document), rng)
        expected = any(pinned.admits(m) for m in reference)
        assert eval_treelike_rule(rule, document, pinned) == expected, (
            str(rule),
            document,
            pinned,
        )
