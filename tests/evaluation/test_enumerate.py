"""Algorithm 2: enumeration by Eval oracle (Theorem 5.1)."""

import pytest
from hypothesis import given, settings

from repro.automata.thompson import to_va
from repro.evaluation.enumerate import (
    enumerate_direct,
    enumerate_rgx,
    enumerate_va,
    enumerate_with_oracle,
)
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span
from tests.strategies import documents, rgx_expressions


class TestCompleteness:
    CASES = [
        ("x{a*}y{b*}", "aabb"),
        ("(x{(a|b)*}|y{(a|b)*})*", "aab"),
        ("x{a}|b", "a"),
        (".*x{[^b]}.*", "abca"),
    ]

    @pytest.mark.parametrize("text,document", CASES)
    def test_enumerates_exactly_the_semantics(self, text, document):
        expression = parse(text)
        produced = list(enumerate_rgx(expression, document))
        assert set(produced) == mappings(expression, document)

    @pytest.mark.parametrize("text,document", CASES)
    def test_no_duplicates(self, text, document):
        produced = list(enumerate_rgx(parse(text), document))
        assert len(produced) == len(set(produced))

    @given(rgx_expressions(max_depth=3), documents(max_length=4))
    @settings(max_examples=40, deadline=None)
    def test_random_cross_validation(self, expression, document):
        automaton = to_va(expression)
        assert set(enumerate_va(automaton, document)) == mappings(
            expression, document
        )

    @pytest.mark.parametrize("text,document", CASES)
    def test_direct_enumerator_agrees(self, text, document):
        automaton = to_va(parse(text))
        assert set(enumerate_direct(automaton, document)) == set(
            enumerate_va(automaton, document)
        )


class TestOracleDiscipline:
    def test_oracle_called_polynomially_between_outputs(self):
        """Theorem 5.1's delay argument: between two outputs the oracle is
        invoked at most |vars|·(|spans|+1) times."""
        expression = parse("x{a*}y{b*}")
        automaton = to_va(expression)
        document = "aabb"
        calls = [0]

        from repro.evaluation.eval_problem import eval_va

        def counting_oracle(candidate: ExtendedMapping) -> bool:
            calls[0] += 1
            return eval_va(automaton, document, candidate)

        span_count = (len(document) + 1) * (len(document) + 2) // 2
        bound = 2 * (span_count + 1) + 2  # vars × (spans + ⊥) + slack
        gaps = []
        last = 0
        for _ in enumerate_with_oracle(
            counting_oracle, {"x", "y"}, document
        ):
            gaps.append(calls[0] - last)
            last = calls[0]
        assert gaps, "expected at least one output"
        assert max(gaps) <= bound

    def test_start_constraint_respected(self):
        expression = parse("(x{(a|b)*}|y{(a|b)*})*")
        automaton = to_va(expression)
        document = "ab"
        from repro.evaluation.eval_problem import eval_va

        start = ExtendedMapping({"x": Span(1, 2)})
        produced = set(
            enumerate_with_oracle(
                lambda candidate: eval_va(automaton, document, candidate),
                automaton.mentioned_variables,
                document,
                start=start,
            )
        )
        expected = {
            m
            for m in mappings(expression, document)
            if m.get("x") == Span(1, 2)
        }
        assert produced == expected

    def test_unsatisfiable_enumerates_nothing(self):
        assert list(enumerate_rgx(parse("x{a}x{b}"), "ab")) == []


class TestLazySpanMaterialisation:
    """Regression: the O(|d|²) span list must not be built when unused."""

    def test_no_spans_built_without_variables(self, monkeypatch):
        import repro.evaluation.enumerate as module

        def explode(*_args, **_kwargs):
            raise AssertionError("span list built with no variables to refine")

        monkeypatch.setattr(module, "Span", explode)
        produced = list(
            enumerate_with_oracle(lambda candidate: True, [], "a" * 50)
        )
        assert produced == [module.Mapping.empty()]

    def test_no_spans_built_when_start_pins_everything(self, monkeypatch):
        import repro.evaluation.enumerate as module

        start = ExtendedMapping({"x": Span(1, 2), "y": NULL})

        def explode(*_args, **_kwargs):
            raise AssertionError("span list built although every variable is pinned")

        monkeypatch.setattr(module, "Span", explode)
        produced = list(
            enumerate_with_oracle(
                lambda candidate: True, ["x", "y"], "a" * 50, start=start
            )
        )
        assert produced == [start.assigned()]

    def test_empty_document_still_enumerates(self):
        produced = list(enumerate_rgx(parse("x{a*}"), ""))
        assert len(produced) == 1
        assert produced[0]["x"] == Span(1, 1)
