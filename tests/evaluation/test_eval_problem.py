"""The Eval decision problem (Section 5.1, Theorems 5.7 and 5.10)."""

import pytest
from hypothesis import given, settings

from repro.automata.sequential import is_sequential
from repro.automata.thompson import to_va
from repro.evaluation.eval_problem import (
    eval_general_va,
    eval_sequential_va,
    eval_va,
    eval_va_permutation_baseline,
    model_check_va,
    non_empty_va,
)
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.spans.mapping import NULL, ExtendedMapping, Mapping
from repro.spans.span import Span
from tests.strategies import documents, rgx_expressions


def brute_force_eval(expression, document, pinned: ExtendedMapping) -> bool:
    """Ground truth: does any µ' ∈ ⟦γ⟧_d extend the pinned mapping?"""
    return any(pinned.admits(m) for m in mappings(expression, document))


class TestAgainstBruteForce:
    CASES = [
        ("x{a*}y{b*}", "aabb"),
        ("(x{(a|b)*}|y{(a|b)*})*", "ab"),
        ("x{a}|b", "a"),
        ("x{εε}(a|b)*", "ab"),
        (".*x{a}.*", "aba"),
    ]

    @pytest.mark.parametrize("text,document", CASES)
    def test_all_extended_mappings(self, text, document):
        """Exhaustively compare Eval against the reference on every pin of
        one variable plus NULL/unconstrained for the others."""
        expression = parse(text)
        automaton = to_va(expression)
        variables = sorted(expression.variables())
        spans = [
            Span(i, j)
            for i in range(1, len(document) + 2)
            for j in range(i, len(document) + 2)
        ]
        for variable in variables:
            for value in list(spans) + [NULL]:
                pinned = ExtendedMapping({variable: value})
                expected = brute_force_eval(expression, document, pinned)
                assert eval_va(automaton, document, pinned) == expected, (
                    text,
                    variable,
                    value,
                )

    @pytest.mark.parametrize("text,document", CASES)
    def test_general_and_baseline_agree(self, text, document):
        expression = parse(text)
        automaton = to_va(expression)
        for mapping in mappings(expression, document):
            pinned = ExtendedMapping.from_mapping(mapping)
            assert eval_general_va(automaton, document, pinned)
            assert eval_va_permutation_baseline(automaton, document, pinned)

    @given(rgx_expressions(max_depth=3), documents(max_length=4))
    @settings(max_examples=60, deadline=None)
    def test_nonempty_matches_reference(self, expression, document):
        automaton = to_va(expression)
        assert non_empty_va(automaton, document) == bool(
            mappings(expression, document)
        )


class TestSequentialAlgorithm:
    def test_agrees_with_general_on_sequential_input(self):
        expression = parse("x{a*}(y{b}|ε)c*")
        automaton = to_va(expression)
        assert is_sequential(automaton)
        document = "aabc"
        for value in [Span(1, 3), Span(3, 4), NULL]:
            for variable in ("x", "y"):
                pinned = ExtendedMapping({variable: value})
                assert eval_sequential_va(
                    automaton, document, pinned
                ) == eval_general_va(automaton, document, pinned)

    def test_pinned_empty_span(self):
        expression = parse("x{ε}a")
        automaton = to_va(expression)
        assert eval_sequential_va(
            automaton, "a", ExtendedMapping({"x": Span(1, 1)})
        )
        assert not eval_sequential_va(
            automaton, "a", ExtendedMapping({"x": Span(2, 2)})
        )

    def test_unknown_variable_pinned(self):
        automaton = to_va(parse("x{a}"))
        pinned = ExtendedMapping({"zz": Span(1, 1)})
        assert not eval_va(automaton, "a", pinned)

    def test_null_forbids_assignment(self):
        automaton = to_va(parse("x{a}|b"))
        assert eval_va(automaton, "b", ExtendedMapping({"x": NULL}))
        assert not eval_va(automaton, "a", ExtendedMapping({"x": NULL}))

    def test_span_out_of_bounds(self):
        automaton = to_va(parse("x{a*}"))
        assert not eval_va(automaton, "a", ExtendedMapping({"x": Span(1, 9)}))


class TestEmptySpanOrdering:
    def test_close_cannot_precede_open_at_same_position(self):
        # y{ε}x{ε}: both spans are (1,1); a pinned check must respect that
        # each variable opens before it closes within the position.
        expression = parse("y{ε}x{ε}")
        automaton = to_va(expression)
        pinned = ExtendedMapping({"x": Span(1, 1), "y": Span(1, 1)})
        assert eval_general_va(automaton, "", pinned)
        assert eval_va_permutation_baseline(automaton, "", pinned)


class TestModelCheck:
    @pytest.mark.parametrize("text,document", [("x{a*}y{b*}", "ab"), ("x{a}|b", "b")])
    def test_members_check_out(self, text, document):
        expression = parse(text)
        automaton = to_va(expression)
        for mapping in mappings(expression, document):
            assert model_check_va(automaton, document, mapping)

    def test_non_members_rejected(self):
        automaton = to_va(parse("x{a*}y{b*}"))
        assert not model_check_va(
            automaton, "ab", Mapping({"x": Span(1, 2)})
        )  # y missing: ModelCheck is exact, unlike Eval

    def test_eval_accepts_where_model_check_rejects(self):
        automaton = to_va(parse("x{a*}y{b*}"))
        partial = Mapping({"x": Span(1, 2)})
        assert eval_va(
            automaton, "ab", ExtendedMapping.from_mapping(partial)
        )
        assert not model_check_va(automaton, "ab", partial)
