"""Tree-like rule evaluation in polynomial time (Theorem 5.9)."""

import pytest

from repro.evaluation.rules_eval import (
    enumerate_treelike_rule,
    eval_treelike_rule,
)
from repro.rgx.ast import ANY_STAR, char, concat, string, union
from repro.rgx.parser import parse
from repro.rules.rule import Rule, bare, rule
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span
from repro.util.errors import RuleError

DOCS = ["", "a", "ab", "aab", "abb", "acdbq", "ba", "ca", "b", "cca"]

RULES = [
    rule(
        concat(bare("x"), ANY_STAR, bare("y")),
        ("x", parse("a*")),
        ("y", parse("b*")),
    ),
    rule(union(bare("x"), bare("y")), ("x", parse("ab*")), ("y", parse("ba*"))),
    rule(
        concat(char("a"), bare("x"), char("b"), bare("y")),
        ("x", concat(string("c"), bare("z"))),
        ("y", ANY_STAR),
        ("z", char("d")),
    ),
    rule(
        bare("x"),
        ("x", union(concat(bare("u"), char("a")), char("b"))),
        ("u", parse("c*")),
    ),
]


class TestEnumerationMatchesReference:
    @pytest.mark.parametrize("index", range(len(RULES)))
    def test_all_documents(self, index):
        r = RULES[index]
        for document in DOCS:
            expected = r.evaluate(document)
            produced = set(enumerate_treelike_rule(r, document))
            assert produced == expected, (str(r), document)


class TestEvalDecisions:
    def test_members_accepted(self):
        r = RULES[0]
        for document in DOCS:
            for mapping in r.evaluate(document):
                pinned = ExtendedMapping.total_for(mapping, r.variables())
                assert eval_treelike_rule(r, document, pinned)

    def test_partial_pins(self):
        r = RULES[0]
        # x must cover a prefix of a's; pin x and leave y free.
        assert eval_treelike_rule(
            r, "ab", ExtendedMapping({"x": Span(1, 2)})
        )
        assert not eval_treelike_rule(
            r, "ab", ExtendedMapping({"x": Span(1, 3)})
        )

    def test_null_pin(self):
        r = RULES[1]
        # On "ab" only x can match; pinning x to ⊥ kills everything.
        assert eval_treelike_rule(r, "ab", ExtendedMapping({"y": NULL}))
        assert not eval_treelike_rule(r, "ab", ExtendedMapping({"x": NULL}))

    def test_deep_pin_forces_ancestors(self):
        r = RULES[2]
        document = "acdbq"
        # Pinning z forces the x subtree around it.
        assert eval_treelike_rule(
            r, document, ExtendedMapping({"z": Span(3, 4)})
        )
        assert not eval_treelike_rule(
            r, document, ExtendedMapping({"z": Span(2, 3)})
        )

    def test_deep_pin_with_null_ancestor_contradicts(self):
        r = RULES[2]
        pinned = ExtendedMapping({"z": Span(3, 4), "x": NULL})
        assert not eval_treelike_rule(r, "acdbq", pinned)

    def test_requires_tree_like(self):
        cyclic = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        with pytest.raises(RuleError):
            eval_treelike_rule(cyclic, "a", ExtendedMapping.empty())

    def test_requires_sequential(self):
        non_sequential = Rule(
            concat(bare("x"), bare("x")), (), check_span_rgx=False
        )
        with pytest.raises(RuleError):
            eval_treelike_rule(non_sequential, "a", ExtendedMapping.empty())


class TestIncompleteInformationScenario:
    def test_optional_field_rule(self):
        from repro.workloads import land_registry

        r = land_registry.seller_rule()
        document = "Seller: Ana, ID7\nSeller: Bo, ID9, $5,100\n"
        produced = set(enumerate_treelike_rule(r, document))
        assert produced == r.evaluate(document)
        pairs = land_registry.extraction_pairs(document, produced)
        assert pairs == {("Ana", None), ("Bo", "$5,100")}
