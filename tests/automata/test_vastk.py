"""Variable-stack automata: stack discipline and hierarchical outputs."""

import pytest
from hypothesis import given, settings

from repro.automata.labels import EPS, POP, Close, Open, sym
from repro.automata.va import VABuilder
from repro.automata.vastk import VAStk
from repro.spans.mapping import Mapping
from repro.spans.span import Span
from repro.util.errors import AutomatonError
from tests.strategies import documents, rgx_expressions


def nested_automaton() -> VAStk:
    """x{ y{a} b }"""
    builder = VABuilder()
    s = builder.add_states(8)
    builder.add(s[0], Open("x"), s[1])
    builder.add(s[1], Open("y"), s[2])
    builder.add(s[2], sym("a"), s[3])
    builder.add(s[3], POP, s[4])
    builder.add(s[4], sym("b"), s[5])
    builder.add(s[5], POP, s[6])
    builder.add(s[6], EPS, s[7])
    return builder.build_vastk(initial=s[0], final=s[7])


class TestConstruction:
    def test_named_close_rejected(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Close("x"), q1)
        with pytest.raises(AutomatonError):
            builder.build_vastk(initial=q0, final=q1)

    def test_variables(self):
        assert nested_automaton().variables == {"x", "y"}


class TestStackSemantics:
    def test_nested_capture(self):
        result = nested_automaton().evaluate("ab")
        assert result == {
            Mapping({"x": Span(1, 3), "y": Span(1, 2)})
        }

    def test_pop_on_empty_stack_blocks(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, POP, q1)
        automaton = builder.build_vastk(initial=q0, final=q1)
        assert automaton.evaluate("") == set()

    def test_unpopped_variables_are_unused(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Open("x"), q1)
        automaton = builder.build_vastk(initial=q0, final=q1)
        assert automaton.evaluate("") == {Mapping.empty()}

    def test_reopening_blocked(self):
        builder = VABuilder()
        s = builder.add_states(4)
        builder.add(s[0], Open("x"), s[1])
        builder.add(s[1], POP, s[2])
        builder.add(s[2], Open("x"), s[3])
        automaton = builder.build_vastk(initial=s[0], final=s[3])
        assert automaton.evaluate("") == set()

    def test_outputs_always_hierarchical(self):
        # LIFO closing forces hierarchical mappings — the point of VAstk.
        result = nested_automaton().evaluate("ab")
        assert all(m.is_hierarchical() for m in result)


class TestToVa:
    def test_equivalence_on_nested(self):
        from repro.automata.simulate import evaluate_va

        automaton = nested_automaton()
        converted = automaton.to_va()
        for document in ["", "a", "ab", "ba"]:
            assert evaluate_va(converted, document) == automaton.evaluate(
                document
            )

    @given(rgx_expressions(max_depth=3), documents(max_length=3))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_random(self, expression, document):
        from repro.automata.simulate import evaluate_va
        from repro.automata.thompson import to_vastk

        automaton = to_vastk(expression)
        assert evaluate_va(automaton.to_va(), document) == (
            automaton.evaluate(document)
        )
