"""VA construction, validation, and the run semantics of Section 3.2."""

import pytest

from repro.alphabet import CharSet
from repro.automata.labels import EPS, POP, Close, Open, Sym, sym
from repro.automata.simulate import accepts_string, evaluate_va
from repro.automata.va import VA, VABuilder, is_deterministic
from repro.spans.mapping import Mapping
from repro.spans.span import Span
from repro.util.errors import AutomatonError


def simple_va() -> VA:
    """q0 --x⊢--> q1 --a--> q2 --⊣x--> q3"""
    builder = VABuilder()
    q0, q1, q2, q3 = builder.add_states(4)
    builder.add(q0, Open("x"), q1)
    builder.add(q1, sym("a"), q2)
    builder.add(q2, Close("x"), q3)
    return builder.build(initial=q0, final=q3)


class TestConstruction:
    def test_variables_from_opens(self):
        assert simple_va().variables == {"x"}

    def test_out_of_range_state_rejected(self):
        with pytest.raises(AutomatonError):
            VA(2, 0, 1, ((0, sym("a"), 5),))

    def test_bad_initial_rejected(self):
        with pytest.raises(AutomatonError):
            VA(2, 7, 1, ())

    def test_pop_label_rejected_in_va(self):
        with pytest.raises(AutomatonError):
            VA(2, 0, 1, ((0, POP, 1),))

    def test_size(self):
        assert simple_va().size() == 4 + 3

    def test_mentioned_vs_opened_variables(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Close("ghost"), q1)
        va = builder.build(initial=q0, final=q1)
        assert va.variables == frozenset()
        assert va.mentioned_variables == {"ghost"}


class TestRunSemantics:
    def test_single_capture(self):
        assert evaluate_va(simple_va(), "a") == {Mapping({"x": Span(1, 2)})}

    def test_rejects_wrong_letter(self):
        assert evaluate_va(simple_va(), "b") == set()

    def test_rejects_wrong_length(self):
        assert evaluate_va(simple_va(), "aa") == set()

    def test_close_without_open_never_fires(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Close("x"), q1)
        builder.add(q0, EPS, q1)
        va = builder.build(initial=q0, final=q1)
        assert evaluate_va(va, "") == {Mapping.empty()}

    def test_open_without_close_is_unused(self):
        # The paper: a variable opened but never closed stays undefined.
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Open("x"), q1)
        va = builder.build(initial=q0, final=q1)
        assert evaluate_va(va, "") == {Mapping.empty()}

    def test_double_open_is_invalid(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q1, Open("x"), q2)
        va = builder.build(initial=q0, final=q2)
        assert evaluate_va(va, "") == set()

    def test_empty_span_capture(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q1, Close("x"), q2)
        va = builder.build(initial=q0, final=q2)
        assert evaluate_va(va, "") == {Mapping({"x": Span(1, 1)})}

    def test_charset_transition(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Sym(CharSet.excluding(",")), q1)
        va = builder.build(initial=q0, final=q1)
        assert evaluate_va(va, "z") == {Mapping.empty()}
        assert evaluate_va(va, ",") == set()

    def test_accepts_string_matches_evaluate(self):
        va = simple_va()
        for document in ["", "a", "b", "aa"]:
            assert accepts_string(va, document) == bool(evaluate_va(va, document))

    def test_pruning_agrees_with_no_pruning(self):
        va = simple_va()
        for document in ["", "a", "aa"]:
            assert evaluate_va(va, document, prune=False) == evaluate_va(
                va, document, prune=True
            )


class TestRewrites:
    def test_trimmed_removes_dead_states(self):
        builder = VABuilder()
        q0, q1, dead = builder.add_states(3)
        builder.add(q0, sym("a"), q1)
        builder.add(dead, sym("b"), dead)
        va = builder.build(initial=q0, final=q1)
        trimmed = va.trimmed()
        assert trimmed.num_states == 2
        assert evaluate_va(trimmed, "a") == evaluate_va(va, "a")

    def test_trimmed_empty_language(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        va = builder.build(initial=q0, final=q1)
        trimmed = va.trimmed()
        assert evaluate_va(trimmed, "") == set()

    def test_rename_variables(self):
        renamed = simple_va().rename_variables({"x": "w"})
        assert renamed.variables == {"w"}
        assert evaluate_va(renamed, "a") == {Mapping({"w": Span(1, 2)})}

    def test_renumbered_shifts(self):
        va = simple_va()
        shifted = va.renumbered(10)
        assert shifted.initial == va.initial + 10
        assert evaluate_va(shifted, "a") == evaluate_va(va, "a")

    def test_add_word_builder(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add_word(q0, "abc", q1)
        va = builder.build(initial=q0, final=q1)
        assert evaluate_va(va, "abc") == {Mapping.empty()}
        assert evaluate_va(va, "ab") == set()

    def test_describe_mentions_transitions(self):
        text = simple_va().describe()
        assert "x⊢" in text and "⊣x" in text


class TestDeterminism:
    def test_simple_chain_is_deterministic(self):
        assert is_deterministic(simple_va())

    def test_epsilon_breaks_determinism(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, EPS, q1)
        assert not is_deterministic(builder.build(initial=q0, final=q1))

    def test_overlapping_charsets_break_determinism(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Sym(CharSet.any()), q1)
        builder.add(q0, sym("a"), q2)
        assert not is_deterministic(builder.build(initial=q0, final=q1))

    def test_disjoint_charsets_keep_determinism(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, sym("a"), q1)
        builder.add(q0, sym("b"), q2)
        assert is_deterministic(builder.build(initial=q0, final=q1))

    def test_duplicate_op_breaks_determinism(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q0, Open("x"), q2)
        assert not is_deterministic(builder.build(initial=q0, final=q1))
