"""State elimination and path union (Theorems 4.3/4.4, Figure 1)."""

import pytest
from hypothesis import given, settings

from repro.automata.path_union import (
    eliminate_states,
    enumerate_walks,
    va_to_rgx,
    vastk_to_rgx,
)
from repro.automata.thompson import to_va, to_vastk
from repro.automata.va import VABuilder
from repro.automata.labels import Close, Open, sym
from repro.rgx.parser import parse
from repro.rgx.properties import is_functional
from repro.rgx.ast import Union
from repro.rgx.semantics import mappings
from repro.util.errors import NotSupportedError
from tests.strategies import documents, rgx_expressions

ROUNDTRIP_CASES = [
    ("x{a*}y{b*}", ["", "a", "b", "ab", "aabb", "ba"]),
    ("(x{(a|b)*}|y{(a|b)*})*", ["", "a", "ab", "aab"]),
    ("x{a}|b", ["a", "b"]),
    ("x{y{a}b}c", ["abc", "ab"]),
    ("(a|b)*x{c?}d", ["ad", "abcd", "d", "cd"]),
]


class TestVastkToRgx:
    @pytest.mark.parametrize("text,docs", ROUNDTRIP_CASES)
    def test_roundtrip_semantics(self, text, docs):
        expression = parse(text)
        recovered = vastk_to_rgx(to_vastk(expression))
        for document in docs:
            assert mappings(recovered, document) == mappings(
                expression, document
            )

    @given(rgx_expressions(), documents(max_length=4))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random(self, expression, document):
        recovered = vastk_to_rgx(to_vastk(expression))
        if recovered is None:
            assert mappings(expression, document) == set()
        else:
            assert mappings(recovered, document) == mappings(
                expression, document
            )

    def test_unsatisfiable_yields_none(self):
        # x{a}x{b} has an empty spanner: the union of walks is empty only
        # when no consistent walk exists... the Thompson automaton still
        # has walks (each opening x once), so this yields an expression
        # equivalent to the empty spanner instead.
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        va = builder.build_vastk(initial=q0, final=q1)
        assert vastk_to_rgx(va) is None

    def test_walk_disjuncts_are_functional(self):
        # Theorem 4.3's corollary: every RGX is an (exponential) union of
        # functional RGX formulas.
        expression = parse("(x{(a|b)*}|y{(a|b)*})*")
        recovered = vastk_to_rgx(to_vastk(expression))
        disjuncts = (
            recovered.options if isinstance(recovered, Union) else [recovered]
        )
        assert all(is_functional(d) for d in disjuncts)
        assert len(disjuncts) >= 3  # ε-only, x-only, y-only, both orders


class TestVaToRgx:
    @pytest.mark.parametrize("text,docs", ROUNDTRIP_CASES)
    def test_roundtrip_semantics(self, text, docs):
        expression = parse(text)
        recovered = va_to_rgx(to_va(expression))
        for document in docs:
            assert mappings(recovered, document) == mappings(
                expression, document
            )

    def test_hierarchical_closes_renested(self):
        # x and y close at the same position (ε between): ops commute and
        # the walk can be renested into an RGX.
        builder = VABuilder()
        states = builder.add_states(6)
        builder.add(states[0], Open("x"), states[1])
        builder.add(states[1], Open("y"), states[2])
        builder.add(states[2], sym("a"), states[3])
        builder.add(states[3], Close("x"), states[4])
        builder.add(states[4], Close("y"), states[5])
        va = builder.build(initial=states[0], final=states[5])
        from repro.automata.simulate import evaluate_va

        recovered = va_to_rgx(va)
        assert mappings(recovered, "a") == evaluate_va(va, "a")

    def test_non_hierarchical_rejected(self):
        # x opens, a letter, y opens, a letter, x closes, a letter, y
        # closes: spans properly overlap — no RGX can express this
        # (Theorem 4.6), and the translation must refuse.
        builder = VABuilder()
        states = builder.add_states(8)
        builder.add(states[0], Open("x"), states[1])
        builder.add(states[1], sym("a"), states[2])
        builder.add(states[2], Open("y"), states[3])
        builder.add(states[3], sym("a"), states[4])
        builder.add(states[4], Close("x"), states[5])
        builder.add(states[5], sym("a"), states[6])
        builder.add(states[6], Close("y"), states[7])
        va = builder.build(initial=states[0], final=states[7])
        with pytest.raises(NotSupportedError):
            va_to_rgx(va)


class TestEliminationGraph:
    def test_graph_shape(self):
        automaton = to_vastk(parse("x{a}b"))
        graph = eliminate_states(automaton)
        # Kept nodes: fresh initial/final plus one per operation.
        assert graph.op_edge_count() == 2
        walks = enumerate_walks(graph, stack_discipline=True)
        assert len(walks) == 1

    def test_walks_bounded_by_variables(self):
        automaton = to_vastk(parse("(x{a}|y{b})*"))
        graph = eliminate_states(automaton)
        walks = enumerate_walks(graph, stack_discipline=True)
        # Each walk opens each variable at most once.
        assert 1 <= len(walks) <= 32
        for walk in walks:
            opens = [e for e in walk if isinstance(e.op, Open)]
            assert len({e.op.variable for e in opens}) == len(opens)
