"""Sequentiality: the check of Prop 5.5 and the construction of Prop 5.6."""

import pytest

from repro.automata.labels import EPS, Close, Open, sym
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.automata.va import VABuilder
from repro.rgx.parser import parse
from repro.workloads.expressions import random_va


class TestCheck:
    @pytest.mark.parametrize(
        "text", ["x{a*}y{b*}", "(a|b)*x{a}", "x{(a|b)*}(y{a*}|ε)", "x{a}|x{b}"]
    )
    def test_sequential_expressions(self, text):
        assert is_sequential(to_va(parse(text)))

    @pytest.mark.parametrize("text", ["x{a}x{b}", "(x{a})*"])
    def test_non_sequential_expressions(self, text):
        assert not is_sequential(to_va(parse(text)))

    def test_double_open_path(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q1, Open("x"), q2)
        assert not is_sequential(builder.build(initial=q0, final=q2))

    def test_close_before_open_path(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Close("x"), q1)
        assert not is_sequential(builder.build(initial=q0, final=q1))

    def test_open_without_close_path(self):
        # Condition (2): opened variables must be closed on every path.
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, Open("x"), q1)
        assert not is_sequential(builder.build(initial=q0, final=q1))

    def test_violation_on_dead_branch_is_ignored(self):
        # Our check only considers initial-to-final paths (the walk of the
        # paper's algorithm); violations in dead-end branches don't count.
        builder = VABuilder()
        q0, q1, dead = builder.add_states(3)
        builder.add(q0, sym("a"), q1)
        builder.add(q0, Close("x"), dead)
        assert is_sequential(builder.build(initial=q0, final=q1))

    def test_variable_free_automaton_is_sequential(self):
        builder = VABuilder()
        q0, q1 = builder.add_states(2)
        builder.add(q0, sym("a"), q1)
        builder.add(q1, EPS, q0)
        assert is_sequential(builder.build(initial=q0, final=q1))


class TestMakeSequential:
    @pytest.mark.parametrize(
        "text,docs",
        [
            ("x{a}x{b}", ["", "a", "ab"]),
            ("(x{a})*", ["", "a", "aa"]),
            ("(x{a}|y{b})*", ["", "a", "ab", "ba", "aab"]),
        ],
    )
    def test_preserves_semantics(self, text, docs):
        original = to_va(parse(text))
        sequential = make_sequential(original)
        assert is_sequential(sequential)
        for document in docs:
            assert evaluate_va(sequential, document) == evaluate_va(
                original, document
            )

    def test_unclosed_open_becomes_skip(self):
        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q1, sym("a"), q2)
        original = builder.build(initial=q0, final=q2)
        sequential = make_sequential(original)
        assert is_sequential(sequential)
        assert evaluate_va(sequential, "a") == evaluate_va(original, "a")

    @pytest.mark.parametrize("seed", range(12))
    def test_random_va_sequentialization(self, seed):
        original = random_va(6, seed=seed)
        sequential = make_sequential(original)
        assert is_sequential(sequential)
        for document in ["", "a", "b", "ab", "ba", "aab"]:
            assert evaluate_va(sequential, document) == evaluate_va(
                original, document
            ), (seed, document)

    def test_idempotent_on_sequential_input(self):
        va = to_va(parse("x{a*}y{b*}"))
        once = make_sequential(va)
        for document in ["", "ab", "aabb"]:
            assert evaluate_va(once, document) == evaluate_va(va, document)
