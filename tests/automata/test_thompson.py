"""Thompson construction (Theorem 4.3, RGX → automata) cross-validation."""

import pytest
from hypothesis import given, settings

from repro.automata.sequential import is_sequential
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va, to_vastk
from repro.rgx.parser import parse
from repro.rgx.properties import is_sequential as rgx_sequential
from repro.rgx.semantics import mappings
from tests.strategies import documents, rgx_expressions

PAPER_CASES = [
    ("x{a*}y{b*}", ["", "a", "ab", "aabb", "ba", "aaabbb"]),
    ("(x{(a|b)*}|y{(a|b)*})*", ["", "a", "ab", "aab"]),
    ("x{a}|b", ["a", "b", "ab"]),
    ("x{y{a}b}c", ["abc", "ab", "c"]),
    ("(a|b)*x{c?}d", ["ad", "abcd", "d", "cd"]),
    ("x{εε}(a|b)*", ["", "ab"]),
]


class TestAgainstReferenceSemantics:
    @pytest.mark.parametrize("text,docs", PAPER_CASES)
    def test_va_matches_table2(self, text, docs):
        expression = parse(text)
        automaton = to_va(expression)
        for document in docs:
            assert evaluate_va(automaton, document) == mappings(
                expression, document
            )

    @pytest.mark.parametrize("text,docs", PAPER_CASES)
    def test_vastk_matches_table2(self, text, docs):
        expression = parse(text)
        automaton = to_vastk(expression)
        for document in docs:
            assert automaton.evaluate(document) == mappings(expression, document)

    @given(rgx_expressions(), documents(max_length=5))
    @settings(max_examples=120, deadline=None)
    def test_va_matches_table2_random(self, expression, document):
        assert evaluate_va(to_va(expression), document) == mappings(
            expression, document
        )

    @given(rgx_expressions(), documents(max_length=4))
    @settings(max_examples=60, deadline=None)
    def test_vastk_matches_table2_random(self, expression, document):
        assert to_vastk(expression).evaluate(document) == mappings(
            expression, document
        )


class TestStructure:
    def test_construction_is_linear(self):
        expression = parse("((a|b)*x{c}d)*" * 1)
        small = to_va(expression)
        bigger = to_va(parse("(a|b)*x{c}d(a|b)*x{c}d".replace("x", "y")))
        assert small.size() < 70
        assert bigger.size() < 2.5 * small.size() + 20

    @given(rgx_expressions())
    @settings(max_examples=150, deadline=None)
    def test_sequential_rgx_yields_sequential_va(self, expression):
        # The key step in the proof of Theorem 5.7.
        if rgx_sequential(expression):
            assert is_sequential(to_va(expression))

    def test_vastk_to_va_roundtrip(self):
        expression = parse("x{a*}y{b*}|c")
        stack_automaton = to_vastk(expression)
        converted = stack_automaton.to_va()
        for document in ["", "ab", "c", "aabb"]:
            assert evaluate_va(converted, document) == mappings(
                expression, document
            )
