"""The spanner algebra ∪/π/⋈ on automata (Theorem 4.5)."""

import pytest
from hypothesis import given, settings

from repro.automata.algebra import join_va, project_va, union_va
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.spans.mapping import join as semantic_join
from tests.strategies import documents, rgx_expressions

DOCS = ["", "a", "b", "ab", "ba", "aab", "abb"]


class TestUnion:
    @pytest.mark.parametrize(
        "left,right", [("x{a*}y{b*}", "x{a*}.*"), ("x{a}|b", "y{b}|a")]
    )
    def test_matches_semantic_union(self, left, right):
        e1, e2 = parse(left), parse(right)
        combined = union_va(to_va(e1), to_va(e2))
        for document in DOCS:
            assert evaluate_va(combined, document) == mappings(e1, document) | mappings(
                e2, document
            )

    @given(rgx_expressions(), rgx_expressions(), documents(max_length=4))
    @settings(max_examples=40, deadline=None)
    def test_union_random(self, first, second, document):
        combined = union_va(to_va(first), to_va(second))
        assert evaluate_va(combined, document) == mappings(
            first, document
        ) | mappings(second, document)


class TestProjection:
    @pytest.mark.parametrize(
        "text,keep",
        [
            ("x{a*}y{b*}", {"x"}),
            ("x{a*}y{b*}", {"y"}),
            ("x{a*}y{b*}", set()),
            ("(x{a}|y{b})*", {"x"}),
            ("x{y{a}b}c", {"y"}),
        ],
    )
    def test_matches_semantic_projection(self, text, keep):
        expression = parse(text)
        projected = project_va(to_va(expression), keep)
        for document in DOCS:
            expected = {m.project(keep) for m in mappings(expression, document)}
            assert evaluate_va(projected, document) == expected

    def test_projection_respects_variable_discipline(self):
        # Projecting x away from x{a}x{b} must not make it satisfiable:
        # the double use of x still invalidates every run.
        expression = parse("x{a}x{b}")
        projected = project_va(to_va(expression), set())
        assert evaluate_va(projected, "ab") == set()


class TestJoin:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("x{a*}y{b*}", "x{a*}.*"),          # shared x
            ("x{a*}.*", "y{b*}|.*"),            # no shared variables
            ("x{a}.*", ".*x{a}"),               # shared, positions must agree
            ("x{a}|y{b}", "x{.}|y{.}"),         # partial domains both sides
        ],
    )
    def test_matches_semantic_join(self, left, right):
        e1, e2 = parse(left), parse(right)
        joined = join_va(to_va(e1), to_va(e2))
        for document in DOCS:
            expected = semantic_join(
                mappings(e1, document), mappings(e2, document)
            )
            assert evaluate_va(joined, document) == expected, document

    def test_join_keeps_one_sided_assignments(self):
        # µ1 assigns x, µ2 does not: the join keeps µ1(x) — the crucial
        # difference from natural join that the paper's mappings enable.
        e1, e2 = parse("x{a}b"), parse("(y{a}|a)b")
        joined = join_va(to_va(e1), to_va(e2))
        result = evaluate_va(joined, "ab")
        domains = {frozenset(m.domain) for m in result}
        assert frozenset({"x", "y"}) in domains
        assert frozenset({"x"}) in domains

    @given(rgx_expressions(max_depth=3), rgx_expressions(max_depth=3), documents(max_length=3))
    @settings(max_examples=25, deadline=None)
    def test_join_random(self, first, second, document):
        joined = join_va(to_va(first), to_va(second))
        expected = semantic_join(
            mappings(first, document), mappings(second, document)
        )
        assert evaluate_va(joined, document) == expected
