"""Determinisation (Proposition 6.5) and character atoms."""

import pytest
from hypothesis import given, settings

from repro.alphabet import CharSet
from repro.automata.determinize import (
    character_atoms,
    determinize,
    is_complete_deterministic,
)
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.workloads.expressions import random_va
from tests.strategies import documents, rgx_expressions


class TestCharacterAtoms:
    def test_disjoint_singletons(self):
        atoms = character_atoms([CharSet.single("a"), CharSet.single("b")])
        assert sorted(str(a) for a in atoms) == ["a", "b"]

    def test_cofinite_gets_residue_atom(self):
        atoms = character_atoms([CharSet.excluding("a")])
        assert any(a.negated for a in atoms)

    def test_atoms_partition_membership(self):
        charsets = [CharSet.of("ab"), CharSet.excluding("b"), CharSet.single("c")]
        atoms = character_atoms(charsets)
        # Two witnesses of the same atom agree on every predicate; two
        # different atoms disagree on at least one.
        vectors = []
        for atom in atoms:
            first = atom.witness()
            second = atom.witness(avoid={first})
            vector = tuple(cs.contains(first) for cs in charsets)
            if atom.contains(second):
                assert vector == tuple(cs.contains(second) for cs in charsets)
            vectors.append(vector)
        assert len(set(vectors)) == len(vectors)

    def test_empty_input(self):
        assert character_atoms([]) == []


class TestDeterminize:
    CASES = [
        ("x{a*}y{b*}", ["", "a", "ab", "aabb", "ba"]),
        ("(x{(a|b)*}|y{(a|b)*})*", ["", "ab", "aab"]),
        ("x{a}|b", ["a", "b"]),
        (".*x{a}.*", ["", "a", "aa", "baa"]),
    ]

    @pytest.mark.parametrize("text,docs", CASES)
    def test_preserves_semantics(self, text, docs):
        expression = parse(text)
        nfa = to_va(expression)
        dfa = determinize(nfa)
        assert is_complete_deterministic(dfa)
        for document in docs:
            assert evaluate_va(dfa, document) == mappings(expression, document)

    @given(rgx_expressions(), documents(max_length=4))
    @settings(max_examples=50, deadline=None)
    def test_preserves_semantics_random(self, expression, document):
        dfa = determinize(to_va(expression))
        assert evaluate_va(dfa, document) == mappings(expression, document)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_va_determinization(self, seed):
        nfa = random_va(5, seed=seed)
        dfa = determinize(nfa)
        assert is_complete_deterministic(dfa)
        for document in ["", "a", "b", "ab", "ba"]:
            assert evaluate_va(dfa, document) == evaluate_va(nfa, document)

    def test_blowup_is_possible(self):
        # (a|b)*a(a|b)^n: the classical exponential family — DFA sizes
        # double with n (2^{n+1} + extra), matching Proposition 6.5's
        # worst case.
        sizes = []
        for n in (2, 3, 4, 5):
            expression = parse("(a|b)*a" + "(a|b)" * n)
            sizes.append(determinize(to_va(expression)).num_states)
        growth = [later / earlier for earlier, later in zip(sizes, sizes[1:])]
        assert all(ratio > 1.6 for ratio in growth), sizes

    def test_capture_synchronises_the_blowup_family(self):
        # With the capture x{a} marking the choice point, the operation
        # symbol resolves the nondeterminism and the DFA stays linear —
        # an instructive contrast recorded in EXPERIMENTS.md (E16).
        sizes = []
        for n in (2, 3, 4, 5):
            expression = parse("(a|b)*x{a}" + "(a|b)" * n)
            sizes.append(determinize(to_va(expression)).num_states)
        differences = {
            later - earlier for earlier, later in zip(sizes, sizes[1:])
        }
        assert differences == {2}, sizes
