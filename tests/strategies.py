"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.rgx.ast import (
    EPSILON,
    Rgx,
    Star,
    VarBind,
    char,
    concat,
    union,
)
from repro.spans.mapping import Mapping
from repro.spans.span import Span

ALPHABET = "ab"
VARIABLES = ("x", "y", "z")


@st.composite
def spans(draw, max_position: int = 9) -> Span:
    begin = draw(st.integers(min_value=1, max_value=max_position))
    end = draw(st.integers(min_value=begin, max_value=max_position))
    return Span(begin, end)


@st.composite
def documents(draw, max_length: int = 8) -> str:
    return draw(
        st.text(alphabet=ALPHABET, min_size=0, max_size=max_length)
    )


@st.composite
def mappings_over(draw, document_length: int = 6) -> Mapping:
    limit = document_length + 1
    assignments = {}
    for variable in draw(
        st.sets(st.sampled_from(VARIABLES), min_size=0, max_size=3)
    ):
        begin = draw(st.integers(min_value=1, max_value=limit))
        end = draw(st.integers(min_value=begin, max_value=limit))
        assignments[variable] = Span(begin, end)
    return Mapping(assignments)


def _leaves() -> st.SearchStrategy[Rgx]:
    return st.one_of(
        st.just(EPSILON),
        st.sampled_from([char(c) for c in ALPHABET]),
    )


def rgx_expressions(
    max_depth: int = 4, allow_variables: bool = True
) -> st.SearchStrategy[Rgx]:
    """Random RGX ASTs (small, for cross-validation against Table 2)."""

    def extend(children: st.SearchStrategy[Rgx]) -> st.SearchStrategy[Rgx]:
        options = [
            st.builds(lambda a, b: concat(a, b), children, children),
            st.builds(lambda a, b: union(a, b), children, children),
            st.builds(Star, children),
        ]
        if allow_variables:
            options.append(
                st.builds(
                    VarBind, st.sampled_from(VARIABLES), children
                )
            )
        return st.one_of(*options)

    return st.recursive(_leaves(), extend, max_leaves=max_depth * 2)


def sequential_rgx_expressions(max_size: int = 14) -> st.SearchStrategy[Rgx]:
    """Sequential RGX via the seeded generator (filtered for the class)."""
    from repro.rgx.properties import is_sequential
    from repro.workloads.expressions import random_rgx

    return st.builds(
        lambda seed, size: random_rgx(size, seed, sequential=True),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=max_size),
    ).filter(is_sequential)
