"""Differential harness: the flat-table kernel against every older path.

The flat layer (:class:`~repro.engine.kernel.FlatTables` and the
:class:`~repro.engine.oracle.FlatNodeSweep`) re-expresses the dict
bitmask kernel as contiguous integer-indexed tables, and the dict kernel
in turn re-expresses the set-based reference engine — three
implementations of one semantics.  Every test here runs the same input
through at least two of them and asserts *identical* observable output:
index contents, sweep verdicts, enumeration order, decoded mappings.

These tests carry the ``differential`` marker: the hypothesis budget
defaults low so the tier-1 run stays fast, and the dedicated CI job
raises it through ``REPRO_DIFFERENTIAL_EXAMPLES``.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.labels import Open
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.engine import compile_va, flat_disabled, kernel_disabled
from repro.engine.compiled import compile_spanner
from repro.engine.kernel import FlatOverflow
from repro.engine.oracle import (
    FlatNodeSweep,
    KernelNodeSweep,
    NodeSweep,
    eval_sequential_flat,
    eval_sequential_kernel,
    eval_sequential_sets,
)
from repro.engine.tables import DocumentIndex
from repro.plan import OPT_LEVELS, plan
from repro.rgx.parser import parse
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span, all_spans
from repro.workloads.expressions import seller_like_sequential_rgx
from tests.strategies import VARIABLES, documents, rgx_expressions

pytestmark = [pytest.mark.kernel, pytest.mark.differential]


def _examples(default: int = 25) -> int:
    try:
        value = int(os.environ.get("REPRO_DIFFERENTIAL_EXAMPLES", ""))
    except ValueError:
        return default
    return value if value > 0 else default


EXAMPLES = _examples()


@st.composite
def extended_pins(draw, document_length: int = 4) -> ExtendedMapping:
    limit = document_length + 1
    pins = {}
    for variable in draw(
        st.sets(st.sampled_from(VARIABLES), min_size=0, max_size=3)
    ):
        if draw(st.booleans()):
            begin = draw(st.integers(min_value=1, max_value=limit))
            end = draw(st.integers(min_value=begin, max_value=limit))
            pins[variable] = Span(begin, end)
        else:
            pins[variable] = NULL
    return ExtendedMapping(pins)


class TestFlatAgainstDictAndSets:
    """Hypothesis sweeps: flat vs dict-kernel vs set-based, same output."""

    @given(expression=rgx_expressions(), document=documents())
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_document_index_three_ways(self, expression, document):
        cva = compile_va(plan(expression, opt_level=1).automaton)
        flat_index = DocumentIndex(cva, document, use_kernel=True)
        with flat_disabled():
            dict_index = DocumentIndex(
                compile_va(plan(expression, opt_level=1).automaton),
                document,
                use_kernel=True,
            )
        set_index = DocumentIndex(cva, document, use_kernel=False)
        assert flat_index.reach == dict_index.reach == set_index.reach
        assert (
            flat_index.coreach == dict_index.coreach == set_index.coreach
        )
        for variable in sorted(cva.variables):
            spans = flat_index.candidate_spans(variable)
            assert spans == dict_index.candidate_spans(variable)
            assert spans == set_index.candidate_spans(variable)

    @given(
        expression=rgx_expressions(),
        document=documents(max_length=5),
        pinned=extended_pins(),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_sequential_eval_three_ways(self, expression, document, pinned):
        cva = compile_va(plan(expression, opt_level=1).automaton)
        if not cva.is_sequential:
            return
        kernel = cva.kernel
        flat = kernel.flat_or_none()
        assert flat is not None  # tiny automata never overflow the table
        try:
            flat_verdict = eval_sequential_flat(
                cva, document, pinned, kernel, flat
            )
        except FlatOverflow:  # pragma: no cover - tiny automata
            return
        assert flat_verdict == eval_sequential_kernel(
            cva, document, pinned, kernel
        )
        assert flat_verdict == eval_sequential_sets(cva, document, pinned)

    @given(expression=rgx_expressions(), document=documents(max_length=5))
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_node_sweep_three_ways(self, expression, document):
        """Every span verdict — and so the enumeration order — agrees.

        Queries run in candidate order (``i``-major), the access pattern
        the flat sweep's lazy open-sweep and backward co-acceptance
        caches are built for; querying *all* spans additionally hits the
        cache-extension and dead-state paths.
        """
        cva = compile_va(plan(expression, opt_level=1).automaton)
        if not cva.is_sequential or not cva.mentioned_variables:
            return
        kernel = cva.kernel
        flat = kernel.flat_or_none()
        assert flat is not None
        for variable in sorted(cva.mentioned_variables):
            flat_node = FlatNodeSweep(cva, document, {}, variable, kernel, flat)
            dict_node = KernelNodeSweep(cva, document, {}, variable, kernel)
            set_node = NodeSweep(cva, document, {}, variable)
            assert (
                flat_node.accepts_null()
                == dict_node.accepts_null()
                == set_node.accepts_null()
            )
            for span in all_spans(len(document)):
                flat_verdict = flat_node.accepts_span(span)
                assert flat_verdict == dict_node.accepts_span(span), span
                assert flat_verdict == set_node.accepts_span(span), span

    @given(expression=rgx_expressions(), document=documents())
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_mappings_identical_at_every_opt_level(self, expression, document):
        for level in OPT_LEVELS:
            flat_out = compile_spanner(expression, opt_level=level).mappings(
                document
            )
            with flat_disabled():
                dict_out = compile_spanner(
                    expression, opt_level=level
                ).mappings(document)
            with kernel_disabled():
                set_out = compile_spanner(
                    expression, opt_level=level
                ).mappings(document)
            assert flat_out == dict_out == set_out

    @given(expression=rgx_expressions(), document=documents())
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_decoded_enumeration_order_matches(self, expression, document):
        """``extract`` is ordered — the flat path must not reorder it."""
        flat_rows = list(
            compile_spanner(expression, opt_level=1).extract(document)
        )
        with flat_disabled():
            dict_rows = list(
                compile_spanner(expression, opt_level=1).extract(document)
            )
        assert flat_rows == dict_rows


class TestFlatEdgeCases:
    """Deterministic corners the hypothesis grammar rarely reaches."""

    COFINITE = ".*x{[^,;]+};.*"

    def test_cofinite_charset_with_residual_heavy_document(self):
        # 'Q', '~' and 'é' are unmentioned: all land in the residual
        # class; ',' and ';' are excluded/mentioned and must not.
        document = "Q~é,ab;tail"
        flat_out = compile_spanner(self.COFINITE).mappings(document)
        with flat_disabled():
            dict_out = compile_spanner(self.COFINITE).mappings(document)
        with kernel_disabled():
            set_out = compile_spanner(self.COFINITE).mappings(document)
        assert flat_out == dict_out == set_out
        assert flat_out  # the corner must actually produce mappings

    @pytest.mark.parametrize("document", ["", "a", "z", "zzzz"])
    def test_tiny_and_all_residual_documents(self, document):
        for expression in (".*x{a+}.*", "x{a*}", self.COFINITE):
            flat_out = compile_spanner(expression).mappings(document)
            with flat_disabled():
                dict_out = compile_spanner(expression).mappings(document)
            assert flat_out == dict_out

    def test_sequentialised_source_runs_flat(self):
        # The e21 trick: a bogus unusable open makes the source fail the
        # sequentiality check; planning sequentialises it and the flat
        # sweep must agree with both fallback paths on the result.
        base = to_va(seller_like_sequential_rgx(2))
        looped = base.transitions + ((base.final, Open("v0"), base.final),)
        automaton = VA(base.num_states, base.initial, base.final, looped)
        document = "f0=ab;f1=cd;"
        engine = compile_spanner(automaton, opt_level=1)
        assert engine.tables.is_sequential
        flat_out = engine.mappings(document)
        with flat_disabled():
            dict_out = compile_spanner(automaton, opt_level=1).mappings(
                document
            )
        with kernel_disabled():
            set_out = compile_spanner(automaton, opt_level=1).mappings(
                document
            )
        assert flat_out == dict_out == set_out
        assert flat_out

    def test_non_sequential_pins_hit_the_flat_context_path(self):
        # Pinned variables build restricted sweep contexts; the flat
        # layer shares or forks its DFA per context.  Cross-check the
        # verdict for every pin of one variable over a short document.
        expression = parse(".*x{a+}y{b*}.*")
        cva = compile_va(plan(expression, opt_level=1).automaton)
        kernel = cva.kernel
        flat = kernel.flat_or_none()
        document = "aabb"
        for span in all_spans(len(document)):
            for pins in (
                ExtendedMapping({"x": span}),
                ExtendedMapping({"x": span, "y": NULL}),
            ):
                flat_verdict = eval_sequential_flat(
                    cva, document, pins, kernel, flat
                )
                assert flat_verdict == eval_sequential_kernel(
                    cva, document, pins, kernel
                ), (span, pins)
                assert flat_verdict == eval_sequential_sets(
                    cva, document, pins
                ), (span, pins)
