"""The vector layer against the per-document flat path, bit for bit.

:mod:`repro.engine.vector` advances a whole corpus batch through the
flat DFA in lockstep; the contract is that every observable output —
NonEmp verdicts, document indexes, candidate spans, mapping sets,
enumeration order — is *identical* to the per-document flat path (and,
transitively, to the dict-kernel and set-based paths the flat
differential suite pins down).  The hypothesis sweeps here run the same
batches with the layer on and off at every opt level; the deterministic
tests cover the gates, the fallbacks, and the environment overrides.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import compile_va, flat_disabled, kernel_disabled
from repro.engine.compiled import compile_spanner
from repro.engine.kernel import numpy_or_none
from repro.engine.tables import DocumentIndex
from repro.engine.vector import (
    batch_accept,
    batch_index,
    batch_reach,
    vector_disabled,
    vector_enabled,
)
from repro.plan import OPT_LEVELS, plan
from repro.rgx.parser import parse
from tests.strategies import documents, rgx_expressions

pytestmark = [pytest.mark.kernel, pytest.mark.differential]

requires_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy unavailable or disabled"
)

PATTERNS = [
    ".*x{a+}.*",
    "(a|b)*x{(ab)+}y{b*}(a|b)*",
    ".*u{ab*}v{ba}.*",
    "a*x{a|b}b*",
]

BATCH = ["", "a", "b", "ab", "ba", "aabba", "ab" * 20, "b" * 7, "abab" + "b" * 5]


def _examples(default: int = 25) -> int:
    try:
        value = int(os.environ.get("REPRO_DIFFERENTIAL_EXAMPLES", ""))
    except ValueError:
        return default
    return value if value > 0 else default


EXAMPLES = _examples()


class TestGates:
    def test_vector_disabled_context(self):
        before = vector_enabled()
        with vector_disabled():
            assert not vector_enabled()
        assert vector_enabled() == before

    def test_no_vector_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        assert not vector_enabled()
        monkeypatch.setenv("REPRO_NO_VECTOR", "0")
        # "0" means enabled — the 0/1 convention all REPRO_NO_* knobs share.
        assert vector_enabled() == (numpy_or_none() is not None)

    def test_no_numpy_env_gates_the_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None
        assert not vector_enabled()

    @requires_numpy
    def test_batch_helpers_return_none_when_disabled(self):
        cva = compile_va(plan(parse(PATTERNS[0]), opt_level=1).automaton)
        with vector_disabled():
            assert batch_accept(cva, BATCH) is None
            assert batch_index(cva, BATCH) is None
            assert batch_reach(cva, BATCH) is None


@requires_numpy
class TestBatchFunctions:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_batch_accept_matches_per_document_eval(self, pattern):
        engine = compile_spanner(pattern)
        cva = engine._cva
        verdicts = batch_accept(cva, BATCH)
        assert verdicts is not None
        assert verdicts == [engine.eval(text, {}) for text in BATCH]

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_batch_index_matches_per_document_index(self, pattern):
        cva = compile_va(plan(parse(pattern), opt_level=1).automaton)
        indexes = batch_index(cva, BATCH)
        assert indexes is not None
        for text, index in zip(BATCH, indexes):
            with vector_disabled():
                reference = DocumentIndex(cva, text)
            assert index.reach == reference.reach
            assert index.coreach == reference.coreach
            for variable in sorted(cva.variables):
                assert index.candidate_spans(variable) == (
                    reference.candidate_spans(variable)
                ), (text, variable)

    def test_empty_batch(self):
        cva = compile_va(plan(parse(PATTERNS[0]), opt_level=1).automaton)
        assert batch_accept(cva, []) == []
        assert batch_index(cva, []) == []

    def test_all_empty_documents(self):
        engine = compile_spanner("x{a*}")
        verdicts = batch_accept(engine._cva, ["", "", ""])
        assert verdicts == [engine.eval("", {}), True, True]


class TestCompiledBatchApi:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_matches_many_identical_with_layer_off(self, pattern):
        with vector_disabled():
            expected = compile_spanner(pattern).matches_many(BATCH)
        engine = compile_spanner(pattern)
        assert engine.matches_many(BATCH) == expected
        # Second call is served from the verdict cache, same answers.
        assert engine.matches_many(BATCH) == expected

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_evaluate_many_identical_with_layer_off(self, pattern):
        with vector_disabled():
            expected = compile_spanner(pattern).evaluate_many(BATCH)
        assert compile_spanner(pattern).evaluate_many(BATCH) == expected

    def test_extraction_order_survives_prewarm(self):
        engine = compile_spanner(PATTERNS[1])
        engine.prewarm(BATCH)
        with vector_disabled():
            reference = compile_spanner(PATTERNS[1])
            for text in BATCH:
                assert list(engine.extract(text)) == list(
                    reference.extract(text)
                )


class TestHypothesisDifferential:
    """The acceptance sweep: batches at every opt level, layer on vs off."""

    @given(
        expression=rgx_expressions(),
        batch=st.lists(documents(), min_size=0, max_size=6),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_matches_many_every_opt_level(self, expression, batch):
        for level in OPT_LEVELS:
            with vector_disabled():
                expected = compile_spanner(
                    expression, opt_level=level
                ).matches_many(batch)
            actual = compile_spanner(expression, opt_level=level).matches_many(
                batch
            )
            assert actual == expected

    @given(
        expression=rgx_expressions(),
        batch=st.lists(documents(), min_size=0, max_size=4),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_evaluate_many_every_opt_level(self, expression, batch):
        for level in OPT_LEVELS:
            with vector_disabled():
                expected = compile_spanner(
                    expression, opt_level=level
                ).evaluate_many(batch)
            actual = compile_spanner(
                expression, opt_level=level
            ).evaluate_many(batch)
            assert actual == expected

    @given(
        expression=rgx_expressions(),
        batch=st.lists(documents(), min_size=1, max_size=4),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_vector_agrees_with_dict_and_set_paths(self, expression, batch):
        vector_out = compile_spanner(expression).evaluate_many(batch)
        with flat_disabled():
            dict_out = compile_spanner(expression).evaluate_many(batch)
        with kernel_disabled():
            set_out = compile_spanner(expression).evaluate_many(batch)
        assert vector_out == dict_out == set_out


SUBPROCESS_CHECK = """
import os
from repro.engine.compiled import compile_spanner
from repro.engine.vector import vector_disabled
batch = ["", "a", "ab", "ba" * 9, "aabba"]
engine = compile_spanner(".*x{a+}.*")
vec = engine.matches_many(batch), engine.evaluate_many(batch)
with vector_disabled():
    ref_engine = compile_spanner(".*x{a+}.*")
    ref = ref_engine.matches_many(batch), ref_engine.evaluate_many(batch)
assert vec == ref, (vec, ref)
print("IDENTICAL")
"""


def _run(env_overrides, code=SUBPROCESS_CHECK):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )


class TestEnvironmentOverrides:
    """The REPRO_FLAT_STATE_LIMIT / REPRO_NUMPY_INTERN_MIN knobs.

    Process-wide constants, so each case runs in a fresh interpreter.
    """

    def test_tiny_flat_state_limit_still_identical(self):
        # A limit this small overflows immediately: every path falls back
        # to the dict kernel, and outputs must not change.
        result = _run({"REPRO_FLAT_STATE_LIMIT": "2"})
        assert result.returncode == 0, result.stderr
        assert "IDENTICAL" in result.stdout

    def test_numpy_intern_threshold_zero_still_identical(self):
        # Threshold 1 interns even one-character documents via numpy.
        result = _run({"REPRO_NUMPY_INTERN_MIN": "1"})
        assert result.returncode == 0, result.stderr
        assert "IDENTICAL" in result.stdout

    @pytest.mark.parametrize("value", ["banana", "-3", "0"])
    def test_invalid_override_warns_and_uses_default(self, value):
        probe = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    from repro.engine import kernel\n"
            "assert kernel.FLAT_STATE_LIMIT == 1 << 12, kernel.FLAT_STATE_LIMIT\n"
            "assert any('REPRO_FLAT_STATE_LIMIT' in str(w.message) for w in caught)\n"
            "print('DEFAULTED')\n"
        )
        result = _run({"REPRO_FLAT_STATE_LIMIT": value}, code=probe)
        assert result.returncode == 0, result.stderr
        assert "DEFAULTED" in result.stdout

    def test_valid_override_is_respected(self):
        probe = (
            "from repro.engine import kernel\n"
            "assert kernel.FLAT_STATE_LIMIT == 99, kernel.FLAT_STATE_LIMIT\n"
            "print('APPLIED')\n"
        )
        result = _run({"REPRO_FLAT_STATE_LIMIT": "99"}, code=probe)
        assert result.returncode == 0, result.stderr
        assert "APPLIED" in result.stdout

    def test_no_vector_env_still_identical(self):
        result = _run({"REPRO_NO_VECTOR": "1"})
        assert result.returncode == 0, result.stderr
        assert "IDENTICAL" in result.stdout

    def test_no_numpy_env_still_identical(self):
        result = _run({"REPRO_NO_NUMPY": "1"})
        assert result.returncode == 0, result.stderr
        assert "IDENTICAL" in result.stdout
