"""Hypothesis cross-validation: the compiled engine against the seed paths.

The engine must be observationally identical to the seed evaluators:
``CompiledSpanner`` output sets equal ``enumerate_direct``/``eval_va``
results on random RGX and random VAs, and the compiled ``Eval`` oracle
returns the seed verdict on arbitrary extended-mapping pins.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.engine import compile_va
from repro.engine.compiled import compile_spanner
from repro.engine.oracle import eval_compiled
from repro.evaluation.enumerate import enumerate_direct, enumerate_va_oracle
from repro.evaluation.eval_problem import eval_va
from repro.rgx.semantics import mappings
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span
from repro.workloads.expressions import random_document, random_va
from tests.strategies import VARIABLES, documents, rgx_expressions


@st.composite
def extended_mappings(draw, document_length: int = 4) -> ExtendedMapping:
    """Random pins: each variable gets a span, ⊥, or stays unconstrained."""
    limit = document_length + 1
    pins = {}
    for variable in draw(
        st.sets(st.sampled_from(VARIABLES), min_size=0, max_size=3)
    ):
        if draw(st.booleans()):
            begin = draw(st.integers(min_value=1, max_value=limit))
            end = draw(st.integers(min_value=begin, max_value=limit))
            pins[variable] = Span(begin, end)
        else:
            pins[variable] = NULL
    return ExtendedMapping(pins)


class TestAgainstSeedEvaluators:
    @given(rgx_expressions(max_depth=3), documents(max_length=4))
    @settings(max_examples=50, deadline=None)
    def test_rgx_mapping_sets(self, expression, document):
        engine = compile_spanner(expression)
        assert engine.mappings(document) == mappings(expression, document)

    @given(rgx_expressions(max_depth=3), documents(max_length=4))
    @settings(max_examples=30, deadline=None)
    def test_rgx_order_matches_seed_enumerator(self, expression, document):
        automaton = to_va(expression)
        assert list(compile_spanner(automaton).enumerate(document)) == list(
            enumerate_va_oracle(automaton, document)
        )

    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_va_against_direct_evaluator(self, va_seed, doc_seed):
        automaton = random_va(6, seed=va_seed)
        document = random_document(4, seed=doc_seed)
        engine = compile_spanner(automaton)
        assert engine.mappings(document) == set(
            enumerate_direct(automaton, document)
        )

    @given(
        rgx_expressions(max_depth=3),
        documents(max_length=4),
        extended_mappings(),
    )
    @settings(max_examples=60, deadline=None)
    def test_eval_verdicts_match_seed(self, expression, document, pinned):
        automaton = to_va(expression)
        assert eval_compiled(
            compile_va(automaton), document, pinned
        ) == eval_va(automaton, document, pinned)

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
        extended_mappings(),
    )
    @settings(max_examples=60, deadline=None)
    def test_va_eval_verdicts_match_seed(self, va_seed, doc_seed, pinned):
        automaton = random_va(6, seed=va_seed)
        document = random_document(4, seed=doc_seed)
        assert eval_compiled(
            compile_va(automaton), document, pinned
        ) == eval_va(automaton, document, pinned)
