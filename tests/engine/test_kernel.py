"""The bitmask kernel: alphabet classes, mask sweeps, lazy-DFA memos.

Every test cross-validates the kernel against the set-based engine paths
it replaces (which remain first-class as the fallback), or pins down the
kernel's own invariants — class partitioning with cofinite charsets,
memo bounds, prefix sharing.  All tests carry the ``kernel`` marker, so
``pytest -m kernel`` is the fast loop for engine work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import CharSet
from repro.automata.labels import Open
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.engine import compile_va, flat_disabled, kernel_disabled
from repro.engine.compiled import compile_spanner
from repro.engine import kernel as kernel_module
from repro.engine.kernel import AlphabetClasses, iter_bits
from repro.engine.oracle import (
    KernelNodeSweep,
    NodeSweep,
    eval_sequential_kernel,
    eval_sequential_sets,
)
from repro.engine.tables import DocumentIndex
from repro.plan import OPT_LEVELS, plan
from repro.rgx.parser import parse
from repro.spans.mapping import NULL, ExtendedMapping
from repro.spans.span import Span, all_spans
from repro.workloads.expressions import seller_like_sequential_rgx
from tests.strategies import VARIABLES, documents, rgx_expressions

pytestmark = pytest.mark.kernel


class TestAlphabetClasses:
    def test_positive_charsets_group_equivalent_letters(self):
        classes = AlphabetClasses([CharSet.of("ab"), CharSet.of("bc")])
        assert classes.classify("a") != classes.classify("b")
        assert classes.classify("b") != classes.classify("c")
        assert classes.classify("a") != classes.classify("c")

    def test_cofinite_charset_gets_a_residual_class(self):
        classes = AlphabetClasses([CharSet.of("ab"), CharSet.excluding(",")])
        # a and b enable exactly the same predicates: one class.
        assert classes.classify("a") == classes.classify("b")
        # every unmentioned character shares the residual class ...
        assert classes.classify("z") == classes.residual
        assert classes.classify("é") == classes.residual
        # ... and the excluded comma is in neither of those classes.
        assert classes.classify(",") not in (
            classes.classify("a"),
            classes.residual,
        )

    def test_residual_never_merges_with_a_mentioned_letter(self):
        # A mentioned character always differs from the residual on the
        # predicate that mentions it (positive: contains; cofinite:
        # excludes), so the residual class is its own class.
        for charsets in (
            [CharSet.excluding("a")],
            [CharSet.of("a"), CharSet.excluding("b")],
            [CharSet.excluding("ab"), CharSet.of("a")],
        ):
            classes = AlphabetClasses(charsets)
            mentioned = {ch for cs in charsets for ch in cs.chars}
            assert all(
                classes.classify(ch) != classes.residual for ch in mentioned
            )

    def test_representatives_are_faithful(self):
        charsets = [CharSet.of("ab"), CharSet.excluding(",x")]
        classes = AlphabetClasses(charsets)
        for char in "abx,z~Q":
            representative = classes.representatives[classes.classify(char)]
            for charset in charsets:
                assert charset.contains(representative) == charset.contains(char)

    def test_intern_maps_text_to_class_ids(self):
        classes = AlphabetClasses([CharSet.of("ab")])
        interned = classes.intern("abz")
        assert interned == (
            classes.classify("a"),
            classes.classify("b"),
            classes.residual,
        )

    def test_no_sym_edges_still_has_a_residual(self):
        classes = AlphabetClasses([])
        assert classes.count == 1
        assert classes.intern("xyz") == (classes.residual,) * 3


class TestKernelTables:
    def test_free_closure_masks_match_set_closure(self):
        cva = compile_va(to_va(parse(".*x{a+}y{b*}.*")))
        for state in range(cva.num_states):
            expected = cva.free_closure({state})
            assert frozenset(iter_bits(cva.kernel.free[state])) == expected
            expected_rev = cva.free_closure_reversed({state})
            assert frozenset(iter_bits(cva.kernel.free_rev[state])) == expected_rev

    def test_class_step_masks_match_step(self):
        cva = compile_va(to_va(seller_like_sequential_rgx(2)))
        kernel = cva.kernel
        for class_id, representative in enumerate(kernel.classes.representatives):
            for state in range(cva.num_states):
                expected = 0
                for target in cva.step(state, representative):
                    expected |= 1 << target
                assert kernel.step[class_id][state] == expected

    def test_delta_memo_records_transitions(self):
        cva = compile_va(to_va(seller_like_sequential_rgx(1)))
        kernel = cva.kernel
        kernel.delta.clear()
        mask = kernel.free[cva.initial]
        class_id = kernel.classes.residual
        first = kernel.delta_step(mask, class_id)
        assert kernel.delta[(mask, class_id)] == first
        assert kernel.delta_step(mask, class_id) == first  # memo hit

    def test_delta_memo_is_bounded(self, monkeypatch):
        cva = compile_va(to_va(seller_like_sequential_rgx(1)))
        kernel = cva.kernel
        kernel.delta.clear()
        monkeypatch.setattr(kernel_module, "DELTA_LIMIT", 0)
        mask = kernel.free[cva.initial]
        class_id = kernel.classes.classify("f")
        computed = kernel.delta_step(mask, class_id)
        # over the bound: still computed correctly, just not recorded
        assert kernel.delta == {}
        seeds = 0
        for state in iter_bits(mask):
            seeds |= kernel.step[class_id][state]
        assert computed == (kernel.close(seeds) if seeds else 0)

    def test_intern_cache_verifies_text_on_hit(self):
        cva = compile_va(to_va(seller_like_sequential_rgx(1)))
        kernel = cva.kernel
        first = kernel.intern("f0=a;")
        assert kernel.intern("f0=a;") is first  # cached
        assert kernel.intern("f0=b;") != ()  # different text, no false hit


@st.composite
def extended_pins(draw, document_length: int = 4) -> ExtendedMapping:
    limit = document_length + 1
    pins = {}
    for variable in draw(
        st.sets(st.sampled_from(VARIABLES), min_size=0, max_size=3)
    ):
        if draw(st.booleans()):
            begin = draw(st.integers(min_value=1, max_value=limit))
            end = draw(st.integers(min_value=begin, max_value=limit))
            pins[variable] = Span(begin, end)
        else:
            pins[variable] = NULL
    return ExtendedMapping(pins)


class TestKernelAgainstSets:
    @given(expression=rgx_expressions(), document=documents())
    @settings(max_examples=60, deadline=None)
    def test_document_index_matches_set_index(self, expression, document):
        compiled = plan(expression, opt_level=1)
        cva = compile_va(compiled.automaton)
        kernel_index = DocumentIndex(cva, document, use_kernel=True)
        set_index = DocumentIndex(cva, document, use_kernel=False)
        assert kernel_index.reach == set_index.reach
        assert kernel_index.coreach == set_index.coreach
        for variable in sorted(cva.variables):
            assert kernel_index.candidate_spans(variable) == set_index.candidate_spans(
                variable
            )

    @given(
        expression=rgx_expressions(),
        document=documents(max_length=5),
        pinned=extended_pins(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sequential_eval_matches_sets(self, expression, document, pinned):
        cva = compile_va(plan(expression, opt_level=1).automaton)
        if not cva.is_sequential:
            return
        assert eval_sequential_kernel(cva, document, pinned) == eval_sequential_sets(
            cva, document, pinned
        )

    @given(expression=rgx_expressions(), document=documents(max_length=5))
    @settings(max_examples=40, deadline=None)
    def test_node_sweep_matches_set_sweep(self, expression, document):
        cva = compile_va(plan(expression, opt_level=1).automaton)
        if not cva.is_sequential or not cva.mentioned_variables:
            return
        variable = sorted(cva.mentioned_variables)[0]
        kernel_node = KernelNodeSweep(cva, document, {}, variable)
        set_node = NodeSweep(cva, document, {}, variable)
        assert kernel_node.accepts_null() == set_node.accepts_null()
        for span in all_spans(len(document)):
            assert kernel_node.accepts_span(span) == set_node.accepts_span(span), span

    @given(expression=rgx_expressions(), document=documents())
    @settings(max_examples=40, deadline=None)
    def test_mappings_identical_at_every_opt_level(self, expression, document):
        for level in OPT_LEVELS:
            engine = compile_spanner(expression, opt_level=level)
            with_kernel = engine.mappings(document)
            with kernel_disabled():
                without = compile_spanner(expression, opt_level=level).mappings(
                    document
                )
            assert with_kernel == without

    def test_sequentialised_non_sequential_source(self):
        # The e21 trick: a bogus unusable open makes the source fail the
        # sequentiality check; planning sequentialises it, and the kernel
        # then runs the Theorem-5.7 sweep on the planned automaton.
        base = to_va(seller_like_sequential_rgx(2))
        looped = base.transitions + ((base.final, Open("v0"), base.final),)
        automaton = VA(base.num_states, base.initial, base.final, looped)
        document = "f0=ab;f1=cd;"
        engine = compile_spanner(automaton, opt_level=1)
        assert engine.tables.is_sequential  # the plan sequentialised it
        with kernel_disabled():
            expected = compile_spanner(automaton, opt_level=1).mappings(document)
        assert engine.mappings(document) == expected
        assert expected  # the workload must actually produce mappings


class TestKernelSharing:
    def test_delta_memo_shared_across_documents(self):
        engine = compile_spanner(".*x{a+}.*")
        engine.tables.kernel.delta.clear()
        with flat_disabled():  # the dict memo is the layer under test
            assert engine.mappings("baa")
            entries = len(engine.tables.kernel.delta)
            assert entries > 0
            assert engine.mappings("aab")  # same classes, mostly memo hits
        stats = engine.kernel_stats()
        assert stats["delta"] >= entries
        assert stats["classes"] >= 2

    def test_flat_states_shared_across_documents(self):
        engine = compile_spanner(".*x{a+}.*")
        assert engine.mappings("baa")
        states = engine.kernel_stats()["flat_states"]
        assert states > 0
        assert engine.mappings("aab")  # same classes: mostly interned hits
        assert engine.kernel_stats()["flat_states"] >= states

    def test_kernel_disabled_forces_set_paths(self):
        engine = compile_spanner(".*x{a+}.*")
        with kernel_disabled():
            index = engine.index("ba")
            assert index.classes is None  # set-based build
        assert engine.index("ab").classes is not None  # distinct cache entry
