"""Unit tests for the compiled engine (tables, pruning, batch API)."""

import pytest

from repro.automata.labels import EPS, Close, Open, Sym
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.automata.va import VABuilder
from repro.alphabet import CharSet
from repro.engine import CompiledSpanner, compile_va
from repro.engine.compiled import compile_spanner
from repro.evaluation.enumerate import enumerate_va_oracle
from repro.rgx.parser import parse
from repro.spanner import Spanner
from repro.spans.mapping import NULL, ExtendedMapping, Mapping
from repro.spans.span import Span, all_spans


def build_mixed_va():
    """A small VA with ε, ops, positive and cofinite letter predicates."""
    b = VABuilder()
    q0, q1, q2, q3 = b.add_states(4)
    b.add(q0, EPS, q1)
    b.add(q0, Sym(CharSet.of("ab")), q1)
    b.add(q1, Open("x"), q2)
    b.add(q2, Sym(CharSet.excluding(",")), q2)
    b.add(q2, Close("x"), q3)
    return b.build(initial=q0, final=q3)


class TestCompiledTables:
    def test_step_agrees_with_edge_scan(self):
        va = build_mixed_va()
        cva = compile_va(va)
        for state in range(va.num_states):
            for char in "ab,z~":
                expected = sorted(
                    target
                    for label, target in va.out_edges(state)
                    if isinstance(label, Sym) and label.charset.contains(char)
                )
                assert sorted(cva.step(state, char)) == expected

    def test_step_is_memoised(self):
        cva = compile_va(build_mixed_va())
        first = cva.step(2, "z")
        assert cva.step(2, "z") is first

    def test_buckets_partition_transitions(self):
        va = build_mixed_va()
        cva = compile_va(va)
        bucketed = (
            sum(len(t) for t in cva.eps)
            + sum(len(t) for t in cva.opens)
            + sum(len(t) for t in cva.closes)
            + len(cva.sym_edges)
        )
        assert bucketed == len(va.transitions)

    def test_compile_va_is_cached(self):
        va = build_mixed_va()
        assert compile_va(va) is compile_va(va)

    def test_sequentiality_precomputed(self):
        assert compile_va(to_va(parse("x{a*}y{b*}"))).is_sequential
        assert not compile_va(to_va(parse("(x{a})*"))).is_sequential


class TestSpanPruning:
    def test_candidates_cover_all_outputs(self):
        engine = compile_spanner(".*Seller: x{[^,\n]*},.*")
        document = "Noise line\nSeller: John, ID75\nSeller: Mark, ID7\n"
        index = engine.index(document)
        candidates = set(index.candidate_spans("x"))
        outputs = evaluate_va(engine.automaton, document)
        for mapping in outputs:
            assert mapping["x"] in candidates

    def test_pruning_shrinks_candidate_list(self):
        engine = compile_spanner(".*Seller: x{[^,\n]*},.*")
        document = "Noise line\nSeller: John, ID75\nSeller: Mark, ID7\n"
        candidates = engine.index(document).candidate_spans("x")
        assert 0 < len(candidates) < len(all_spans(len(document))) / 4

    def test_unmatchable_variable_has_no_candidates(self):
        engine = compile_spanner("x{a}|b")
        assert engine.index("b").candidate_spans("x") == ()


class TestCompiledSpanner:
    def test_accepts_all_source_kinds(self):
        pattern = "x{a*}b"
        from_text = compile_spanner(pattern)
        from_ast = compile_spanner(parse(pattern))
        from_va = compile_spanner(to_va(parse(pattern)))
        from_spanner = compile_spanner(Spanner.compile(pattern))
        results = {
            engine.mappings("aab") == {Mapping({"x": Span(1, 3)})}
            for engine in (from_text, from_ast, from_va, from_spanner)
        }
        assert results == {True}

    def test_idempotent_on_compiled(self):
        engine = compile_spanner("x{a}")
        assert compile_spanner(engine) is engine

    def test_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            compile_spanner(42)

    def test_extract_matches_seed_spanner(self):
        pattern = ".*Seller: x{[^,\n]*},.*"
        document = "Seller: John, ID75\nSeller: Mark, ID7\n"
        assert compile_spanner(pattern).extract(document) == Spanner.compile(
            pattern
        ).extract(document)

    def test_enumeration_order_matches_seed(self):
        va = to_va(parse(".*x{[^b]}.*"))
        document = "abca"
        assert list(compile_spanner(va).enumerate(document)) == list(
            enumerate_va_oracle(va, document)
        )

    def test_enumerate_with_start_pin(self):
        engine = compile_spanner("(x{(a|b)*}|y{(a|b)*})*")
        document = "ab"
        start = ExtendedMapping({"x": Span(1, 2)})
        produced = set(engine.enumerate(document, start=start))
        expected = {
            m
            for m in evaluate_va(engine.automaton, document)
            if m.get("x") == Span(1, 2)
        }
        assert produced == expected

    def test_non_sequential_automaton(self):
        engine = compile_spanner("(x{a})*")
        assert not engine.is_sequential
        assert engine.mappings("aa") == evaluate_va(engine.automaton, "aa")

    def test_eval_is_memoised(self):
        engine = compile_spanner(".*x{a+}.*")
        pinned = ExtendedMapping({"x": Span(1, 2)})
        assert engine.eval("aa", pinned)
        key = (len("aa"), hash("aa"), frozenset(pinned.items()))
        assert key in engine._verdicts
        assert engine.eval("aa", pinned)  # second call hits the cache

    def test_eval_null_pin(self):
        engine = compile_spanner("x{a}|b")
        assert engine.eval("b", ExtendedMapping({"x": NULL}))
        assert not engine.eval("a", ExtendedMapping({"x": NULL}))

    def test_matches_and_count(self):
        engine = compile_spanner(".*x{a}.*")
        assert engine.matches("bab")
        assert not engine.matches("bbb")
        assert engine.count("aaa") == 3

    def test_check_model(self):
        engine = compile_spanner("x{a}(y{b}|ε)c*")
        assert engine.check("ac", Mapping({"x": Span(1, 2)}))
        assert not engine.check(
            "ac", Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        )

    def test_empty_document(self):
        engine = compile_spanner("x{a*}")
        assert engine.mappings("") == {Mapping({"x": Span(1, 1)})}

    def test_variable_free_pattern(self):
        engine = compile_spanner("a*")
        assert engine.mappings("aaa") == {Mapping.empty()}
        assert engine.mappings("ab") == set()


class TestBatchApi:
    def test_evaluate_many_matches_per_document(self):
        engine = compile_spanner(".*x{a+}.*")
        documents = ["baab", "ab", "", "baab"]
        batch = engine.evaluate_many(documents)
        assert batch == [engine.mappings(d) for d in documents]

    def test_evaluate_many_caches_repeated_documents(self):
        engine = compile_spanner(".*x{a+}.*")
        engine.evaluate_many(["baab", "baab", "baab"])
        assert len(engine._indexes) == 1

    def test_index_cache_keys_are_constant_size(self):
        # (len, hash) keys instead of the document text: no unbounded key
        # memory on large documents, text verified on hit.
        engine = compile_spanner(".*x{a+}.*")
        document = "b" * 1000 + "a"
        index = engine.index(document)
        assert engine.index(document) is index
        assert (len(document), hash(document)) in engine._indexes

    def test_index_cache_eviction_is_lru_not_fifo(self):
        from repro.engine import compiled as compiled_module

        engine = compile_spanner(".*x{a+}.*")
        documents = [f"a{'b' * i}" for i in range(compiled_module._DOCUMENT_CACHE_LIMIT)]
        for document in documents:
            engine.index(document)
        oldest = engine.index(documents[0])  # touch: becomes most-recent
        engine.index("a new document")  # evicts documents[1], not [0]
        assert engine.index(documents[0]) is oldest
        assert (len(documents[1]), hash(documents[1])) not in engine._indexes

    def test_verdict_cache_eviction_is_lru(self):
        from repro.engine import compiled as compiled_module

        engine = compile_spanner(".*x{a+}.*")
        empty = ExtendedMapping.empty()
        engine.eval("a", empty)
        first_key = (1, hash("a"), frozenset())
        assert first_key in engine._verdicts
        limit = compiled_module._VERDICT_CACHE_LIMIT
        documents = [f"a{'b' * i}" for i in range(1, limit)]
        for document in documents:
            engine.eval(document, empty)
        engine.eval("a", empty)  # touch: most-recent again
        engine.eval("one more", empty)  # evicts the oldest untouched entry
        assert first_key in engine._verdicts
        assert (len(documents[0]), hash(documents[0]), frozenset()) not in (
            engine._verdicts
        )

    def test_extract_many(self):
        engine = compile_spanner("x{a}b")
        assert engine.extract_many(["ab", "bb"]) == [[{"x": "a"}], []]

    def test_spanner_facade_evaluate_many(self):
        spanner = Spanner.compile(".*x{a+}.*")
        documents = ["baab", "ab"]
        assert spanner.evaluate_many(documents) == [
            spanner.mappings(d) for d in documents
        ]

    def test_workload_batch_helpers(self):
        from repro.workloads import batch_workload, land_registry, server_logs

        documents = [
            land_registry.generate_document(2, seed=7),
            land_registry.generate_document(3, seed=11),
        ]
        batches = land_registry.extract_batch(documents)
        expected = [
            land_registry.expected_extraction(
                land_registry.generate_rows(2, seed=7)
            ),
            land_registry.expected_extraction(
                land_registry.generate_rows(3, seed=11)
            ),
        ]
        assert batches == expected

        logs = [server_logs.generate_document(3, seed=1)]
        (tuples,) = server_logs.extract_batch(logs)
        assert tuples == server_logs.expected_tuples(
            server_logs.generate_lines(3, seed=1)
        )

        engine, results = batch_workload(parse(".*x{a+}.*"), ["baab"])
        assert isinstance(engine, CompiledSpanner)
        assert results == [engine.mappings("baab")]
