"""The durable artifact format: roundtrips, zero-copy, fault injection.

Every corruption test asserts the same contract: a damaged artifact
raises :class:`~repro.engine.artifact.ArtifactError` — never a crash,
never a silently wrong engine — because the store treats any
``ArtifactError`` as a miss and recompiles.
"""

import mmap

import pytest

from repro.engine.artifact import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactError,
    artifact_meta,
    deserialize_engine,
    serialize_engine,
)
from repro.engine.compiled import compile_spanner

pytestmark = pytest.mark.kernel

PATTERN = ".*x{a+}.*"
DOCUMENT = "baa ab"

#: A pattern whose planned automaton exceeds 64 states, forcing the
#: wide-mask (eager ``int.from_bytes``) deserialization path.
WIDE_PATTERN = "x{" + "a" * 70 + "}"


@pytest.fixture()
def blob():
    return serialize_engine(compile_spanner(PATTERN), opt_level=1)


class TestRoundtrip:
    def test_byte_identical_evaluation(self, blob):
        original = compile_spanner(PATTERN)
        restored = deserialize_engine(blob)
        assert restored.fingerprint == original.fingerprint
        assert restored.mappings(DOCUMENT) == original.mappings(DOCUMENT)
        assert list(restored.extract(DOCUMENT)) == list(
            original.extract(DOCUMENT)
        )

    def test_serialization_is_deterministic(self, blob):
        assert serialize_engine(compile_spanner(PATTERN), opt_level=1) == blob

    def test_meta_describes_the_engine(self, blob):
        meta = artifact_meta(blob)
        engine = compile_spanner(PATTERN)
        assert meta["fingerprint"] == engine.fingerprint
        assert meta["opt_level"] == 1
        assert meta["num_states"] == engine.tables.num_states
        assert meta["mask_width"] == 8  # ≤64 states: the zero-copy width

    def test_meta_records_pattern_text_when_given(self):
        meta = artifact_meta(
            serialize_engine(compile_spanner(PATTERN), expression=PATTERN)
        )
        assert meta["expression"] == PATTERN

    def test_mmap_load_evaluates_identically(self, blob, tmp_path):
        path = tmp_path / "engine.rpra"
        path.write_bytes(blob)
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        restored = deserialize_engine(mapped)
        assert restored.mappings(DOCUMENT) == compile_spanner(
            PATTERN
        ).mappings(DOCUMENT)

    def test_wide_automaton_roundtrips(self):
        engine = compile_spanner(WIDE_PATTERN)
        assert engine.tables.num_states > 64
        wide = serialize_engine(engine)
        assert artifact_meta(wide)["mask_width"] > 8
        restored = deserialize_engine(wide)
        document = "a" * 70
        assert restored.mappings(document) == engine.mappings(document)

    def test_expected_fingerprint_accepts_the_right_key(self, blob):
        engine = compile_spanner(PATTERN)
        restored = deserialize_engine(
            blob, expected_fingerprint=engine.fingerprint
        )
        assert restored.fingerprint == engine.fingerprint


class TestFaultInjection:
    def test_truncated_header(self, blob):
        with pytest.raises(ArtifactError):
            deserialize_engine(blob[:20])

    def test_truncated_payload(self, blob):
        with pytest.raises(ArtifactError, match="truncated"):
            deserialize_engine(blob[:-5])

    @pytest.mark.parametrize(
        "offset_fraction", [0.1, 0.3, 0.5, 0.7, 0.9]
    )
    def test_bit_flip_anywhere_in_the_payload(self, blob, offset_fraction):
        corrupt = bytearray(blob)
        position = 48 + int((len(blob) - 48) * offset_fraction)
        corrupt[position] ^= 0x40
        with pytest.raises(ArtifactError):
            deserialize_engine(bytes(corrupt))

    def test_wrong_magic(self, blob):
        assert blob[:4] == MAGIC
        with pytest.raises(ArtifactError, match="magic"):
            deserialize_engine(b"NOPE" + blob[4:])

    def test_wrong_format_version(self, blob):
        bumped = (
            blob[:4]
            + (FORMAT_VERSION + 1).to_bytes(4, "little")
            + blob[8:]
        )
        with pytest.raises(ArtifactError, match="format"):
            deserialize_engine(bumped)
        with pytest.raises(ArtifactError, match="format"):
            artifact_meta(bumped)

    def test_wrong_expected_fingerprint(self, blob):
        with pytest.raises(ArtifactError, match="fingerprint"):
            deserialize_engine(blob, expected_fingerprint="0" * 64)

    def test_meta_fingerprint_must_match_the_automaton(self, blob):
        # Re-checksum a payload whose meta lies about the fingerprint:
        # the envelope validates, the structural check must still catch it.
        import hashlib
        import json

        payload = bytearray(blob[48:])
        meta_len = int.from_bytes(payload[:4], "little")
        meta = json.loads(bytes(payload[4 : 4 + meta_len]))
        meta["fingerprint"] = "f" * 64
        forged_meta = json.dumps(
            meta, separators=(",", ":"), sort_keys=True
        ).encode()
        assert len(forged_meta) == meta_len  # same-length forgery
        payload[4 : 4 + meta_len] = forged_meta
        forged = (
            blob[:8]
            + hashlib.sha256(bytes(payload)).digest()
            + len(payload).to_bytes(8, "little")
            + bytes(payload)
        )
        with pytest.raises(ArtifactError, match="fingerprint"):
            deserialize_engine(forged)

    def test_empty_buffer(self):
        with pytest.raises(ArtifactError):
            deserialize_engine(b"")
        with pytest.raises(ArtifactError):
            artifact_meta(b"")
