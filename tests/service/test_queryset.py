"""The query-set compiler: core sharing, per-query decode, corpus runs."""

import pytest

from repro.engine.compiled import CompiledSpanner
from repro.plan import plan as build_plan
from repro.service.queryset import QuerySet, QuerySetResult
from repro.util.errors import SpannerError

SELLER = ".*Seller: x{[^,]*}, ID y{[0-9]+}.*"
BUYER = ".*Buyer: x{[^,]*}, ID y{[0-9]+}.*"
DOC = "Seller: John, ID 75\nBuyer: Ann, ID 12"


def _registry() -> QuerySet:
    queries = QuerySet()
    queries.register("sellers", SELLER)
    queries.register(
        "seller_names",
        {"op": "project", "of": {"op": "ref", "name": "sellers"}, "keep": ["x"]},
    )
    queries.register(
        "seller_ids",
        {"op": "project", "of": {"op": "ref", "name": "sellers"}, "keep": ["y"]},
    )
    queries.register("buyers", BUYER)
    return queries


class TestSharing:
    def test_projections_share_their_core(self):
        queries = _registry()
        stats = queries.stats()
        assert stats["queries"] == 4
        # sellers / seller_names / seller_ids all share one core; buyers
        # is the second.
        assert stats["cores"] == 2

    def test_explain_reports_members_per_core(self):
        report = _registry().explain()
        assert "4 queries" in report
        assert "2 distinct core" in report
        for name in ("sellers", "seller_names", "seller_ids", "buyers"):
            assert name in report

    def test_identical_sources_deduplicate(self):
        queries = QuerySet()
        queries.register("one", "x{a+}b")
        queries.register("two", "x{a+}b")
        assert queries.stats()["cores"] == 1

    def test_extract_matches_independent_engines(self):
        queries = _registry()
        shared = queries.extract(DOC)
        from repro.algebra import query

        independent = {
            "sellers": query(SELLER),
            "seller_names": query(SELLER).project(["x"]),
            "seller_ids": query(SELLER).project(["y"]),
            "buyers": query(BUYER),
        }
        for name, expression in independent.items():
            engine = CompiledSpanner(plan=build_plan(expression))
            assert shared[name] == engine.extract(DOC), name

    def test_spans_mode(self):
        queries = QuerySet()
        queries.register("q", "x{a+}b")
        decoded = queries.extract("aab", spans=True)
        assert decoded["q"] == [{"x": [1, 3]}] or decoded["q"] == [
            {"x": (1, 3)}
        ]


class TestRegistration:
    def test_bad_pattern_rejected_eagerly(self):
        queries = QuerySet()
        with pytest.raises(SpannerError):
            queries.register("broken", "x{")
        assert "broken" not in queries

    def test_bad_name_rejected(self):
        queries = QuerySet()
        with pytest.raises(SpannerError):
            queries.register("", "x{a}")
        with pytest.raises(SpannerError):
            queries.register(None, "x{a}")

    def test_unknown_reference_fails_at_compile(self):
        queries = QuerySet()
        queries.register("q", {"op": "ref", "name": "ghost"})
        with pytest.raises(SpannerError, match="ghost"):
            queries.compile()

    def test_cyclic_reference_fails_at_compile(self):
        queries = QuerySet()
        queries.register("a", {"op": "ref", "name": "b"})
        queries.register("b", {"op": "ref", "name": "a"})
        with pytest.raises(SpannerError, match="cycl"):
            queries.compile()

    def test_replacing_a_query_bumps_version_and_recompiles(self):
        queries = QuerySet()
        queries.register("q", "x{a}")
        before = queries.version
        assert queries.extract("a")["q"] == [{"x": "a"}]
        queries.register("q", "x{b}")
        assert queries.version > before
        assert queries.extract("b")["q"] == [{"x": "b"}]
        assert queries.extract("a")["q"] == []

    def test_empty_set_cannot_compile(self):
        with pytest.raises(SpannerError):
            QuerySet().compile()

    def test_names_and_containment(self):
        queries = _registry()
        assert sorted(queries.names()) == [
            "buyers",
            "seller_ids",
            "seller_names",
            "sellers",
        ]
        assert "sellers" in queries
        assert "ghost" not in queries
        assert len(queries) == 4


class TestEvaluation:
    def test_names_subset(self):
        queries = _registry()
        decoded = queries.extract(DOC, names=["seller_names"])
        assert set(decoded) == {"seller_names"}

    def test_unknown_name_rejected(self):
        queries = _registry()
        with pytest.raises(SpannerError, match="ghost"):
            queries.extract(DOC, names=["ghost"])

    def test_corpus_serial_matches_parallel(self):
        queries = _registry()
        corpus = {f"doc-{i}": DOC for i in range(6)}
        serial = list(queries.evaluate_corpus(corpus))
        parallel = list(queries.evaluate_corpus(corpus, workers=2))
        assert serial == parallel
        assert all(isinstance(r, QuerySetResult) and r.ok for r in serial)
        assert serial[0].queries["sellers"] == [{"x": "John", "y": "7"},
                                                {"x": "John", "y": "75"}]

    def test_corpus_error_isolation(self):
        queries = _registry()
        results = {
            r.doc_id: r
            for r in queries.evaluate_corpus({"good": DOC, "bad": None})
        }
        assert results["good"].ok
        assert not results["bad"].ok
        assert results["bad"].queries is None
        assert results["bad"].error

    def test_corpus_reports_worker_stats(self):
        queries = _registry()
        collected: dict = {}
        list(
            queries.evaluate_corpus(
                {f"d{i}": DOC for i in range(4)},
                workers=2,
                on_worker_stats=collected.update,
            )
        )
        assert collected.get("workers", 0) >= 1
        assert "kernel" in collected
