"""Shared-memory engine segments: publish, attach, refcounts, cleanup.

The invariants under test: workers attached through a segment produce
byte-identical results to every other engine-delivery path; segments
are host-visible ``/dev/shm`` files that are *always* unlinked when the
owning pool goes away — clean shutdown, abandoned pool, or a worker
killed mid-batch — and never via the child resource tracker (which
would also warn); and every failure falls back to the artifact store or
the pickled automaton, with counters telling the story.
"""

import glob
import os
import signal
import subprocess
import sys
import time

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.engine.compiled import compile_spanner
from repro.service.artifact_store import ArtifactStore
from repro.service.evaluate import WorkerPool, evaluate_records
from repro.service.shm_store import (
    ShmStore,
    attach_engine,
    shm_available,
    worker_counters,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this host"
)

PATTERN = "(a|b)*x{(ab)+}y{b*}(a|b)*"
DOCS = [(f"d{i}", "ab" * (i % 5) + "b") for i in range(24)]


def _segments() -> set:
    return set(glob.glob("/dev/shm/repro_*"))


class TestShmStore:
    def test_publish_attach_roundtrip(self):
        engine = compile_spanner(PATTERN)
        with ShmStore() as store:
            segment = store.publish(engine)
            assert segment is not None
            name, size = segment
            assert os.path.exists(os.path.join("/dev/shm", name))
            assert os.path.getsize(os.path.join("/dev/shm", name)) >= size
            warm = attach_engine(segment, engine.fingerprint)
            assert warm is not None
            for _, text in DOCS:
                assert warm.mappings(text) == engine.mappings(text)
        assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_republish_reuses_the_segment(self):
        engine = compile_spanner(PATTERN)
        with ShmStore() as store:
            first = store.publish(engine)
            second = store.publish(engine)
            assert first == second
            counters = store.counters()
            assert counters["publishes"] == 1
            assert counters["reuses"] == 1
            assert counters["segments"] == 1

    def test_two_stores_share_one_segment_until_both_close(self):
        engine = compile_spanner(PATTERN)
        store_a, store_b = ShmStore(), ShmStore()
        segment = store_a.publish(engine)
        assert store_b.publish(engine) == segment
        path = os.path.join("/dev/shm", segment[0])
        store_a.close()
        assert os.path.exists(path)  # store_b still holds a reference
        store_b.close()
        assert not os.path.exists(path)

    def test_attach_failure_counts_and_returns_none(self):
        before = worker_counters()["attach_errors"]
        assert attach_engine(("repro_no_such_segment", 64), "0" * 64) is None
        assert worker_counters()["attach_errors"] == before + 1

    def test_attach_rejects_wrong_fingerprint(self):
        engine = compile_spanner(PATTERN)
        with ShmStore() as store:
            segment = store.publish(engine)
            assert attach_engine(segment, "f" * 64) is None

    def test_publish_reuses_artifact_blob(self, tmp_path):
        engine = compile_spanner(PATTERN)
        disk = ArtifactStore(str(tmp_path))
        assert disk.save(engine)
        blob = disk.read_blob(engine.fingerprint)
        assert blob is not None
        with ShmStore() as store:
            segment = store.publish(engine, blob=blob)
            assert segment is not None
            assert segment[1] == len(blob)
            warm = attach_engine(segment, engine.fingerprint)
            assert warm is not None
            assert warm.matches("ab") == engine.matches("ab")

    def test_no_shm_env_disables_publishing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm_available()
        with ShmStore() as store:
            assert store.publish(compile_spanner(PATTERN)) is None


class TestWorkerPoolIntegration:
    def test_pool_results_identical_and_segments_unlinked(self):
        engine = compile_spanner(PATTERN)
        serial = evaluate_records(engine, DOCS, kind="mappings")
        before = _segments()
        with WorkerPool(2) as pool:
            futures = [
                pool.submit(engine, DOCS[i : i + 8], kind="mappings")
                for i in range(0, len(DOCS), 8)
            ]
            parallel = [t for f in futures for t in f.result()]
            assert _segments() - before  # a live segment during the run
            stats = pool.stats()
        assert parallel == serial
        assert not _segments() - before
        assert stats["shm"]["publishes"] == 1
        assert stats["shm"]["attaches"] >= 1
        assert stats["shm"]["attach_errors"] == 0

    def test_shared_memory_false_ships_no_segments(self):
        engine = compile_spanner(PATTERN)
        before = _segments()
        with WorkerPool(2, shared_memory=False) as pool:
            future = pool.submit(engine, DOCS[:8], kind="matches")
            future.result()
            assert not _segments() - before
            stats = pool.stats()
        assert "publishes" not in stats["shm"]

    def test_unlinked_segment_falls_back_to_pickle(self):
        # Rip the segment file out from under the pool before any worker
        # attaches: every batch must still evaluate (via the pickled
        # automaton) and the fallback must be counted.
        engine = compile_spanner(PATTERN)
        serial = evaluate_records(engine, DOCS[:8], kind="mappings")
        with WorkerPool(1) as pool:
            segment = pool._shm.publish(engine)
            assert segment is not None
            os.unlink(os.path.join("/dev/shm", segment[0]))
            future = pool.submit(engine, DOCS[:8], kind="mappings")
            assert future.result() == serial
            stats = pool.stats()
        assert stats["shm"]["attach_errors"] >= 1
        assert stats["shm"]["fallbacks"] >= 1

    def test_killed_worker_mid_batch_leaves_no_segments(self):
        """The regression: SIGKILL a worker, segments still unlink and the
        parent (not a child resource tracker) owns the cleanup."""
        engine = compile_spanner(PATTERN)
        before = _segments()
        pool = WorkerPool(2)
        pool.submit(engine, DOCS[:4], kind="matches").result()
        victim = next(iter(pool._pool._processes))
        os.kill(victim, signal.SIGKILL)
        try:
            pool.submit(engine, DOCS[4:8], kind="matches").result()
        except BrokenProcessPool:
            pass
        pool.shutdown()
        assert not _segments() - before

    def test_no_resource_tracker_warnings(self):
        """Workers attach via mmap, never SharedMemory — so no child ever
        registers a segment with its resource tracker, and a full
        pool lifecycle (including worker exit) stays silent on stderr."""
        code = (
            "from repro.engine.compiled import compile_spanner\n"
            "from repro.service.evaluate import WorkerPool\n"
            f"engine = compile_spanner({PATTERN!r})\n"
            f"docs = {DOCS[:8]!r}\n"
            "with WorkerPool(2) as pool:\n"
            "    pool.submit(engine, docs, kind='mappings').result()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        result = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c", code],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr

    def test_abandoned_pool_finalizer_unlinks(self):
        """A pool that is dropped without shutdown() must not leak
        segments: the weakref finalizer mirrors shutdown."""
        before = _segments()
        engine = compile_spanner(".*x{a+}.*")
        pool = WorkerPool(1)
        pool.submit(engine, [("d0", "baa")], kind="matches").result()
        assert _segments() - before
        pool._pool.shutdown()  # stop workers without touching the store
        finalizer = pool._shm_finalizer
        del pool
        for _ in range(50):
            if not finalizer.alive:
                break
            time.sleep(0.05)
        finalizer()  # idempotent: force it if gc has not collected yet
        assert not _segments() - before
