"""Corpus sources and the spanner cache (``repro.service``)."""

import pytest

from repro.service import (
    DirectoryCorpus,
    GeneratorCorpus,
    InMemoryCorpus,
    SpannerCache,
    as_corpus,
    va_fingerprint,
)
from repro.spanner import Spanner
from repro.spans.document import Document
from repro.util.errors import CorpusError


class TestInMemoryCorpus:
    def test_from_dict_preserves_order(self):
        corpus = InMemoryCorpus({"b": "x", "a": "y"})
        assert list(corpus) == [("b", "x"), ("a", "y")]

    def test_from_texts_generates_stable_ids(self):
        corpus = InMemoryCorpus(["aa", "ab"])
        assert corpus.doc_ids() == ["doc-00000", "doc-00001"]
        assert corpus.doc_ids() == corpus.doc_ids()

    def test_from_pairs(self):
        corpus = InMemoryCorpus([("left", "aa"), ("right", "ab")])
        assert list(corpus) == [("left", "aa"), ("right", "ab")]

    def test_accepts_document_instances(self):
        corpus = InMemoryCorpus({"d": Document("abc")})
        assert list(corpus) == [("d", "abc")]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(CorpusError, match="duplicate document id 'dup'"):
            InMemoryCorpus([("dup", "a"), ("dup", "b")])

    def test_len_and_empty(self):
        assert len(InMemoryCorpus([])) == 0
        assert len(InMemoryCorpus(["a", "b", "c"])) == 3


class TestDirectoryCorpus:
    def test_ids_are_sorted_relative_posix_paths(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.txt").write_text("bb")
        (tmp_path / "a.txt").write_text("aa")
        (tmp_path / "sub" / "c.txt").write_text("cc")
        corpus = DirectoryCorpus(tmp_path)
        assert corpus.doc_ids() == ["a.txt", "b.txt", "sub/c.txt"]
        assert dict(corpus)["sub/c.txt"] == "cc"

    def test_glob_pattern_filters(self, tmp_path):
        (tmp_path / "a.txt").write_text("aa")
        (tmp_path / "a.log").write_text("ll")
        assert DirectoryCorpus(tmp_path, "*.txt").doc_ids() == ["a.txt"]

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(CorpusError, match="not a directory"):
            DirectoryCorpus(tmp_path / "absent")

    def test_lazy_reads(self, tmp_path):
        (tmp_path / "a.txt").write_text("aa")
        corpus = DirectoryCorpus(tmp_path)
        (tmp_path / "b.txt").write_text("bb")  # appears on next iteration
        assert corpus.doc_ids() == ["a.txt", "b.txt"]

    def test_glob_matching_nothing_is_an_empty_corpus(self, tmp_path):
        (tmp_path / "a.txt").write_text("aa")
        corpus = DirectoryCorpus(tmp_path, "*.absent")
        assert corpus.doc_ids() == []
        assert len(corpus) == 0
        # An empty corpus evaluates to an empty result stream, not an error.
        from repro.service import evaluate_corpus

        assert list(evaluate_corpus("x{a}", corpus)) == []

    def test_empty_file_is_an_empty_document(self, tmp_path):
        (tmp_path / "empty.txt").write_text("")
        corpus = DirectoryCorpus(tmp_path)
        assert dict(corpus) == {"empty.txt": ""}
        from repro.service import evaluate_corpus

        (result,) = evaluate_corpus(".*x{a+}.*", corpus)
        assert result.ok and result.mappings == frozenset()

    def test_non_utf8_file_raises_corpus_error_naming_it(self, tmp_path):
        (tmp_path / "good.txt").write_text("aa")
        (tmp_path / "bad.bin").write_bytes(b"\xff\xfe\x00broken")
        corpus = DirectoryCorpus(tmp_path)
        with pytest.raises(CorpusError, match="'bad.bin' is not valid UTF-8"):
            list(corpus)

    def test_unreadable_file_raises_corpus_error(self, tmp_path):
        import os
        import stat

        if os.geteuid() == 0:
            pytest.skip("root ignores file permission bits")
        target = tmp_path / "locked.txt"
        target.write_text("aa")
        target.chmod(0)
        try:
            with pytest.raises(CorpusError, match="cannot read 'locked.txt'"):
                list(DirectoryCorpus(tmp_path))
        finally:
            target.chmod(stat.S_IRUSR | stat.S_IWUSR)


class TestGeneratorCorpus:
    def test_reiterable(self):
        corpus = GeneratorCorpus(lambda: iter(["aa", "ab"]))
        assert corpus.doc_ids() == ["doc-00000", "doc-00001"]
        assert corpus.doc_ids() == ["doc-00000", "doc-00001"]

    def test_pairs_and_bare_texts(self):
        corpus = GeneratorCorpus(lambda: [("named", "aa")])
        assert list(corpus) == [("named", "aa")]

    def test_bare_iterator_rejected(self):
        with pytest.raises(CorpusError, match="callable"):
            GeneratorCorpus(iter(["aa"]))


class TestAsCorpus:
    def test_passthrough(self):
        corpus = InMemoryCorpus(["a"])
        assert as_corpus(corpus) is corpus

    def test_coercions(self):
        assert as_corpus({"d": "a"}).doc_ids() == ["d"]
        assert as_corpus(["a", "b"]).doc_ids() == ["doc-00000", "doc-00001"]
        assert as_corpus(lambda: ["a"]).doc_ids() == ["doc-00000"]

    def test_bare_string_is_one_document(self):
        corpus = as_corpus("banana")
        assert list(corpus) == [("doc-00000", "banana")]

    def test_bare_document_is_one_document(self):
        corpus = as_corpus(Document("banana"))
        assert list(corpus) == [("doc-00000", "banana")]

    def test_unsupported_source(self):
        with pytest.raises(CorpusError):
            as_corpus(42)


class TestFingerprint:
    def test_equal_structure_equal_fingerprint(self):
        first = Spanner.compile(".*x{a+}.*").automaton
        second = Spanner.compile(".*x{a+}.*").automaton
        assert first is not second
        assert va_fingerprint(first) == va_fingerprint(second)

    def test_different_structure_different_fingerprint(self):
        first = Spanner.compile("x{a}").automaton
        second = Spanner.compile("x{b}").automaton
        assert va_fingerprint(first) != va_fingerprint(second)

    def test_survives_pickling(self):
        import pickle

        automaton = Spanner.compile(".*x{ab}.*").automaton
        clone = pickle.loads(pickle.dumps(automaton))
        assert va_fingerprint(automaton) == va_fingerprint(clone)


class TestSpannerCache:
    def test_same_pattern_same_engine(self):
        cache = SpannerCache()
        assert cache.get("x{a}b") is cache.get("x{a}b")

    def test_structural_sharing_across_sources(self):
        cache = SpannerCache()
        engine = cache.get(Spanner.compile(".*x{a+}.*"))
        assert cache.get(Spanner.compile(".*x{a+}.*")) is engine
        assert cache.get(".*x{a+}.*") is engine

    def test_capacity_eviction(self):
        cache = SpannerCache(capacity=2)
        first = cache.get("x{a}")
        cache.get("x{b}")
        cache.get("x{c}")  # evicts x{a} (FIFO)
        assert len(cache) == 2
        assert cache.get("x{a}") is not first

    def test_stats(self):
        cache = SpannerCache()
        cache.get("x{a}")
        cache.get("x{a}")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert cache.stats()["size"] == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpannerCache(capacity=0)

    def test_rekeyed_on_post_optimization_fingerprint(self):
        # Structurally different sources that *plan* to the same automaton
        # share one compiled engine: the cache keys on the planner's
        # post-pass fingerprint, not the raw source structure.
        cache = SpannerCache()
        engine = cache.get("x{a}|x{a}")  # simplify merges the union options
        assert cache.get("x{a}") is engine
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1

    def test_distinct_opt_levels_get_distinct_engines(self):
        cache = SpannerCache()
        straight = cache.get(".*x{a+}.*", opt_level=0)
        planned = cache.get(".*x{a+}.*", opt_level=1)
        assert straight is not planned
        assert straight.automaton.num_states > planned.automaton.num_states
        # Each (pattern, level) slot is memoised independently.
        assert cache.get(".*x{a+}.*", opt_level=0) is straight
        assert cache.get(".*x{a+}.*") is planned  # default level = 1

    def test_contains_is_cheap_and_never_compiles(self):
        cache = SpannerCache()
        assert "x{a}" not in cache
        assert cache.stats()["misses"] == 0  # membership did not compile
        cache.get("x{a}")
        assert "x{a}" in cache
        assert Spanner.compile("x{a}") in cache  # fingerprint lookup
        assert "x{b}" not in cache
        assert 42 not in cache
