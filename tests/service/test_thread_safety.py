"""Concurrent access to the caches the async server shares across threads."""

import threading

from repro.engine.compiled import compile_spanner
from repro.service import SpannerCache

THREADS = 8
ROUNDS = 40


def hammer(worker, threads=THREADS):
    failures = []

    def runner(identity):
        try:
            worker(identity)
        except Exception as error:  # surfaced below, with context
            failures.append(f"thread {identity}: {error!r}")

    pool = [
        threading.Thread(target=runner, args=(identity,))
        for identity in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not failures, failures


class TestCompiledSpannerUnderThreads:
    def test_concurrent_evaluation_is_correct_and_counted(self):
        engine = compile_spanner(".*x{a+}.*")
        documents = [f"b{'a' * (1 + n % 5)}b" for n in range(ROUNDS)]
        expected = [engine.extract(document) for document in documents]

        def worker(identity):
            for position, document in enumerate(documents):
                assert engine.extract(document) == expected[position]
                assert engine.matches(document) is True

        hammer(worker)
        stats = engine.cache_stats()
        # Every lookup is accounted for: hits + misses == total index calls
        # (each extract indexes once; a lost insert race still counts).
        assert stats["index_hits"] + stats["index_misses"] > 0
        assert stats["verdict_hits"] + stats["verdict_misses"] > 0
        assert stats["index_size"] <= stats["index_capacity"]
        assert stats["verdict_size"] <= stats["verdict_capacity"]

    def test_eviction_under_contention_keeps_bound(self):
        from repro.engine import compiled as compiled_module

        engine = compile_spanner("x{a}b")
        limit = compiled_module._DOCUMENT_CACHE_LIMIT

        def worker(identity):
            for n in range(limit * 2):
                engine.index(f"{'z' * identity}a{'b' * (n % 7)}")

        hammer(worker)
        assert len(engine._indexes) <= limit


class TestSpannerCacheUnderThreads:
    def test_concurrent_gets_converge_on_one_engine(self):
        cache = SpannerCache()
        seen = []

        def worker(identity):
            for _ in range(ROUNDS):
                seen.append(cache.get(".*x{a+}.*"))

        hammer(worker)
        assert all(engine is seen[0] for engine in seen)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == len(seen)
        assert stats["size"] == 1

    def test_eviction_race_keeps_capacity_bound(self):
        cache = SpannerCache(capacity=4)
        patterns = [f"x{{{'a' * (1 + n)}}}" for n in range(12)]

        def worker(identity):
            for pattern in patterns[identity % len(patterns):] + patterns:
                cache.get(pattern)

        hammer(worker)
        assert len(cache) <= 4
