"""The fault-injection registry: parsing, determinism, shared counting."""

import os

import pytest

from repro.service import faults
from repro.service.faults import FaultRegistry, InjectedFault


class TestParsing:
    def test_empty_and_none_are_inert(self):
        assert not FaultRegistry.parse(None).active
        assert not FaultRegistry.parse("").active
        assert not FaultRegistry.parse(" , ,").active

    def test_fail_fires_every_check(self):
        registry = FaultRegistry.parse("task_error:fail")
        assert [registry.should_fire("task_error") for _ in range(5)] == [
            True
        ] * 5

    def test_once_fires_exactly_once(self):
        registry = FaultRegistry.parse("task_error:once")
        fired = [registry.should_fire("task_error") for _ in range(5)]
        assert fired == [True, False, False, False, False]

    def test_count_fires_first_n_checks(self):
        registry = FaultRegistry.parse("shm_attach:3")
        fired = [registry.should_fire("shm_attach") for _ in range(5)]
        assert fired == [True, True, True, False, False]
        assert registry.counters() == {"shm_attach": 3}

    def test_unarmed_point_never_fires(self):
        registry = FaultRegistry.parse("task_error:fail")
        assert not registry.should_fire("shm_attach")

    def test_multiple_entries(self):
        registry = FaultRegistry.parse("task_error:fail, shm_attach:once")
        assert registry.should_fire("task_error")
        assert registry.should_fire("shm_attach")
        assert not registry.should_fire("shm_attach")

    @pytest.mark.parametrize(
        "text",
        ["task_error", "task_error:", ":fail", "task_error:maybe",
         "task_error:-1", "task_error:1.5"],
    )
    def test_malformed_entries_raise(self, text):
        with pytest.raises(ValueError):
            FaultRegistry.parse(text)


class TestProbabilityTriggers:
    def test_same_seed_same_sequence(self):
        first = FaultRegistry.parse("task_error:0.5", seed=7)
        second = FaultRegistry.parse("task_error:0.5", seed=7)
        outcomes = lambda reg: [  # noqa: E731
            reg.should_fire("task_error") for _ in range(64)
        ]
        assert outcomes(first) == outcomes(second)

    def test_rate_roughly_respected(self):
        registry = FaultRegistry.parse("task_error:0.25", seed=1)
        fired = sum(registry.should_fire("task_error") for _ in range(400))
        assert 40 < fired < 180  # deterministic, just sanity-band it

    def test_rate_zero_never_fires(self):
        registry = FaultRegistry.parse("task_error:0.0")
        assert not any(registry.should_fire("task_error") for _ in range(20))

    def test_rate_one_always_fires(self):
        registry = FaultRegistry.parse("task_error:1.0")
        assert all(registry.should_fire("task_error") for _ in range(20))


class TestSharedState:
    def test_counted_budget_shared_across_registries(self, tmp_path):
        """Two registries with one state dir model two processes: the
        budget is spent host-wide, not per process."""
        state = str(tmp_path)
        first = FaultRegistry.parse("worker_kill:2", state_dir=state)
        second = FaultRegistry.parse("worker_kill:2", state_dir=state)
        assert first.should_fire("worker_kill")
        assert second.should_fire("worker_kill")
        assert not first.should_fire("worker_kill")
        assert not second.should_fire("worker_kill")

    def test_state_file_length_is_the_counter(self, tmp_path):
        registry = FaultRegistry.parse("shm_attach:1", state_dir=str(tmp_path))
        for _ in range(3):
            registry.should_fire("shm_attach")
        assert (tmp_path / "shm_attach.fired").stat().st_size == 3


class TestModuleRegistry:
    def test_inert_by_default(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        faults.reload()
        assert not faults.active()
        faults.inject("task_error")  # no-op, must not raise

    def test_injected_context_arms_and_restores(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        faults.reload()
        with faults.injected("task_error", "once"):
            assert os.environ[faults.FAULTS_ENV] == "task_error:once"
            with pytest.raises(InjectedFault) as caught:
                faults.inject("task_error")
            assert caught.value.point == "task_error"
            faults.inject("task_error")  # budget spent
        assert faults.FAULTS_ENV not in os.environ
        assert not faults.active()

    def test_injected_context_layers_points(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "shm_attach:fail")
        faults.reload()
        with faults.injected("task_error", "fail"):
            with pytest.raises(InjectedFault):
                faults.inject("shm_attach")
            with pytest.raises(InjectedFault):
                faults.inject("task_error")
        assert os.environ[faults.FAULTS_ENV] == "shm_attach:fail"
        faults.reload()

    def test_injected_context_replaces_same_point(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "task_error:0")
        faults.reload()
        with faults.injected("task_error", "fail"):
            assert os.environ[faults.FAULTS_ENV] == "task_error:fail"
        assert os.environ[faults.FAULTS_ENV] == "task_error:0"
        faults.reload()

    def test_injected_context_exports_state_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
        with faults.injected("worker_kill", "1", state_dir=str(tmp_path)):
            assert os.environ[faults.FAULTS_STATE_ENV] == str(tmp_path)
        assert faults.FAULTS_STATE_ENV not in os.environ


class TestPoison:
    def test_no_token_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(faults.POISON_ENV, raising=False)
        assert faults.poison_token() is None
        faults.maybe_poison([("d0", "anything")])  # must not kill us

    def test_clean_batch_survives_with_token_set(self, monkeypatch):
        monkeypatch.setenv(faults.POISON_ENV, "BOOM")
        assert faults.poison_token() == "BOOM"
        faults.maybe_poison([("d0", "clean"), ("d1", None)])
        # (A batch actually containing the token SIGKILLs the process —
        # exercised end-to-end by the chaos suite, not in-process here.)
