"""The fault-tolerant worker pool: recovery, deadlines, retries, breakers.

The ``chaos``-marked classes kill, hang, and poison real worker
processes; their corpus size scales with ``REPRO_CHAOS_DOCS`` (see
``tests/conftest.py``) and the default already covers the ≥200-document
worker-death acceptance run.
"""

import os
import signal
import time
import warnings

import pytest

from tests.conftest import chaos_docs
from repro.engine.compiled import compile_spanner
from repro.service import WorkerPool, evaluate_corpus, faults
from repro.service.resilience import (
    CircuitBreaker,
    PoolBroken,
    RetryPolicy,
    task_timeout_from_env,
)

PATTERN = ".*x{a+}.*"


def docs(count):
    return [(f"d{n:05d}", f"b{'a' * (n % 7)}") for n in range(count)]


def snapshot(results):
    return [(r.doc_id, r.mappings, r.error) for r in results]


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_only_stretches(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        for _ in range(20):
            delay = policy.backoff(2)
            assert 0.2 <= delay <= 0.3

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)

    def test_invalid_fields_raise(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2)

    def test_from_env_honours_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "7")
        assert RetryPolicy.from_env().max_retries == 7

    def test_from_env_warns_on_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "lots")
        with pytest.warns(RuntimeWarning):
            policy = RetryPolicy.from_env()
        assert policy.max_retries == RetryPolicy().max_retries


class TestTaskTimeoutEnv:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert task_timeout_from_env() is None

    def test_positive_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert task_timeout_from_env() == 2.5

    @pytest.mark.parametrize("text", ["0", "-1", "soon"])
    def test_garbage_warns_and_disables(self, monkeypatch, text):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", text)
        with pytest.warns(RuntimeWarning):
            assert task_timeout_from_env() is None


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = [0.0]
        breaker = CircuitBreaker(2, reset_timeout=10, clock=lambda: clock[0])
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10)

    def test_half_open_admits_one_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, reset_timeout=5, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else still refused

    def test_probe_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, reset_timeout=5, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_probe_failure_reopens_for_full_timeout(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, reset_timeout=5, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        clock[0] = 6.0
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(5)
        clock[0] = 10.0  # 4s into the fresh window: still shut
        assert not breaker.allow()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0)


class TestWorkerPoolConfig:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            WorkerPool(1, task_timeout=0)
        with pytest.raises(ValueError):
            WorkerPool(1, task_timeout=-1)

    def test_rejects_negative_rebuild_budget(self):
        with pytest.raises(ValueError):
            WorkerPool(1, max_rebuilds=-1)

    def test_resilience_snapshot_shape(self):
        with WorkerPool(1, task_timeout=30.0) as pool:
            report = pool.resilience()
        assert report["restarts"] == 0
        assert report["retries"] == 0
        assert report["timeouts"] == 0
        assert report["failed"] is False
        assert report["task_timeout"] == 30.0

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(compile_spanner(PATTERN), [("d0", "a")])


@pytest.mark.chaos
class TestWorkerDeathRecovery:
    def test_sigkill_mid_run_is_invisible_in_the_results(self):
        """The acceptance run: SIGKILL a live worker partway through a
        ≥200-document corpus; the stream completes identical to an
        unfaulted run, with no document lost or duplicated."""
        corpus = docs(chaos_docs())
        baseline = snapshot(evaluate_corpus(PATTERN, corpus, workers=2))

        with WorkerPool(2) as pool:
            results = []
            stream = evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
            killed = False
            for result in stream:
                results.append(result)
                if not killed and len(results) == len(corpus) // 4:
                    victims = pool.worker_pids()
                    assert victims, "no live workers to kill"
                    os.kill(victims[0], signal.SIGKILL)
                    killed = True
            assert killed
            report = pool.resilience()

        assert report["restarts"] >= 1
        assert snapshot(results) == baseline
        assert [doc_id for doc_id, _, _ in snapshot(results)] == [
            doc_id for doc_id, _ in corpus
        ]

    def test_injected_worker_kill_recovers(self, tmp_path):
        """Same recovery, driven by the registry: the first batch kills
        its worker (counted host-wide so the respawn survives)."""
        corpus = docs(60)
        baseline = snapshot(evaluate_corpus(PATTERN, corpus, workers=2))
        with faults.injected("worker_kill", "1", state_dir=str(tmp_path)):
            with WorkerPool(2) as pool:
                results = snapshot(
                    evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                )
                report = pool.resilience()
        assert results == baseline
        assert report["restarts"] >= 1
        assert report["retries"] >= 1

    def test_worker_boot_fault_heals_once_budget_spent(self, tmp_path):
        """A crashing initializer breaks the pool before its first task;
        once the counted budget is spent the rebuild comes up clean."""
        corpus = docs(30)
        baseline = snapshot(evaluate_corpus(PATTERN, corpus, workers=2))
        with faults.injected("worker_boot", "1", state_dir=str(tmp_path)):
            with WorkerPool(2) as pool:
                results = snapshot(
                    evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                )
        assert results == baseline


@pytest.mark.chaos
class TestPoisonDocuments:
    def test_poison_document_isolated_to_one_error_record(self, monkeypatch):
        """A document that reliably SIGKILLs its worker costs exactly its
        own result — every other document still evaluates."""
        corpus = docs(48)
        poison_id = corpus[13][0]
        corpus[13] = (poison_id, "baaaa POISON baaa")
        monkeypatch.setenv(faults.POISON_ENV, "POISON")
        with WorkerPool(2) as pool:
            results = snapshot(
                evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
            )
        monkeypatch.delenv(faults.POISON_ENV)

        errors = [(d, e) for d, m, e in results if e is not None]
        assert len(errors) == 1
        assert errors[0][0] == poison_id
        assert "WorkerCrash" in errors[0][1]
        clean = snapshot(
            evaluate_corpus(
                PATTERN, [r for r in corpus if r[0] != poison_id], workers=1
            )
        )
        assert [r for r in results if r[0] != poison_id] == clean


@pytest.mark.chaos
class TestDeadlines:
    def test_hung_task_times_out_and_retries(self, tmp_path):
        """One injected hang: the deadline reaps the wedged worker and
        the retried batch (fault budget spent) completes normally."""
        corpus = docs(24)
        baseline = snapshot(evaluate_corpus(PATTERN, corpus, workers=2))
        with faults.injected("task_slow", "1", state_dir=str(tmp_path)):
            with WorkerPool(2, task_timeout=1.0) as pool:
                results = snapshot(
                    evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                )
                report = pool.resilience()
        assert results == baseline
        assert report["timeouts"] >= 1


@pytest.mark.chaos
class TestGracefulDegradation:
    def test_exhausted_rebuild_budget_falls_back_in_process(self, monkeypatch):
        """Every batch poisons its worker and the budget is zero: the
        pool fails fast and the stream degrades to in-process evaluation
        with identical results."""
        corpus = docs(32)
        baseline = snapshot(evaluate_corpus(PATTERN, corpus, workers=1))
        monkeypatch.setenv(faults.POISON_ENV, "b")  # every document
        with WorkerPool(2, max_rebuilds=0) as pool:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                results = snapshot(
                    evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                )
            assert pool.failed
            with pytest.raises(PoolBroken):
                pool.submit(compile_spanner(PATTERN), [("d0", "a")])
        monkeypatch.delenv(faults.POISON_ENV)
        assert results == baseline

    def test_revive_restores_a_failed_pool(self, monkeypatch):
        monkeypatch.setenv(faults.POISON_ENV, "b")
        with WorkerPool(1, max_rebuilds=0) as pool:
            future = pool.submit(
                compile_spanner(PATTERN), [("d0", "baaa")], kind="extract"
            )
            with pytest.raises(PoolBroken):
                future.result(timeout=30)
            assert pool.failed
            monkeypatch.delenv(faults.POISON_ENV)
            pool.revive()
            assert not pool.failed
            healthy = pool.submit(
                compile_spanner(PATTERN), [("d0", "baaa")], kind="extract"
            )
            triples = healthy.result(timeout=30)
        assert triples[0][0] == "d0"
        assert triples[0][2] is None


@pytest.mark.chaos
class TestEngineShippingFallbacks:
    """shm attach → artifact load → pickled automaton, injected in turn."""

    def expected(self, corpus):
        return snapshot(evaluate_corpus(PATTERN, corpus, workers=1))

    def test_shm_attach_failure_falls_back(self, tmp_path):
        corpus = docs(16)
        with faults.injected("shm_attach", "fail"):
            with WorkerPool(2, artifact_dir=str(tmp_path)) as pool:
                results = snapshot(
                    evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                )
        assert results == self.expected(corpus)

    def test_artifact_load_failure_falls_back(self, tmp_path):
        corpus = docs(16)
        with faults.injected("shm_attach", "fail"):
            with faults.injected("artifact_load", "fail"):
                with WorkerPool(2, artifact_dir=str(tmp_path)) as pool:
                    results = snapshot(
                        evaluate_corpus(PATTERN, corpus, workers=2, pool=pool)
                    )
        assert results == self.expected(corpus)

    def test_task_error_fault_reports_not_crashes(self, tmp_path):
        """An injected in-task exception is a deterministic error: it is
        reported per document, never retried as a crash."""
        corpus = docs(8)
        with faults.injected("task_error", "once", state_dir=str(tmp_path)):
            with WorkerPool(1) as pool:
                results = snapshot(
                    evaluate_corpus(
                        PATTERN, corpus, workers=1, pool=pool, chunk_size=4
                    )
                )
                report = pool.resilience()
        assert report["restarts"] == 0
        failed = [d for d, _, e in results if e is not None]
        succeeded = [d for d, _, e in results if e is None]
        assert len(failed) == 4   # exactly the faulted chunk
        assert len(succeeded) == 4
