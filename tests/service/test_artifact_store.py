"""The on-disk artifact store: warm loads, fault tolerance, concurrency.

The store's contract is that it can *never* make an evaluation wrong or
crash a run: a valid artifact loads an engine with byte-identical
output, and everything else — corruption, version skew, concurrent
writers, a missing directory — degrades to a counted miss and a
recompile.
"""

import os
import threading

import pytest

from repro.engine.compiled import compile_spanner
from repro.service.artifact_store import (
    ARTIFACT_DIR_ENV,
    ArtifactStore,
    default_artifact_root,
    store_from_env,
)
from repro.service.cache import SpannerCache
from repro.service.evaluate import WorkerPool

pytestmark = pytest.mark.kernel

PATTERN = ".*x{a+}.*"
DOCUMENT = "baa ab"


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path))


class TestSaveLoad:
    def test_roundtrip_is_byte_identical(self, store):
        engine = compile_spanner(PATTERN)
        assert store.save(engine, opt_level=1, pattern=PATTERN)
        warm = store.load(engine.fingerprint)
        assert warm is not None
        assert warm.mappings(DOCUMENT) == engine.mappings(DOCUMENT)
        assert list(warm.extract(DOCUMENT)) == list(engine.extract(DOCUMENT))
        assert store.counters() == {
            "hits": 1,
            "misses": 0,
            "saves": 1,
            "errors": 0,
        }

    def test_missing_artifact_is_a_counted_miss(self, store):
        assert store.load("0" * 64) is None
        assert store.counters()["misses"] == 1
        assert store.counters()["errors"] == 0

    def test_refs_resolve_pattern_to_fingerprint(self, store):
        engine = compile_spanner(PATTERN)
        store.save(engine, opt_level=1, pattern=PATTERN)
        assert store.resolve(PATTERN, 1) == engine.fingerprint
        assert store.resolve(PATTERN, 2) is None
        assert store.resolve("y{b}", 1) is None

    def test_second_save_is_a_noop(self, store):
        engine = compile_spanner(PATTERN)
        assert store.save(engine) is True
        assert store.save(engine) is False
        assert store.counters()["saves"] == 1

    def test_list_and_stats_describe_the_cache(self, store):
        engine = compile_spanner(PATTERN)
        store.save(engine, opt_level=1, pattern=PATTERN)
        (record,) = store.list()
        assert record["fingerprint"] == engine.fingerprint
        assert record["expression"] == PATTERN
        assert record["size"] > 0
        stats = store.stats()
        assert stats["artifacts"] == 1
        assert stats["bytes"] == record["size"]

    def test_clear_removes_artifacts_and_refs(self, store):
        engine = compile_spanner(PATTERN)
        store.save(engine, opt_level=1, pattern=PATTERN)
        assert store.clear() == 1
        assert store.list() == []
        assert store.resolve(PATTERN, 1) is None


class TestFaultTolerance:
    def _corrupt(self, store, fingerprint, mutate):
        path = store.artifact_path(fingerprint)
        blob = bytearray(open(path, "rb").read())
        mutate(blob)
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        return path

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda blob: blob.__setitem__(slice(0, 4), b"NOPE"),  # magic
            lambda blob: blob.__setitem__(4, 99),  # version
            lambda blob: blob.__setitem__(60, blob[60] ^ 0xFF),  # bit flip
            lambda blob: blob.__delitem__(slice(len(blob) - 9, len(blob))),
        ],
        ids=["bad-magic", "bad-version", "bit-flip", "truncated"],
    )
    def test_damaged_artifact_quarantined_not_crashed(self, store, mutate):
        engine = compile_spanner(PATTERN)
        store.save(engine)
        path = self._corrupt(store, engine.fingerprint, mutate)
        assert store.load(engine.fingerprint) is None
        counters = store.counters()
        assert counters["errors"] == 1 and counters["misses"] == 1
        assert not os.path.exists(path)  # quarantined: next save rewrites
        assert store.save(engine) is True  # and it can indeed rewrite

    def test_artifact_under_the_wrong_fingerprint(self, store, tmp_path):
        engine = compile_spanner(PATTERN)
        store.save(engine)
        wrong = "0" * 64
        target = store.artifact_path(wrong)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.link(store.artifact_path(engine.fingerprint), target)
        assert store.load(wrong) is None
        assert store.counters()["errors"] == 1

    def test_cache_falls_back_to_recompile_on_corruption(self, store):
        # The end-to-end guarantee: a SpannerCache backed by a corrupt
        # store still produces a working engine with identical output.
        cold = SpannerCache()
        cold.attach_artifacts(store)
        expected = cold.get(PATTERN).mappings(DOCUMENT)
        self._corrupt(
            store,
            compile_spanner(PATTERN).fingerprint,
            lambda blob: blob.__setitem__(90, blob[90] ^ 0x01),
        )
        warm = SpannerCache()
        warm.attach_artifacts(ArtifactStore(store.root))
        assert warm.get(PATTERN).mappings(DOCUMENT) == expected


class TestConcurrency:
    def test_concurrent_writers_first_insert_wins(self, store):
        engine = compile_spanner(PATTERN)
        results = []
        barrier = threading.Barrier(8)

        def writer():
            private = ArtifactStore(store.root)
            barrier.wait()
            results.append(private.save(engine, opt_level=1, pattern=PATTERN))

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(results) == 1  # exactly one writer published
        assert store.load(engine.fingerprint) is not None


class TestSpannerCacheIntegration:
    def test_fresh_cache_warm_loads_by_pattern_ref(self, store):
        first = SpannerCache()
        first.attach_artifacts(store)
        expected = first.get(PATTERN).mappings(DOCUMENT)
        assert store.counters()["saves"] == 1

        second_store = ArtifactStore(store.root)
        second = SpannerCache()
        second.attach_artifacts(second_store)
        engine = second.get(PATTERN)
        # The ref resolved the pattern without planning, and the load hit.
        assert second_store.counters() == {
            "hits": 1,
            "misses": 0,
            "saves": 0,
            "errors": 0,
        }
        assert engine.mappings(DOCUMENT) == expected

    def test_non_string_source_loads_by_fingerprint(self, store):
        from repro.spanner import Spanner

        first = SpannerCache()
        first.attach_artifacts(store)
        first.get(PATTERN)
        second_store = ArtifactStore(store.root)
        second = SpannerCache()
        second.attach_artifacts(second_store)
        second.get(Spanner.compile(PATTERN))
        assert second_store.counters()["hits"] == 1

    def test_detach_restores_plain_behaviour(self, store):
        cache = SpannerCache()
        cache.attach_artifacts(store)
        cache.attach_artifacts(None)
        cache.get(PATTERN)
        assert store.counters() == {
            "hits": 0,
            "misses": 0,
            "saves": 0,
            "errors": 0,
        }


class TestWorkerWarmLoad:
    def test_workers_load_the_parents_artifact(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        engine = compile_spanner(PATTERN)
        store.save(engine, opt_level=1)
        # Shared-memory segments would satisfy the workers first; turn
        # them off — this test pins down the disk warm-load path.
        with WorkerPool(2, artifact_dir=store.root, shared_memory=False) as pool:
            futures = [
                pool.submit(engine, [(f"d{i}", DOCUMENT)], kind="extract")
                for i in range(4)
            ]
            for future in futures:
                (triple,) = future.result()
                assert triple[2] is None
        merged = pool.stats(engine.fingerprint)
        # Each worker process that compiled the engine did so from the
        # artifact, not the pickled automaton.
        assert merged["artifacts"].get("hits", 0) >= 1
        assert merged["artifacts"].get("misses", 0) == 0


class TestEnvironmentResolution:
    def test_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ARTIFACT_DIR_ENV, raising=False)
        assert store_from_env() is None
        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
        resolved = store_from_env()
        assert resolved is not None
        assert resolved.root == str(tmp_path)

    def test_default_root_honours_xdg(self, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-test")
        assert default_artifact_root() == (
            "/tmp/xdg-test/repro-spanners/artifacts"
        )
