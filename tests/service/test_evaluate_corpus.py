"""Corpus evaluation: sharding, ordering, determinism, error isolation."""

import pytest

from repro.engine.compiled import compile_spanner
from repro.service import (
    GeneratorCorpus,
    InMemoryCorpus,
    corpus_outputs,
    evaluate_corpus,
    extract_corpus,
)
from repro.util.errors import CorpusError
from repro.workloads import land_registry

PATTERN = ".*x{a+}.*"


def docs(count):
    return [f"b{'a' * (n % 5)}" for n in range(count)]


class TestSerial:
    def test_empty_corpus(self):
        assert list(evaluate_corpus(PATTERN, [])) == []

    def test_matches_evaluate_many(self):
        documents = docs(10)
        engine = compile_spanner(PATTERN)
        expected = engine.evaluate_many(documents)
        results = list(evaluate_corpus(PATTERN, documents))
        assert [set(r.mappings) for r in results] == expected

    def test_results_carry_corpus_ids(self):
        results = list(evaluate_corpus(PATTERN, {"one": "ba", "two": "bb"}))
        assert [r.doc_id for r in results] == ["one", "two"]
        assert results[0].ok and results[1].ok

    def test_error_isolation(self):
        corpus = [("good", "aa"), ("bad", None), ("after", "a")]
        results = list(evaluate_corpus(PATTERN, corpus))
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].mappings is None
        assert "TypeError" in results[1].error

    def test_duplicate_ids_from_generator_raise(self):
        corpus = GeneratorCorpus(lambda: [("d", "a"), ("d", "b")])
        with pytest.raises(CorpusError, match="duplicate document id"):
            list(evaluate_corpus(PATTERN, corpus))

    def test_invalid_workers_raise_at_call_time(self):
        with pytest.raises(ValueError):
            evaluate_corpus(PATTERN, ["a"], workers=0)  # no iteration needed

    def test_bad_pattern_raises_at_call_time(self):
        from repro.util.errors import SpannerError

        with pytest.raises(SpannerError):
            evaluate_corpus("(((", ["a"])

    def test_bare_string_corpus_is_one_document(self):
        results = list(evaluate_corpus(PATTERN, "banana"))
        assert [r.doc_id for r in results] == ["doc-00000"]


class TestParallel:
    """Process-pool paths (kept small: the test box may be single-core)."""

    def test_ordered_mode_deterministic_across_worker_counts(self):
        documents = docs(24)
        serial = [
            (r.doc_id, r.mappings)
            for r in evaluate_corpus(PATTERN, documents, workers=1)
        ]
        parallel = [
            (r.doc_id, r.mappings)
            for r in evaluate_corpus(
                PATTERN, documents, workers=4, chunk_size=3
            )
        ]
        assert serial == parallel

    def test_as_completed_mode_same_result_set(self):
        documents = docs(12)
        ordered = {
            (r.doc_id, r.mappings)
            for r in evaluate_corpus(PATTERN, documents, workers=1)
        }
        completed = {
            (r.doc_id, r.mappings)
            for r in evaluate_corpus(
                PATTERN, documents, workers=2, ordered=False, chunk_size=2
            )
        }
        assert completed == ordered

    def test_worker_error_isolation(self):
        corpus = [("good", "aa"), ("bad", None), ("after", "a")]
        results = list(
            evaluate_corpus(PATTERN, corpus, workers=2, chunk_size=1)
        )
        assert [r.doc_id for r in results] == ["good", "bad", "after"]
        assert [r.ok for r in results] == [True, False, True]
        assert "TypeError" in results[1].error

    def test_registry_corpus_parallel_matches_serial(self):
        corpus = land_registry.corpus(6, rows_per_document=2, seed=5)
        serial = land_registry.extract_corpus_pairs(corpus)
        parallel = land_registry.extract_corpus_pairs(corpus, workers=2)
        assert serial == parallel
        assert set(serial) == set(corpus.doc_ids())

    def test_merged_worker_stats_are_the_sum_of_per_worker_counters(self):
        # The --stats/--workers contract: the merged report equals the
        # sum over workers of each worker's latest cumulative snapshot
        # (kernel/cache summed per (pid, fingerprint); artifact counters
        # summed per pid).
        from repro.service.evaluate import WorkerPool

        engine = compile_spanner(PATTERN)
        with WorkerPool(2) as pool:
            futures = [
                pool.submit(engine, [(f"d{i}", "f0=aa;" * 3)])
                for i in range(6)
            ]
            for future in futures:
                future.result()
            merged = pool.stats(engine.fingerprint)
            with pool._stats_lock:
                snapshots = [
                    dict(snapshot)
                    for (pid, fp), snapshot in pool._worker_stats.items()
                    if fp == engine.fingerprint
                ]
        assert merged["workers"] == len(
            {snapshot["pid"] for snapshot in snapshots}
        )
        assert merged["workers"] >= 1
        for section in ("kernel", "cache"):
            expected: dict = {}
            for snapshot in snapshots:
                for key, value in snapshot[section].items():
                    expected[key] = expected.get(key, 0) + value
            assert merged[section] == expected
        assert merged["kernel"].get("flat_states", 0) > 0  # real work merged


class TestExtractCorpus:
    def test_decoded_results(self):
        results = list(extract_corpus(".*Seller: x{[^,\n]*},.*", ["Seller: John, ID75\n"]))
        assert results[0].mappings == ({"x": "John"},)

    def test_spans_mode(self):
        results = list(extract_corpus("x{a}b", ["ab"], spans=True))
        [[record]] = [list(r.mappings) for r in results]
        span = record["x"]
        assert (span.begin, span.end) == (1, 2)

    def test_parallel_decoding_in_workers(self):
        documents = ["Seller: John, ID75\n", "Seller: Mark, ID7\n"] * 3
        serial = [
            r.mappings
            for r in extract_corpus(".*Seller: x{[^,\n]*},.*", documents)
        ]
        parallel = [
            r.mappings
            for r in extract_corpus(
                ".*Seller: x{[^,\n]*},.*", documents, workers=2, chunk_size=2
            )
        ]
        assert serial == parallel


class TestCorpusOutputs:
    def test_matches_batch_api(self):
        documents = docs(8)
        engine = compile_spanner(PATTERN)
        assert [
            set(out) for out in corpus_outputs(PATTERN, documents)
        ] == engine.evaluate_many(documents)

    def test_errors_reraise(self):
        with pytest.raises(CorpusError, match="failed"):
            corpus_outputs(PATTERN, [("bad", None)])


class TestStreamingLaziness:
    def test_serial_is_lazy(self):
        consumed = []

        def factory():
            for n in range(100):
                consumed.append(n)
                yield f"a{n % 3 * 'a'}"

        stream = evaluate_corpus(PATTERN, GeneratorCorpus(factory))
        next(stream)
        assert len(consumed) < 100  # did not materialise the corpus

    def test_empty_corpus_parallel(self):
        assert list(evaluate_corpus(PATTERN, InMemoryCorpus([]), workers=2)) == []
