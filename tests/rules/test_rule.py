"""Rule syntax and the instantiated-variable semantics of Section 3.3."""

import pytest

from repro.rgx.ast import ANY_STAR, char, concat, union
from repro.rgx.parser import parse
from repro.rules.rule import Rule, bare, rule
from repro.spans.mapping import Mapping
from repro.spans.span import Span
from repro.util.errors import RuleError


class TestConstruction:
    def test_spanrgx_enforced(self):
        with pytest.raises(RuleError):
            Rule(parse("x{a*}"))  # constrained body is not spanRGX

    def test_spanrgx_check_can_be_disabled(self):
        Rule(parse("x{a*}"), check_span_rgx=False)

    def test_simple_detection(self):
        simple = rule(bare("x"), ("x", ANY_STAR), ("y", ANY_STAR))
        assert simple.is_simple()
        duplicated = rule(bare("x"), ("x", ANY_STAR), ("x", char("a")))
        assert not duplicated.is_simple()

    def test_variables_include_heads_and_occurrences(self):
        r = rule(bare("x"), ("y", concat(bare("z"), char("a"))))
        assert r.variables() == {"x", "y", "z"}

    def test_normalized_adds_vacuous_conjuncts(self):
        r = rule(concat(bare("x"), bare("y")), ("x", char("a")))
        normalized = r.normalized()
        assert set(normalized.heads) == {"x", "y"}
        for document in ["a", "ab"]:
            assert normalized.evaluate(document) == r.evaluate(document)

    def test_str_rendering(self):
        r = rule(bare("x"), ("x", parse("ab*")))
        assert "∧" in str(r)


class TestSemantics:
    def test_paper_nondeterminism_example(self):
        # (x ∨ y) ∧ x.(ab*) ∧ y.(ba*): only the matched variable is
        # constrained; the other stays undefined.
        r = rule(
            union(bare("x"), bare("y")),
            ("x", parse("ab*")),
            ("y", parse("ba*")),
        )
        assert r.evaluate("ab") == {Mapping({"x": Span(1, 3)})}
        assert r.evaluate("ba") == {Mapping({"y": Span(1, 3)})}
        assert r.evaluate("aa") == set()

    def test_unmatched_head_is_vacuous(self):
        r = rule(char("a"), ("x", char("z")))
        # x never occurs in the root, so its (unsatisfiable-on-"a")
        # constraint never fires.
        assert r.evaluate("a") == {Mapping.empty()}

    def test_conjunction_of_constraints(self):
        # Σ*·x·Σ* ∧ x.R1 ∧ x.R2 — the same variable constrained twice
        # (a non-simple rule): x's content must match both.
        r = Rule(
            concat(ANY_STAR, bare("x"), ANY_STAR),
            (("x", parse("ab*")), ("x", parse("a*b"))),
        )
        result = r.evaluate("ab")
        assert Mapping({"x": Span(1, 3)}) in result
        spans = {m["x"] for m in result}
        assert Span(1, 2) not in spans  # "a" fails x.(a*b)

    def test_chained_instantiation(self):
        # doc → x → y: y's constraint applies only through x's match.
        r = rule(
            bare("x"),
            ("x", concat(char("a"), bare("y"))),
            ("y", parse("b*")),
        )
        assert r.evaluate("abb") == {
            Mapping({"x": Span(1, 4), "y": Span(2, 4)})
        }
        assert r.evaluate("aba") == set()

    def test_cyclic_rule_semantics(self):
        # x ∧ x.y ∧ y.x forces x = y (legal, cyclic).
        r = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        assert r.evaluate("ab") == {
            Mapping({"x": Span(1, 3), "y": Span(1, 3)})
        }

    def test_incompatible_shared_variable(self):
        # z must sit at the end of x and be the whole of y while x=whole:
        r = rule(
            concat(bare("x"), bare("y")),
            ("x", concat(char("a"), bare("z"))),
            ("y", bare("z")),
        )
        # x="a"+z, y=z: z at (2, j) and also y's whole span (j', 3)...
        # On "ab": x=(1,2) forces z=(2,2); y=(2,3) needs z=(2,3) — clash.
        assert r.evaluate("ab") == set()

    def test_empty_document(self):
        r = rule(bare("x"), ("x", ANY_STAR))
        assert r.evaluate("") == {Mapping({"x": Span(1, 1)})}


class TestTheorem46Incomparability:
    """Theorem 4.6: rules and RGX are incomparable."""

    def test_rules_define_non_hierarchical_mappings(self):
        # The paper's witness: x ∧ x.(a·y·a·a) ∧ x.(a·a·z·a) on "aaaaa"
        # makes y=(2,4) and z=(3,5) overlap non-hierarchically — no RGX
        # can produce such a mapping.
        r = Rule(
            bare("x"),
            (
                ("x", concat(char("a"), bare("y"), char("a"), char("a"))),
                ("x", concat(char("a"), char("a"), bare("z"), char("a"))),
            ),
        )
        result = r.evaluate("aaaaa")
        witness = Mapping(
            {"x": Span(1, 6), "y": Span(2, 4), "z": Span(3, 5)}
        )
        assert witness in result
        assert not witness.is_hierarchical()

    def test_rgx_disjunction_of_variables_beyond_rules(self):
        # γ = (a·x{b}) | (b·x{a}) — the paper proves no single extraction
        # rule captures it; here we record its two models.
        from repro.rgx.semantics import mappings

        expression = parse("a(x{b})|b(x{a})")
        assert mappings(expression, "ab") == {Mapping({"x": Span(2, 3)})}
        assert mappings(expression, "ba") == {Mapping({"x": Span(2, 3)})}
        assert mappings(expression, "aa") == set()
