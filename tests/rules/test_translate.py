"""Rule ↔ RGX translations (Props 4.8/4.9, Lemmas B.1/B.2, Theorem 4.10)."""

import pytest

from repro.rgx.ast import ANY_STAR, char, concat, union
from repro.rgx.parser import parse
from repro.rgx.properties import is_functional
from repro.rgx.semantics import mappings
from repro.rules.cycles import unsatisfiable_daglike_rule
from repro.rules.graph import is_dag_like, is_tree_like
from repro.rules.rule import Rule, bare, rule
from repro.rules.translate import (
    daglike_to_treelike,
    rgx_to_treelike_rules,
    to_functional_daglike,
    to_functional_rules,
    treelike_to_rgx,
    union_of_rules_to_rgx,
)
from repro.util.errors import RuleError

DOCS = ["", "a", "b", "c", "ab", "ba", "aa", "abc", "aab"]


def union_eval(rules, document, keep=None):
    result = set()
    for r in rules:
        for mapping in r.evaluate(document):
            result.add(mapping.project(keep) if keep is not None else mapping)
    return result


class TestProposition48:
    def test_paper_example_count(self):
        # (x|y) ∧ x.(a|b) ∧ y.c → four functional rules.
        r = rule(
            union(bare("x"), bare("y")),
            ("x", union(char("a"), char("b"))),
            ("y", char("c")),
        )
        functionals = to_functional_rules(r)
        assert len(functionals) == 4
        assert all(f.is_functional() for f in functionals)
        for document in DOCS:
            assert union_eval(functionals, document) == r.evaluate(document)

    def test_full_pipeline_to_daglike(self):
        r = rule(
            union(bare("x"), bare("y")),
            ("x", union(char("a"), char("b"))),
            ("y", char("c")),
        )
        dags = to_functional_daglike(r)
        assert all(is_dag_like(d) for d in dags)
        keep = r.variables()
        for document in DOCS:
            assert union_eval(dags, document, keep) == r.evaluate(document)

    def test_cyclic_rule_becomes_acyclic_union(self):
        r = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        dags = to_functional_daglike(r)
        assert all(is_dag_like(d) for d in dags)
        keep = r.variables()
        for document in DOCS:
            assert union_eval(dags, document, keep) == r.evaluate(document)

    def test_requires_simple(self):
        with pytest.raises(RuleError):
            to_functional_rules(
                Rule(bare("x"), (("x", ANY_STAR), ("x", ANY_STAR)))
            )


class TestProposition49:
    def test_paper_example(self):
        # (x·Σ*·y) ∧ x.(a·z·b*) ∧ y.(b*·z·a): satisfiable only by "aa"
        # with z pinned to the empty junction span.
        r = rule(
            concat(bare("x"), ANY_STAR, bare("y")),
            ("x", concat(char("a"), bare("z"), parse("b*"))),
            ("y", concat(parse("b*"), bare("z"), char("a"))),
            ("z", ANY_STAR),
        )
        trees = daglike_to_treelike(r)
        assert trees and all(is_tree_like(t) for t in trees)
        keep = r.variables()
        for document in DOCS:
            assert union_eval(trees, document, keep) == r.evaluate(document)

    def test_unsatisfiable_daglike_aborts_to_empty_union(self):
        assert daglike_to_treelike(unsatisfiable_daglike_rule()) == []

    def test_tree_like_input_passes_through(self):
        r = rule(bare("x"), ("x", concat(char("a"), bare("y"))), ("y", ANY_STAR))
        trees = daglike_to_treelike(r)
        assert trees
        for document in DOCS:
            assert union_eval(trees, document, r.variables()) == r.evaluate(
                document
            )

    def test_requires_daglike(self):
        cyclic = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        with pytest.raises(RuleError):
            daglike_to_treelike(cyclic)

    def test_outputs_are_functional(self):
        r = rule(
            concat(bare("u"), bare("v")),
            ("u", concat(bare("y"), parse("a*"))),
            ("v", concat(parse("b*"), bare("y"))),
            ("y", ANY_STAR),
        )
        for tree in daglike_to_treelike(r):
            assert all(
                is_functional(formula) for formula in tree.formulas()
            )


class TestLemmaB1:
    def test_paper_example(self):
        # (a·x·b·y) ∧ x.(abc·z) ∧ y.Σ* ∧ z.d → a·x{abc·z{d}}·b·y{Σ*}
        r = rule(
            concat(char("a"), bare("x"), char("b"), bare("y")),
            ("x", concat(parse("abc"), bare("z"))),
            ("y", ANY_STAR),
            ("z", char("d")),
        )
        expression = treelike_to_rgx(r)
        for document in ["aabcdbq", "aabcdb", "abcd", ""]:
            assert mappings(expression, document) == r.evaluate(document)

    def test_requires_tree_like(self):
        cyclic = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        with pytest.raises(RuleError):
            treelike_to_rgx(cyclic)

    def test_optional_branch_preserved(self):
        r = rule(
            bare("x"),
            ("x", union(concat(char("a"), bare("y")), char("b"))),
            ("y", parse("c*")),
        )
        expression = treelike_to_rgx(r)
        for document in ["a", "b", "ac", "acc", "c"]:
            assert mappings(expression, document) == r.evaluate(document)


class TestLemmaB2:
    CASES = ["x{a*}y{b*}", "a(x{y{b}c}|d)e*", "x{a}|b", "(x{a}|y{b})*"]

    @pytest.mark.parametrize("text", CASES)
    def test_rgx_to_treelike_union(self, text):
        expression = parse(text)
        rules = rgx_to_treelike_rules(expression)
        for document in DOCS + ["abce", "ade", "e"]:
            assert union_eval(rules, document) == mappings(
                expression, document
            ), (text, document)

    @pytest.mark.parametrize("text", CASES)
    def test_outputs_are_simple(self, text):
        for r in rgx_to_treelike_rules(parse(text)):
            assert r.is_simple()


class TestTheorem410:
    def test_round_trip_from_rules(self):
        r = rule(
            union(bare("x"), bare("y")),
            ("x", parse("ab*")),
            ("y", parse("ba*")),
        )
        expression = union_of_rules_to_rgx([r])
        keep = r.variables()
        for document in DOCS:
            projected = {
                m.project(keep) for m in mappings(expression, document)
            }
            assert projected == r.evaluate(document)

    def test_union_of_two_rules(self):
        first = rule(bare("x"), ("x", parse("a*")))
        second = rule(bare("y"), ("y", parse("b*")))
        expression = union_of_rules_to_rgx([first, second])
        keep = first.variables() | second.variables()
        for document in DOCS:
            expected = union_eval([first, second], document)
            projected = {
                m.project(keep) for m in mappings(expression, document)
            }
            assert projected == expected

    def test_unsatisfiable_union_is_none(self):
        assert union_of_rules_to_rgx([unsatisfiable_daglike_rule()]) is None
