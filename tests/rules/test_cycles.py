"""Cycle elimination (Theorem 4.7) — Figure 2's case analysis as tests."""

import pytest

from repro.rgx.ast import ANY_STAR, EPSILON, char, concat, star
from repro.rgx.parser import parse
from repro.rules.cycles import (
    auxiliary_variables,
    colour_nodes,
    nu,
    to_daglike,
    unsatisfiable_daglike_rule,
)
from repro.rules.graph import is_dag_like
from repro.rules.rule import Rule, bare, rule
from repro.util.errors import RuleError

DOCS = ["", "a", "b", "ab", "ba", "aa", "aab"]


def assert_equivalent(original: Rule, transformed: Rule) -> None:
    """Equivalence up to the auxiliary variables of the construction."""
    keep = original.variables()
    for document in DOCS:
        expected = original.evaluate(document)
        actual = {m.project(keep) for m in transformed.evaluate(document)}
        assert actual == expected, (document, expected, actual)


class TestNu:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a", None),                       # ν(a) = H
            ("ε", "ε"),
            ("x{.*}", "x{.*}"),                # ν(x) = x
            ("ab", None),                      # H · α = H
            ("a|ε", "ε"),                      # H ∨ α = α
            ("a*", "ε"),                       # ν(ϕ*) = ε
            ("x{.*}a|y{.*}", "y{.*}"),
            ("x{.*}y{.*}", "x{.*}y{.*}"),
            ("(a|b)(c|d)", None),
        ],
    )
    def test_nu_cases(self, text, expected):
        result = nu(parse(text))
        if expected is None:
            assert result is None
        else:
            assert result == parse(expected)


class TestColouring:
    def test_black_red_green(self):
        # x's formula needs a letter → black; doc-reachable ancestors that
        # can reach it → red; the rest green.
        r = rule(
            bare("u"),
            ("u", bare("x")),
            ("x", concat(char("a"), bare("y"))),
            ("y", ANY_STAR),
        )
        colours = colour_nodes(r.normalized())
        assert colours["x"] == "black"
        assert colours["u"] == "red"
        assert colours["y"] == "green"


class TestCanonicalUnsat:
    def test_unsat_rule_is_functional_daglike(self):
        r = unsatisfiable_daglike_rule()
        assert r.is_functional()
        assert is_dag_like(r)

    @pytest.mark.parametrize("document", ["", "ab", "ba", "aabb", "abab"])
    def test_unsat_rule_has_no_models(self, document):
        assert unsatisfiable_daglike_rule().evaluate(document) == set()


class TestToDaglike:
    def test_paper_example(self):
        # x ∧ x.y ∧ y.z ∧ z.(u·x)  →  w.x ∧ x.y ∧ y.z ∧ z.(u·Σ*) ∧ u.ε
        r = rule(
            bare("x"),
            ("x", bare("y")),
            ("y", bare("z")),
            ("z", concat(bare("u"), bare("x"))),
        )
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)
        # u is forced to the empty content, as the paper derives.
        formula_of = dict(transformed.conjuncts)
        assert formula_of["u"] == EPSILON

    def test_green_two_cycle(self):
        r = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)

    def test_self_loop(self):
        r = rule(bare("x"), ("x", bare("x")))
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)

    def test_red_cycle_unsatisfiable(self):
        # Figure 2(a) with a letter: content must strictly grow → unsat.
        r = rule(
            bare("x"),
            ("x", concat(char("a"), bare("y"))),
            ("y", bare("x")),
        )
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        for document in DOCS:
            assert transformed.evaluate(document) == set()

    def test_paper_unsat_example(self):
        # x ∧ x.y ∧ y.(a·x): "clearly not satisfiable" (§4.3).
        r = rule(bare("x"), ("x", bare("y")), ("y", concat(char("a"), bare("x"))))
        transformed = to_daglike(r)
        for document in DOCS:
            assert transformed.evaluate(document) == set()

    def test_cycle_with_reachable_node(self):
        # Figure 2(b): w hangs off the cycle — forced to ε.
        r = rule(
            bare("x"),
            ("x", concat(bare("y"), bare("w"))),
            ("y", bare("x")),
            ("w", ANY_STAR),
        )
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)

    def test_chorded_component(self):
        # Figure 2(c): a chord forces empty content on the members.
        r = rule(
            bare("x"),
            ("x", concat(bare("y"), bare("z"))),
            ("y", bare("x")),
            ("z", bare("x")),
        )
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)

    def test_requires_simple(self):
        with pytest.raises(RuleError):
            to_daglike(Rule(bare("x"), (("x", ANY_STAR), ("x", ANY_STAR))))

    def test_requires_functional(self):
        with pytest.raises(RuleError):
            to_daglike(rule(bare("x"), ("x", star(bare("y")))))

    def test_acyclic_input_unchanged_semantically(self):
        r = rule(bare("x"), ("x", concat(char("a"), bare("y"))), ("y", ANY_STAR))
        transformed = to_daglike(r)
        assert is_dag_like(transformed)
        assert_equivalent(r, transformed)
        assert auxiliary_variables(r, transformed) == frozenset()

    def test_polynomial_time_scaling(self):
        # Theorem 4.7 promises polynomial time; long cycles must not blow up.
        import time

        durations = []
        for size in (6, 12, 24):
            heads = [f"v{i}" for i in range(size)]
            conjuncts = tuple(
                (heads[i], bare(heads[(i + 1) % size])) for i in range(size)
            )
            r = Rule(bare(heads[0]), conjuncts)
            started = time.perf_counter()
            transformed = to_daglike(r)
            durations.append(time.perf_counter() - started)
            assert is_dag_like(transformed)
        assert durations[-1] < 2.0
