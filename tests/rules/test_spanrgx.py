"""spanRGX path decomposition (the engine of Propositions 4.8/4.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rgx.ast import char, concat, star, union, var
from repro.rgx.parser import parse
from repro.rgx.properties import is_functional, is_span_rgx
from repro.rgx.semantics import mappings
from repro.rules.spanrgx import PathForm, functional_decomposition, path_disjuncts
from repro.util.errors import RuleError


def union_semantics(disjuncts, document):
    result = set()
    for disjunct in disjuncts:
        result |= mappings(disjunct, document)
    return result


class TestPathForms:
    def test_single_variable(self):
        forms = path_disjuncts(var("x"))
        assert len(forms) == 1
        assert forms[0].variables == ("x",)

    def test_concatenation(self):
        forms = path_disjuncts(concat(char("a"), var("x"), char("b"), var("y")))
        assert len(forms) == 1
        assert forms[0].variables == ("x", "y")

    def test_union_of_variables(self):
        forms = path_disjuncts(union(var("x"), var("y")))
        assert {form.variables for form in forms} == {("x",), ("y",)}

    def test_paper_example_shape(self):
        # (x|y)(z|w) ≡ x·z | x·w | y·z | y·w
        expression = concat(union(var("x"), var("y")), union(var("z"), var("w")))
        forms = path_disjuncts(expression)
        assert {form.variables for form in forms} == {
            ("x", "z"), ("x", "w"), ("y", "z"), ("y", "w"),
        }

    def test_repeated_variable_branch_dropped(self):
        # x·x can never produce a mapping: no path form survives.
        assert path_disjuncts(concat(var("x"), var("x"))) == []

    def test_star_unrolling(self):
        forms = path_disjuncts(star(union(var("x"), char("a"))))
        variable_sets = {form.variables for form in forms}
        assert () in variable_sets and ("x",) in variable_sets

    def test_star_two_variables_all_orders(self):
        forms = path_disjuncts(star(union(var("x"), var("y"))))
        orders = {form.variables for form in forms}
        assert ("x", "y") in orders and ("y", "x") in orders

    def test_rejects_non_spanrgx(self):
        with pytest.raises(RuleError):
            path_disjuncts(parse("x{a*}"))

    def test_malformed_path_form_rejected(self):
        with pytest.raises(RuleError):
            PathForm((char("a"),), ("x",))


class TestEquivalence:
    CASES = [
        "x{.*}a|b",
        "(x{.*}|y{.*})*",
        "a*x{.*}b*",
        "(x{.*}(a|b))*",
        "x{.*}(y{.*}|ε)c*",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_union_of_forms_equivalent(self, text):
        expression = parse(text)
        disjuncts = functional_decomposition(expression)
        for document in ["", "a", "b", "ab", "ba", "abc", "cc"]:
            assert union_semantics(disjuncts, document) == mappings(
                expression, document
            ), (text, document)

    @pytest.mark.parametrize("text", CASES)
    def test_disjuncts_are_functional_spanrgx(self, text):
        for disjunct in functional_decomposition(parse(text)):
            assert is_functional(disjunct), disjunct
            assert is_span_rgx(disjunct), disjunct

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_random_spanrgx_decomposition(self, seed):
        from repro.rgx.ast import map_expression, Rgx, VarBind, ANY_STAR
        from repro.workloads.expressions import random_rgx

        raw = random_rgx(8, seed)

        def to_span(node: Rgx) -> Rgx:
            if isinstance(node, VarBind):
                return VarBind(node.variable, ANY_STAR)
            return node

        expression = map_expression(raw, to_span)
        disjuncts = functional_decomposition(expression)
        for document in ["", "a", "ab"]:
            assert union_semantics(disjuncts, document) == mappings(
                expression, document
            )
