"""Randomised checks of the full rule-translation pipeline (§4.3).

Random simple rules (spanRGX formulas, possibly cyclic, possibly
disjunctive) through Propositions 4.8/4.9 and Theorem 4.10, compared with
the reference rule semantics on probe documents, projecting away the
auxiliary variables the constructions introduce.
"""

import random

import pytest

from repro.rgx.ast import ANY_STAR, Rgx, VarBind, concat, map_expression
from repro.rules.graph import is_dag_like, is_tree_like
from repro.rules.rule import Rule, bare
from repro.rules.translate import (
    daglike_to_treelike,
    to_functional_daglike,
    union_of_rules_to_rgx,
)
from repro.workloads.expressions import random_rgx

PROBES = ["", "a", "b", "ab", "ba", "aa", "aab"]


def random_spanrgx(size: int, seed: int, variables) -> Rgx:
    raw = random_rgx(size, seed, variables=tuple(variables))

    def flatten(node: Rgx) -> Rgx:
        if isinstance(node, VarBind):
            return VarBind(node.variable, ANY_STAR)
        return node

    return map_expression(raw, flatten)


def random_simple_rule(seed: int) -> Rule:
    rng = random.Random(seed)
    heads = ["x", "y", "z"][: rng.randint(1, 3)]
    root = random_spanrgx(rng.randint(2, 6), seed * 3 + 1, heads)
    if not (root.variables() & set(heads)):
        root = concat(bare(heads[0]), root)
    conjuncts = []
    for index, head in enumerate(heads):
        allowed = [h for h in heads if h != head][: rng.randint(0, 2)]
        formula = random_spanrgx(rng.randint(2, 5), seed * 7 + index, allowed)
        conjuncts.append((head, formula))
    return Rule(root, tuple(conjuncts))


def union_eval(rules, document, keep):
    produced = set()
    for rule in rules:
        produced |= {m.project(keep) for m in rule.evaluate(document)}
    return produced


@pytest.mark.parametrize("seed", range(20))
def test_prop_48_random_rules(seed):
    rule = random_simple_rule(seed)
    if not rule.is_simple():
        pytest.skip("generator made a non-simple rule")
    dags = to_functional_daglike(rule)
    assert all(is_dag_like(d) for d in dags)
    keep = rule.variables()
    for document in PROBES:
        assert union_eval(dags, document, keep) == rule.evaluate(document), (
            str(rule),
            document,
        )


@pytest.mark.parametrize("seed", range(20))
def test_prop_49_random_daglike(seed):
    rule = random_simple_rule(seed + 400)
    dags = to_functional_daglike(rule)
    keep = rule.variables()
    trees = []
    for dag in dags:
        for tree in daglike_to_treelike(dag):
            assert is_tree_like(tree)
            trees.append(tree)
    for document in PROBES:
        assert union_eval(trees, document, keep) == rule.evaluate(document), (
            str(rule),
            document,
        )


@pytest.mark.parametrize("seed", range(12))
def test_theorem_410_random_rules(seed):
    from repro.rgx.semantics import mappings

    rule = random_simple_rule(seed + 900)
    expression = union_of_rules_to_rgx([rule])
    keep = rule.variables()
    for document in PROBES:
        expected = rule.evaluate(document)
        if expression is None:
            assert expected == set(), (str(rule), document)
        else:
            produced = {
                m.project(keep) for m in mappings(expression, document)
            }
            assert produced == expected, (str(rule), document)


class TestVastkAlgebra:
    """Theorem 4.5's other half: VAstk closed under the algebra, into VA."""

    def test_union_and_join(self):
        from repro.automata.algebra import join_vastk, union_vastk
        from repro.automata.simulate import evaluate_va
        from repro.automata.thompson import to_vastk
        from repro.rgx.parser import parse
        from repro.rgx.semantics import mappings as rgx_mappings
        from repro.spans.mapping import join as semantic_join

        first = to_vastk(parse("x{a*}y{b*}"))
        second = to_vastk(parse("x{a*}.*"))
        e1, e2 = parse("x{a*}y{b*}"), parse("x{a*}.*")
        for document in PROBES:
            m1, m2 = rgx_mappings(e1, document), rgx_mappings(e2, document)
            assert evaluate_va(union_vastk(first, second), document) == m1 | m2
            assert evaluate_va(join_vastk(first, second), document) == (
                semantic_join(m1, m2)
            )

    def test_projection(self):
        from repro.automata.algebra import project_vastk
        from repro.automata.simulate import evaluate_va
        from repro.automata.thompson import to_vastk
        from repro.rgx.parser import parse
        from repro.rgx.semantics import mappings as rgx_mappings

        expression = parse("x{ay{b}}c*")
        automaton = to_vastk(expression)
        projected = project_vastk(automaton, {"y"})
        for document in PROBES + ["abc"]:
            expected = {
                m.project({"y"}) for m in rgx_mappings(expression, document)
            }
            assert evaluate_va(projected, document) == expected
