"""Rule graphs and the dag-like / tree-like hierarchy (Section 4.3)."""

from repro.rgx.ast import ANY_STAR, char, concat, union
from repro.rules.graph import (
    DOC,
    is_dag_like,
    is_tree_like,
    prune_unreachable,
    reachable_heads,
    rule_graph,
)
from repro.rules.rule import Rule, bare, rule


def chain_rule() -> Rule:
    return rule(
        bare("x"),
        ("x", concat(char("a"), bare("y"))),
        ("y", ANY_STAR),
    )


class TestGraph:
    def test_doc_edges(self):
        graph = rule_graph(chain_rule())
        assert graph[DOC] == {"x"}
        assert graph["x"] == {"y"}
        assert graph["y"] == set()

    def test_non_head_occurrences_are_not_nodes(self):
        r = rule(bare("x"), ("x", concat(bare("free"), char("a"))))
        graph = rule_graph(r)
        assert "free" not in graph
        assert graph["x"] == set()


class TestClassification:
    def test_chain_is_tree_like(self):
        assert is_tree_like(chain_rule())
        assert is_dag_like(chain_rule())

    def test_cycle_is_not_dag_like(self):
        r = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        assert not is_dag_like(r)
        assert not is_tree_like(r)

    def test_self_loop_is_not_dag_like(self):
        r = rule(bare("x"), ("x", concat(char("a"), bare("x"))))
        assert not is_dag_like(r)

    def test_shared_child_is_dag_not_tree(self):
        r = rule(
            concat(bare("u"), bare("v")),
            ("u", concat(bare("y"), char("a"))),
            ("v", concat(bare("y"), char("b"))),
            ("y", ANY_STAR),
        )
        assert is_dag_like(r)
        assert not is_tree_like(r)

    def test_non_simple_is_neither(self):
        r = Rule(bare("x"), (("x", ANY_STAR), ("x", char("a"))))
        assert not is_dag_like(r)
        assert not is_tree_like(r)

    def test_unreachable_head_breaks_tree_likeness(self):
        r = rule(bare("x"), ("x", ANY_STAR), ("orphan", char("a")))
        assert is_dag_like(r)
        assert not is_tree_like(r)

    def test_two_mentions_same_formula_still_tree_like(self):
        # y in two union branches of one conjunct: a single graph edge.
        r = rule(
            bare("x"),
            ("x", union(concat(char("a"), bare("y")), bare("y"))),
            ("y", ANY_STAR),
        )
        assert is_tree_like(r)


class TestReachability:
    def test_reachable_heads(self):
        r = rule(bare("x"), ("x", bare("y")), ("y", ANY_STAR), ("orphan", char("a")))
        assert reachable_heads(r) == {"x", "y"}

    def test_prune_unreachable_preserves_semantics(self):
        r = rule(bare("x"), ("x", ANY_STAR), ("orphan", char("z")))
        pruned = prune_unreachable(r)
        assert set(pruned.heads) == {"x"}
        for document in ["", "a", "zz"]:
            assert pruned.evaluate(document) == r.evaluate(document)

    def test_prune_noop_when_all_reachable(self):
        r = chain_rule()
        assert prune_unreachable(r) is r
