"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import run


def lines(capsys):
    return [
        line for line in capsys.readouterr().out.splitlines() if line.strip()
    ]


class TestExtraction:
    def test_extract_from_stdin(self, capsys):
        code = run([".*x{a+}.*"], stdin="baab")
        assert code == 0
        records = [json.loads(line) for line in lines(capsys)]
        assert {"x": "aa"} in records

    def test_extract_from_file(self, tmp_path, capsys):
        path = tmp_path / "doc.txt"
        path.write_text("Seller: John, ID75\n")
        code = run([".*Seller: x{[^,\n]*},.*", str(path)])
        assert code == 0
        assert json.loads(lines(capsys)[0]) == {"x": "John"}

    def test_spans_mode(self, capsys):
        run(["x{a}b", "--spans"], stdin="ab")
        assert json.loads(lines(capsys)[0]) == {"x": [1, 2]}

    def test_optional_fields_missing_keys(self, capsys):
        run(["x{a}(y{b}|ε)c*"], stdin="ac")
        assert json.loads(lines(capsys)[0]) == {"x": "a"}

    def test_count_mode(self, capsys):
        run([".*x{a}.*", "--count"], stdin="aaa")
        assert lines(capsys) == ["3"]

    def test_no_matches_prints_nothing(self, capsys):
        code = run(["x{z}"], stdin="ab")
        assert code == 0
        assert lines(capsys) == []

    def test_seed_engine_agrees(self, capsys):
        run([".*x{a+}.*", "--engine", "seed"], stdin="baab")
        seed_records = [json.loads(line) for line in lines(capsys)]
        run([".*x{a+}.*", "--engine", "compiled"], stdin="baab")
        compiled_records = [json.loads(line) for line in lines(capsys)]
        assert seed_records == compiled_records


class TestBatchMode:
    def test_multiple_files_tag_records(self, tmp_path, capsys):
        first = tmp_path / "one.txt"
        second = tmp_path / "two.txt"
        first.write_text("Seller: John, ID75\n")
        second.write_text("Seller: Mark, ID7\n")
        code = run(
            [".*Seller: x{[^,\n]*},.*", str(first), str(second)]
        )
        assert code == 0
        records = [json.loads(line) for line in lines(capsys)]
        assert {"x": "John", "_file": str(first)} in records
        assert {"x": "Mark", "_file": str(second)} in records

    def test_single_file_keeps_plain_format(self, tmp_path, capsys):
        path = tmp_path / "doc.txt"
        path.write_text("Seller: John, ID75\n")
        run([".*Seller: x{[^,\n]*},.*", str(path)])
        assert json.loads(lines(capsys)[0]) == {"x": "John"}

    def test_count_sums_over_files(self, tmp_path, capsys):
        first = tmp_path / "one.txt"
        second = tmp_path / "two.txt"
        first.write_text("aa")
        second.write_text("a")
        run([".*x{a}.*", str(first), str(second), "--count"])
        assert lines(capsys) == ["3"]


class TestCorpusFlags:
    PATTERN = ".*Seller: x{[^,\n]*},.*"

    def _write(self, tmp_path):
        first = tmp_path / "one.csv"
        second = tmp_path / "two.csv"
        first.write_text("Seller: John, ID75\n")
        second.write_text("Seller: Mark, ID7\n")
        return first, second

    def test_glob_expands_sorted(self, tmp_path, capsys):
        self._write(tmp_path)
        code = run([self.PATTERN, "--glob", str(tmp_path / "*.csv")])
        assert code == 0
        records = [json.loads(line) for line in lines(capsys)]
        assert [r["x"] for r in records] == ["John", "Mark"]
        assert records[0]["_file"].endswith("one.csv")

    def test_glob_deduplicates_against_files(self, tmp_path, capsys):
        first, _ = self._write(tmp_path)
        run([self.PATTERN, str(first), "--glob", str(tmp_path / "*.csv")])
        records = [json.loads(line) for line in lines(capsys)]
        assert sum(r["x"] == "John" for r in records) == 1

    def test_workers_output_identical_to_serial(self, tmp_path, capsys):
        first, second = self._write(tmp_path)
        run([self.PATTERN, str(first), str(second)])
        serial = lines(capsys)
        run([self.PATTERN, str(first), str(second), "--workers", "2"])
        assert lines(capsys) == serial

    def test_ndjson_groups_per_document(self, tmp_path, capsys):
        first, second = self._write(tmp_path)
        code = run([self.PATTERN, str(first), str(second), "--ndjson"])
        assert code == 0
        records = [json.loads(line) for line in lines(capsys)]
        assert [r["doc"] for r in records] == [str(first), str(second)]
        assert records[0]["mappings"] == [{"x": "John"}]
        assert records[0]["error"] is None

    def test_ndjson_reports_unreadable_file(self, tmp_path, capsys):
        first, _ = self._write(tmp_path)
        missing = tmp_path / "absent.csv"
        code = run([self.PATTERN, str(first), str(missing), "--ndjson"])
        assert code == 0  # errors are records, not aborts
        records = [json.loads(line) for line in lines(capsys)]
        by_doc = {r["doc"]: r for r in records}
        assert by_doc[str(first)]["error"] is None
        assert by_doc[str(missing)]["mappings"] is None
        assert by_doc[str(missing)]["error"]

    def test_ndjson_from_stdin(self, capsys):
        run([".*x{a+}.*", "--ndjson"], stdin="ba")
        record = json.loads(lines(capsys)[0])
        assert record == {"doc": "<stdin>", "error": None, "mappings": [{"x": "a"}]}

    def test_count_sums_with_workers(self, tmp_path, capsys):
        first, second = self._write(tmp_path)
        run([self.PATTERN, str(first), str(second), "--count", "--workers", "2"])
        assert lines(capsys) == ["2"]

    def test_spans_mode_through_service(self, tmp_path, capsys):
        first, _ = self._write(tmp_path)
        run([self.PATTERN, str(first), "--spans"])
        record = json.loads(lines(capsys)[0])
        assert record == {"x": [9, 13]}


class TestCheckMode:
    def test_satisfiable_pattern(self, capsys):
        code = run(["x{ab}c", "--check"])
        assert code == 0
        output = "\n".join(lines(capsys))
        assert "satisfiable:  True" in output
        assert "witness:" in output
        assert "sequential:   True" in output

    def test_unsatisfiable_pattern(self, capsys):
        run(["x{a}x{b}", "--check"])
        output = "\n".join(lines(capsys))
        assert "satisfiable:  False" in output
        assert "witness" not in output


class TestVersion:
    def test_version_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert output.startswith("repro ")
        from repro import __version__

        assert __version__ in output


class TestPlannerFlags:
    def test_explain_prints_pass_log(self, capsys):
        code = run([".*x{a+}.*", "--explain"])
        assert code == 0
        output = "\n".join(lines(capsys))
        assert "opt level 1" in output
        for name in ("eliminate-epsilon", "trim", "fuse-predicates", "sequentialize"):
            assert name in output
        assert "states" in output and "result:" in output

    def test_explain_respects_opt_level(self, capsys):
        run([".*x{a+}.*", "--explain", "--opt-level", "2"])
        output = "\n".join(lines(capsys))
        assert "opt level 2" in output
        assert "determinize" in output
        run([".*x{a+}.*", "--explain", "--opt-level", "0"])
        assert "passes: none" in "\n".join(lines(capsys))

    def test_opt_levels_produce_identical_output(self, capsys):
        outputs = []
        for level in ("0", "1", "2"):
            assert run([".*x{a+}.*", "--opt-level", level], stdin="baab") == 0
            outputs.append(lines(capsys))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_invalid_opt_level_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["x{a}", "--opt-level", "3"], stdin="a")
        assert excinfo.value.code == 2


class TestWorkersValidation:
    @pytest.mark.parametrize("value", ["0", "-1", "-4"])
    def test_non_positive_workers_is_an_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["x{a}", "--workers", value], stdin="a")
        assert excinfo.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    def test_non_integer_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["x{a}", "--workers", "two"], stdin="a")
        assert excinfo.value.code == 2

    def test_workers_one_still_accepted(self, capsys):
        assert run(["x{a}", "--workers", "1"], stdin="a") == 0


class TestErrors:
    def test_parse_error_exit_code(self, capsys):
        assert run(["(((", "--check"]) == 2
        assert "error" in capsys.readouterr().err

    def test_seed_engine_rejects_service_flags(self, capsys):
        assert run(["x{a}", "--engine", "seed", "--workers", "2"]) == 2
        assert "--engine seed" in capsys.readouterr().err
        assert run(["x{a}", "--engine", "seed", "--ndjson"]) == 2
        assert "--engine seed" in capsys.readouterr().err

    def test_count_rejects_ndjson(self, capsys):
        assert run(["x{a}", "--count", "--ndjson"]) == 2
        assert "--count" in capsys.readouterr().err


class TestStatsFlag:
    def test_stats_prints_counters_to_stderr(self, capsys):
        code = run([".*x{a+}.*", "--stats"], stdin="baa")
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.splitlines()[0]) == {"x": "a"}
        stats_lines = [
            line for line in captured.err.splitlines() if line.startswith("stats:")
        ]
        assert any("kernel" in line and "classes=" in line for line in stats_lines)
        assert any("engine" in line and "index_misses=" in line for line in stats_lines)
        assert any("spanner-cache" in line and "hits=" in line for line in stats_lines)

    def test_stats_counts_the_engine_that_did_the_work(self, capsys):
        # A pattern no other test compiles: its cache entry (and the
        # engine's counters) are born in this very run.
        run([".*stats_q{a+}_flag.*", "--stats"], stdin="xstats_aa_flagx")
        err = capsys.readouterr().err
        engine_line = next(
            line for line in err.splitlines() if line.startswith("stats: engine")
        )
        # The run evaluated one document through this very engine.
        assert "index_misses=1" in engine_line

    def test_stats_merges_worker_counters(self, tmp_path, capsys):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_text("ba")
        second.write_text("aa")
        code = run(
            [".*x{a+}.*", str(first), str(second), "--workers", "2", "--stats"]
        )
        assert code == 0
        err = capsys.readouterr().err
        # Worker-side counters come back through the pool and are merged
        # into the report, so the kernel line reflects real work even
        # though every document ran in another process.
        assert "merged counters from" in err
        assert "worker process(es)" in err
        kernel_line = next(
            line for line in err.splitlines() if line.startswith("stats: kernel")
        )
        assert "contexts=0" not in kernel_line

    def test_stats_rejected_with_seed_engine(self, capsys):
        assert run(["x{a}", "--engine", "seed", "--stats"]) == 2
        assert "--stats" in capsys.readouterr().err


class TestServeDispatch:
    def test_serve_help_mentions_endpoints(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "/evaluate" in capsys.readouterr().out

    def test_serve_rejects_bad_port(self, capsys):
        assert run(["serve", "--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_serve_parser_defaults_match_server_config(self):
        from repro.cli import build_serve_parser
        from repro.server import ServerConfig

        defaults = build_serve_parser().parse_args([])
        config = ServerConfig()
        assert defaults.host == config.host
        assert defaults.port == config.port
        assert defaults.workers == config.workers
        assert defaults.batch_size == config.batch_max_size
        assert defaults.batch_delay == config.batch_max_delay
        assert defaults.max_pending == config.max_pending
        assert defaults.drain_grace == config.drain_grace
        assert defaults.task_timeout == config.task_timeout
        assert defaults.max_rebuilds == config.max_rebuilds
        assert defaults.degraded_reset == config.degraded_reset

    def test_serve_pattern_still_usable_as_pattern(self, capsys):
        # Only the *first* argument dispatches to serving; a pattern named
        # "serve" elsewhere keeps working.
        assert run(["x{serve}", "--count"], stdin="serve") == 0
        assert lines(capsys) == ["1"]


class TestDurationFlagValidation:
    """Timeout-ish knobs reject zero/negative at the argparse layer."""

    @pytest.mark.parametrize("value", ["0", "-1", "soon"])
    def test_task_timeout_must_be_positive(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["x{a}", "--task-timeout", value], stdin="a")
        assert excinfo.value.code == 2

    def test_task_timeout_accepted_on_run(self, capsys):
        assert run(["x{a}", "--task-timeout", "5"], stdin="a") == 0
        assert run(
            ["x{a}", "--task-timeout", "5", "--workers", "2"], stdin="a"
        ) == 0

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--drain-grace", "0"),
            ("--drain-grace", "-1"),
            ("--task-timeout", "0"),
            ("--task-timeout", "-0.5"),
            ("--batch-delay", "-0.001"),
            ("--degraded-reset", "0"),
            ("--max-rebuilds", "-1"),
        ],
    )
    def test_serve_rejects_bad_durations(self, flag, value, capsys):
        from repro.cli import build_serve_parser

        with pytest.raises(SystemExit) as excinfo:
            build_serve_parser().parse_args([flag, value])
        assert excinfo.value.code == 2

    def test_serve_accepts_zero_batch_delay(self):
        from repro.cli import build_serve_parser

        arguments = build_serve_parser().parse_args(["--batch-delay", "0"])
        assert arguments.batch_delay == 0.0


class TestStatsResilienceLine:
    def test_parallel_stats_include_resilience(self, tmp_path, capsys):
        target = tmp_path / "a.txt"
        target.write_text("baa")
        code = run([".*x{a+}.*", str(target), "--workers", "2", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        resilience_line = next(
            (
                line
                for line in err.splitlines()
                if line.startswith("stats: resilience")
            ),
            None,
        )
        assert resilience_line is not None
        assert "restarts=0" in resilience_line
        assert "failed=False" in resilience_line
