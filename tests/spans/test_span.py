"""Unit and property tests for spans (paper, Section 2)."""

import pytest
from hypothesis import given

from repro.spans.span import Span, all_spans, spans_with_content
from repro.util.errors import SpanError
from tests.strategies import spans


class TestPaperConventions:
    """The worked example of Section 2 must hold verbatim."""

    DOCUMENT = "Information extraction"

    def test_document_length(self):
        assert len(self.DOCUMENT) == 22

    def test_whole_document_span(self):
        assert Span(1, 23).content(self.DOCUMENT) == "Information extraction"

    def test_first_word(self):
        assert Span(1, 12).content(self.DOCUMENT) == "Information"

    def test_second_word(self):
        assert Span(13, 23).content(self.DOCUMENT) == "extraction"

    def test_empty_span_content(self):
        assert Span(5, 5).content(self.DOCUMENT) == ""

    def test_span_count_formula(self):
        # |span(d)| = (n+1)(n+2)/2 for |d| = n.
        for n in range(0, 7):
            assert len(all_spans(n)) == (n + 1) * (n + 2) // 2


class TestValidation:
    def test_rejects_zero_begin(self):
        with pytest.raises(SpanError):
            Span(0, 1).validate()

    def test_rejects_inverted(self):
        with pytest.raises(SpanError):
            Span(3, 2).validate()

    def test_rejects_past_end(self):
        with pytest.raises(SpanError):
            Span(1, 5).content("ab")

    def test_boundary_is_allowed(self):
        assert Span(3, 3).content("ab") == ""


class TestConcatenation:
    def test_adjacent(self):
        assert Span(1, 3).concatenate(Span(3, 5)) == Span(1, 5)

    def test_not_adjacent_raises(self):
        with pytest.raises(SpanError):
            Span(1, 3).concatenate(Span(4, 5))

    def test_empty_is_neutral(self):
        assert Span(2, 2).concatenate(Span(2, 6)) == Span(2, 6)
        assert Span(2, 6).concatenate(Span(6, 6)) == Span(2, 6)


class TestPredicates:
    def test_contains(self):
        assert Span(1, 10).contains(Span(3, 5))
        assert Span(1, 10).contains(Span(1, 10))
        assert not Span(3, 5).contains(Span(1, 10))

    def test_disjoint_touching(self):
        assert Span(1, 3).disjoint(Span(3, 5))
        assert not Span(1, 4).disjoint(Span(3, 5))

    def test_point_disjoint_is_stronger(self):
        touching = (Span(1, 3), Span(3, 5))
        assert touching[0].disjoint(touching[1])
        assert not touching[0].point_disjoint(touching[1])
        assert Span(1, 2).point_disjoint(Span(3, 4))

    def test_hierarchical_overlap(self):
        assert Span(1, 5).overlaps_hierarchically(Span(2, 3))
        assert Span(1, 3).overlaps_hierarchically(Span(3, 6))
        assert not Span(1, 4).overlaps_hierarchically(Span(2, 6))

    @given(spans(), spans())
    def test_disjoint_symmetry(self, first, second):
        assert first.disjoint(second) == second.disjoint(first)

    @given(spans(), spans())
    def test_point_disjoint_symmetry(self, first, second):
        assert first.point_disjoint(second) == second.point_disjoint(first)

    @given(spans(), spans())
    def test_point_disjoint_spans_never_touch(self, first, second):
        if first.point_disjoint(second):
            assert first.end != second.begin
            assert second.end != first.begin
            assert first.begin != second.begin
            assert first.end != second.end


class TestHelpers:
    def test_spans_with_content(self):
        assert spans_with_content("abab", "ab") == [Span(1, 3), Span(3, 5)]

    def test_spans_with_empty_content(self):
        assert spans_with_content("ab", "") == [Span(1, 1), Span(2, 2), Span(3, 3)]

    def test_overlapping_occurrences(self):
        assert spans_with_content("aaa", "aa") == [Span(1, 3), Span(2, 4)]

    def test_shift(self):
        assert Span(2, 4).shift(3) == Span(5, 7)

    @given(spans())
    def test_length_nonnegative(self, span):
        assert span.length >= 0
        assert span.is_empty() == (span.length == 0)
