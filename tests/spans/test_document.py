"""Tests for the Document wrapper."""

import pytest
from hypothesis import given

from repro.spans.document import Document, as_text
from repro.spans.span import Span
from repro.util.errors import SpanError
from tests.strategies import documents


class TestDocument:
    def test_length_and_text(self):
        doc = Document("abc")
        assert len(doc) == 3
        assert doc.text == "abc"
        assert str(doc) == "abc"

    def test_equality_with_strings(self):
        assert Document("abc") == "abc"
        assert Document("abc") == Document("abc")
        assert Document("abc") != Document("abd")

    def test_getitem_by_span(self):
        doc = Document("Information extraction")
        assert doc[Span(1, 12)] == "Information"

    def test_letter_is_one_based(self):
        doc = Document("abc")
        assert doc.letter(1) == "a"
        assert doc.letter(3) == "c"
        with pytest.raises(SpanError):
            doc.letter(4)
        with pytest.raises(SpanError):
            doc.letter(0)

    def test_positions(self):
        assert list(Document("ab").positions) == [1, 2, 3]

    def test_whole(self):
        assert Document("abc").whole() == Span(1, 4)
        assert Document("").whole() == Span(1, 1)

    def test_alphabet(self):
        assert Document("abab").alphabet() == frozenset("ab")

    def test_as_text(self):
        assert as_text("raw") == "raw"
        assert as_text(Document("wrapped")) == "wrapped"

    @given(documents())
    def test_spans_matches_iter_spans(self, text):
        doc = Document(text)
        assert doc.spans() == list(doc.iter_spans())

    @given(documents())
    def test_every_span_content_is_substring(self, text):
        doc = Document(text)
        for span in doc.iter_spans():
            assert doc[span] in text or doc[span] == ""

    def test_hash_consistency(self):
        assert hash(Document("x")) == hash(Document("x"))
        assert len({Document("x"), Document("x")}) == 1
