"""Unit and property tests for mappings — the paper's central object."""

import pytest
from hypothesis import given

from repro.spans.mapping import (
    NULL,
    ExtendedMapping,
    Mapping,
    all_total_mappings,
    join,
    join_all,
)
from repro.spans.span import Span
from repro.util.errors import MappingError
from tests.strategies import mappings_over


class TestBasics:
    def test_empty_mapping(self):
        assert Mapping.empty().domain == frozenset()
        assert len(Mapping.empty()) == 0

    def test_singleton(self):
        mu = Mapping.singleton("x", Span(1, 12))
        assert mu.domain == {"x"}
        assert mu["x"] == Span(1, 12)

    def test_undefined_variable_raises(self):
        with pytest.raises(MappingError):
            Mapping.empty()["x"]

    def test_get_returns_none(self):
        assert Mapping.empty().get("x") is None

    def test_rejects_non_span_values(self):
        with pytest.raises(MappingError):
            Mapping({"x": (1, 2)})  # a raw tuple is not a Span

    def test_hashable_and_equal(self):
        first = Mapping({"x": Span(1, 2), "y": Span(3, 3)})
        second = Mapping({"y": Span(3, 3), "x": Span(1, 2)})
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1


class TestCompatibility:
    def test_disjoint_domains_compatible(self):
        assert Mapping({"x": Span(1, 2)}).compatible(Mapping({"y": Span(1, 2)}))

    def test_agreeing_overlap_compatible(self):
        a = Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        b = Mapping({"x": Span(1, 2), "z": Span(1, 1)})
        assert a.compatible(b)

    def test_disagreeing_overlap_incompatible(self):
        a = Mapping({"x": Span(1, 2)})
        b = Mapping({"x": Span(1, 3)})
        assert not a.compatible(b)

    @given(mappings_over(), mappings_over())
    def test_compatibility_symmetric(self, a, b):
        assert a.compatible(b) == b.compatible(a)

    @given(mappings_over())
    def test_empty_compatible_with_everything(self, mu):
        assert Mapping.empty().compatible(mu)


class TestUnion:
    def test_union_extends(self):
        a = Mapping({"x": Span(1, 2)})
        b = Mapping({"y": Span(2, 3)})
        assert a.union(b) == Mapping({"x": Span(1, 2), "y": Span(2, 3)})

    def test_union_incompatible_raises(self):
        with pytest.raises(MappingError):
            Mapping({"x": Span(1, 2)}).union(Mapping({"x": Span(2, 2)}))

    def test_disjoint_union_rejects_overlap(self):
        a = Mapping({"x": Span(1, 2)})
        with pytest.raises(MappingError):
            a.disjoint_union(a)

    @given(mappings_over(), mappings_over())
    def test_union_commutative_when_compatible(self, a, b):
        if a.compatible(b):
            assert a.union(b) == b.union(a)

    @given(mappings_over())
    def test_union_idempotent(self, mu):
        assert mu.union(mu) == mu


class TestStructuralPredicates:
    def test_hierarchical_nested(self):
        assert Mapping({"x": Span(1, 9), "y": Span(2, 5)}).is_hierarchical()

    def test_hierarchical_disjoint(self):
        assert Mapping({"x": Span(1, 3), "y": Span(3, 5)}).is_hierarchical()

    def test_not_hierarchical_partial_overlap(self):
        assert not Mapping({"x": Span(1, 4), "y": Span(2, 6)}).is_hierarchical()

    def test_point_disjoint(self):
        assert Mapping({"x": Span(1, 2), "y": Span(3, 4)}).is_point_disjoint()
        assert not Mapping({"x": Span(1, 2), "y": Span(2, 4)}).is_point_disjoint()

    @given(mappings_over())
    def test_singleton_always_hierarchical(self, mu):
        for variable in mu.domain:
            assert mu.project({variable}).is_hierarchical()


class TestProjectionsAndRenaming:
    def test_project(self):
        mu = Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        assert mu.project({"x"}) == Mapping({"x": Span(1, 2)})

    def test_drop(self):
        mu = Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        assert mu.drop({"x"}) == Mapping({"y": Span(2, 3)})

    def test_rename(self):
        mu = Mapping({"x": Span(1, 2)})
        assert mu.rename({"x": "w"}) == Mapping({"w": Span(1, 2)})

    def test_shift(self):
        mu = Mapping({"x": Span(1, 2)})
        assert mu.shift(2) == Mapping({"x": Span(3, 4)})

    def test_extends(self):
        small = Mapping({"x": Span(1, 2)})
        large = Mapping({"x": Span(1, 2), "y": Span(2, 2)})
        assert large.extends(small)
        assert not small.extends(large)


class TestJoin:
    def test_paper_definition(self):
        m1 = {Mapping({"x": Span(1, 2)})}
        m2 = {Mapping({"y": Span(2, 3)}), Mapping({"x": Span(9, 9)})}
        joined = join(m1, m2)
        assert joined == {Mapping({"x": Span(1, 2), "y": Span(2, 3)})}

    def test_join_with_empty_set_is_empty(self):
        assert join({Mapping.empty()}, set()) == set()

    def test_join_with_empty_mapping_is_identity(self):
        mappings = {Mapping({"x": Span(1, 2)}), Mapping.empty()}
        assert join(mappings, {Mapping.empty()}) == mappings

    @given(mappings_over(), mappings_over())
    def test_join_commutative(self, a, b):
        assert join({a}, {b}) == join({b}, {a})

    def test_join_all_empty_product(self):
        assert join_all([]) == {Mapping.empty()}

    def test_join_all_three_way(self):
        sets = [
            {Mapping({"x": Span(1, 2)})},
            {Mapping({"y": Span(1, 1)})},
            {Mapping({"x": Span(1, 2), "z": Span(4, 4)})},
        ]
        assert join_all(sets) == {
            Mapping({"x": Span(1, 2), "y": Span(1, 1), "z": Span(4, 4)})
        }

    def test_all_total_mappings_count(self):
        # (n+1)(n+2)/2 spans per variable, squared for two variables.
        result = all_total_mappings(["x", "y"], 2)
        assert len(result) == 6 * 6


class TestExtendedMappings:
    def test_null_is_singleton(self):
        assert NULL is type(NULL)()

    def test_admits_respects_null(self):
        pinned = ExtendedMapping({"x": Span(1, 2), "y": NULL})
        assert pinned.admits(Mapping({"x": Span(1, 2)}))
        assert pinned.admits(Mapping({"x": Span(1, 2), "z": Span(1, 1)}))
        assert not pinned.admits(Mapping({"x": Span(1, 2), "y": Span(1, 1)}))
        assert not pinned.admits(Mapping({"x": Span(1, 3)}))

    def test_total_for_pins_missing_to_null(self):
        pinned = ExtendedMapping.total_for(Mapping({"x": Span(1, 2)}), ["x", "y"])
        assert pinned.value("y") is NULL
        assert pinned.assigned() == Mapping({"x": Span(1, 2)})
        assert pinned.nulled() == {"y"}

    def test_from_mapping_conflict_raises(self):
        with pytest.raises(MappingError):
            ExtendedMapping.from_mapping(
                Mapping({"x": Span(1, 2)}), null_variables=["x"]
            )

    def test_pin_refinement(self):
        empty = ExtendedMapping.empty()
        pinned = empty.pin("x", Span(1, 1)).pin("y", NULL)
        assert pinned.value("x") == Span(1, 1)
        assert pinned.value("y") is NULL
        assert pinned.value("z") is None

    @given(mappings_over())
    def test_total_for_admits_exactly_itself(self, mu):
        pinned = ExtendedMapping.total_for(mu, {"x", "y", "z"})
        assert pinned.admits(mu)
        other = mu.extend("w", Span(1, 1))
        assert pinned.admits(other)  # w unconstrained
        for variable in {"x", "y", "z"} - mu.domain:
            assert not pinned.admits(mu.extend(variable, Span(1, 1)))
