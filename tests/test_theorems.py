"""One executable check per theorem — the reproduction's golden suite.

Each test demonstrates the *statement* of a theorem or proposition of the
paper on concrete instances (constructions are exercised in depth in the
per-module test files; benchmarks measure the complexity-theoretic
*shape*).  EXPERIMENTS.md indexes these.
"""

from repro.analysis.containment import (
    contained_det_sequential_point_disjoint,
    contained_va,
)
from repro.analysis.satisfiability import satisfiable_va, satisfying_document
from repro.automata.algebra import join_va, project_va, union_va
from repro.automata.determinize import determinize, is_complete_deterministic
from repro.automata.path_union import va_to_rgx, vastk_to_rgx
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va, to_vastk
from repro.rgx.parser import parse
from repro.rgx.properties import is_functional
from repro.rgx.semantics import classical_semantics, mappings, outputs_relation
from repro.rules.cycles import to_daglike, unsatisfiable_daglike_rule
from repro.rules.graph import is_dag_like, is_tree_like
from repro.rules.rule import Rule, bare, rule
from repro.rules.translate import (
    daglike_to_treelike,
    rgx_to_treelike_rules,
    union_of_rules_to_rgx,
)
from repro.spans.mapping import all_total_mappings, join
from repro.spans.span import Span

DOCS = ["", "a", "b", "ab", "ba", "aa", "bb", "aab", "abb"]


def test_theorem_4_1_functional_rgx_defines_relations():
    """funcRGX = the regex formulas of [8]: outputs are total relations."""
    for text in ["x{a*}y{b*}", "x{a}|x{b}", "x{y{a}b}"]:
        expression = parse(text)
        assert is_functional(expression)
        for document in DOCS:
            assert outputs_relation(expression, document)
            for mapping in mappings(expression, document):
                assert mapping.domain == expression.variables()


def test_theorem_4_2_span_regular_expression_semantics():
    """spanRGX + join with all total mappings = the semantics of [2]."""
    expression = parse("x{.*}a|b")
    for document in ["a", "b", "ba"]:
        expected = join(
            all_total_mappings(expression.variables(), len(document)),
            mappings(expression, document),
        )
        assert classical_semantics(expression, document) == expected


def test_theorem_4_3_rgx_equals_vastk():
    """RGX ≡ VAstk via Thompson and path union."""
    for text in ["x{a*}y{b*}", "(x{(a|b)*}|y{(a|b)*})*", "x{a}|b"]:
        expression = parse(text)
        automaton = to_vastk(expression)
        for document in DOCS:
            assert automaton.evaluate(document) == mappings(expression, document)
        recovered = vastk_to_rgx(automaton)
        for document in DOCS:
            assert mappings(recovered, document) == mappings(expression, document)


def test_theorem_4_4_hierarchical_va_equals_rgx():
    """Hierarchical VA ≡ RGX."""
    expression = parse("x{ay{b}}c*")
    automaton = to_va(expression)
    recovered = va_to_rgx(automaton)
    for document in ["ab", "abc", "abcc", ""]:
        assert mappings(recovered, document) == mappings(expression, document)


def test_theorem_4_5_algebra_closure():
    """VA is closed under ∪, π, ⋈ of mappings."""
    first = to_va(parse("x{a*}y{b*}"))
    second = to_va(parse("x{a*}.*"))
    for document in DOCS:
        m1, m2 = evaluate_va(first, document), evaluate_va(second, document)
        assert evaluate_va(union_va(first, second), document) == m1 | m2
        assert evaluate_va(project_va(first, {"x"}), document) == {
            m.project({"x"}) for m in m1
        }
        assert evaluate_va(join_va(first, second), document) == join(m1, m2)


def test_theorem_4_6_incomparability():
    """Rules express non-hierarchical mappings; RGX outputs never are."""
    overlap_rule = Rule(
        bare("x"),
        (
            ("x", parse("a(y{.*})aa")),
            ("x", parse("aa(z{.*})a")),
        ),
    )
    produced = overlap_rule.evaluate("aaaaa")
    assert any(not m.is_hierarchical() for m in produced)
    for text in ["x{a*}y{b*}", "(x{(a|b)*}|y{(a|b)*})*", "x{y{a}b}c"]:
        for document in DOCS:
            for mapping in mappings(parse(text), document):
                assert mapping.is_hierarchical()


def test_theorem_4_7_cycle_elimination():
    """Functional simple rules → equivalent dag-like rules, in PTIME."""
    cyclic = rule(
        bare("x"),
        ("x", bare("y")),
        ("y", bare("z")),
        ("z", parse("u{.*}x{.*}")),
    )
    transformed = to_daglike(cyclic)
    assert is_dag_like(transformed)
    keep = cyclic.variables()
    for document in DOCS:
        assert {
            m.project(keep) for m in transformed.evaluate(document)
        } == cyclic.evaluate(document)


def test_proposition_4_8_and_4_9_pipeline():
    """Simple rule → union of functional dag-like → union of tree-like."""
    from repro.rules.translate import to_functional_daglike

    r = rule(
        parse("x{.*}|y{.*}"),
        ("x", parse("ab*")),
        ("y", parse("ba*")),
    )
    keep = r.variables()
    dags = to_functional_daglike(r)
    assert dags and all(is_dag_like(d) for d in dags)
    trees = [tree for dag in dags for tree in daglike_to_treelike(dag)]
    assert trees and all(is_tree_like(t) for t in trees)
    for document in DOCS:
        produced = set()
        for tree in trees:
            produced |= {m.project(keep) for m in tree.evaluate(document)}
        assert produced == r.evaluate(document)


def test_theorem_4_10_rgx_equals_unions_of_simple_rules():
    """Both directions of the equivalence."""
    r = rule(parse("x{.*}|y{.*}"), ("x", parse("ab*")), ("y", parse("ba*")))
    expression = union_of_rules_to_rgx([r])
    keep = r.variables()
    for document in DOCS:
        assert {
            m.project(keep) for m in mappings(expression, document)
        } == r.evaluate(document)

    source = parse("x{a*}y{b*}|c")
    back = rgx_to_treelike_rules(source)
    for document in DOCS + ["c"]:
        produced = set()
        for tree in back:
            produced |= tree.evaluate(document)
        assert produced == mappings(source, document)


def test_theorem_5_1_and_5_7_polynomial_delay_enumeration():
    """Eval in PTIME ⟹ polynomial-delay enumeration for seqRGX."""
    from repro.evaluation.enumerate import enumerate_rgx

    expression = parse(".*f=x{[^;]*};.*(g=y{[^;]*};.*|ε)")
    document = "f=ab;g=cd;"
    produced = set(enumerate_rgx(expression, document))
    assert produced == mappings(expression, document)


def test_theorem_5_2_nonemp_spanrgx_reduction():
    """NonEmp[spanRGX] decides 1-IN-3-SAT."""
    from repro.reductions.one_in_three_sat import (
        brute_force_one_in_three,
        random_instance,
        spanrgx_nonempty_on_epsilon,
    )

    for seed in (0, 1, 2):
        instance = random_instance(3, 4, seed)
        assert spanrgx_nonempty_on_epsilon(instance) == (
            brute_force_one_in_three(instance)
        )


def test_proposition_5_3_functional_eval():
    """Eval[funcRGX] is decided by the sequential algorithm."""
    from repro.evaluation.eval_problem import eval_va
    from repro.spans.mapping import ExtendedMapping

    expression = parse("x{a*}y{b*}")
    automaton = to_va(expression)
    assert is_sequential(automaton)  # funcRGX ⊆ seqRGX
    assert eval_va(automaton, "aabb", ExtendedMapping({"x": Span(1, 3)}))
    assert not eval_va(automaton, "aabb", ExtendedMapping({"x": Span(2, 3)}))


def test_proposition_5_4_relational_va_hardness_family():
    """The Figure 4 family is relational yet encodes Hamiltonicity."""
    from repro.reductions.hamiltonian import (
        brute_force_hamiltonian,
        random_graph,
        va_nonempty_on_epsilon,
    )

    for seed in (0, 1, 2, 3):
        graph = random_graph(4, 0.5, seed)
        assert va_nonempty_on_epsilon(graph) == brute_force_hamiltonian(graph)


def test_proposition_5_5_sequentiality_check():
    assert is_sequential(to_va(parse("x{a*}y{b*}")))
    assert not is_sequential(to_va(parse("(x{a})*")))


def test_proposition_5_6_sequentialisation():
    original = to_va(parse("(x{a}|y{b})*"))
    assert not is_sequential(original)
    sequential = make_sequential(original)
    assert is_sequential(sequential)
    for document in DOCS:
        assert evaluate_va(sequential, document) == evaluate_va(
            original, document
        )


def test_theorem_5_8_rule_nonemptiness_reduction():
    from repro.reductions.one_in_three_sat import (
        brute_force_one_in_three,
        random_instance,
        rule_nonempty_on_hash,
    )

    for seed in (0, 1, 2):
        instance = random_instance(2, 4, seed)
        assert rule_nonempty_on_hash(instance) == brute_force_one_in_three(
            instance
        )


def test_theorem_5_9_treelike_rule_eval():
    from repro.evaluation.rules_eval import enumerate_treelike_rule

    r = rule(
        parse("x{.*}.*y{.*}"), ("x", parse("a*")), ("y", parse("b*"))
    )
    assert is_tree_like(r) and r.is_sequential()
    for document in DOCS:
        assert set(enumerate_treelike_rule(r, document)) == r.evaluate(document)


def test_theorem_5_10_fpt_eval():
    """The general Eval algorithm is exact on non-sequential automata."""
    from repro.evaluation.eval_problem import eval_general_va
    from repro.spans.mapping import ExtendedMapping

    expression = parse("(x{a}|y{b})*")
    automaton = to_va(expression)
    assert not is_sequential(automaton)
    for document in DOCS:
        for mapping in mappings(expression, document):
            assert eval_general_va(
                automaton, document, ExtendedMapping.from_mapping(mapping)
            )


def test_theorem_6_1_satisfiability():
    assert satisfiable_va(to_va(parse("x{a*}y{b*}")))
    assert not satisfiable_va(to_va(parse("x{a}x{b}")))


def test_theorem_6_2_sequential_satisfiability_is_reachability():
    automaton = to_va(parse("x{a*}(y{b}|ε)"))
    assert is_sequential(automaton)
    witness = satisfying_document(automaton)
    assert witness is not None
    assert mappings(parse("x{a*}(y{b}|ε)"), witness)


def test_theorem_6_3_rule_satisfiability():
    from repro.analysis.satisfiability import satisfiable_rule

    tree = rule(bare("x"), ("x", parse("a(y{.*})")), ("y", parse(".*")))
    assert satisfiable_rule(tree)  # sequential tree-like: always
    assert not satisfiable_rule(unsatisfiable_daglike_rule())


def test_theorem_6_4_containment():
    assert contained_va(to_va(parse("x{a}b")), to_va(parse("x{a}.")))
    assert not contained_va(to_va(parse("x{a}.")), to_va(parse("x{a}b")))


def test_proposition_6_5_determinisation():
    for text in ["x{a*}y{b*}", "(x{(a|b)*}|y{(a|b)*})*"]:
        expression = parse(text)
        deterministic = determinize(to_va(expression))
        assert is_complete_deterministic(deterministic)
        for document in DOCS:
            assert evaluate_va(deterministic, document) == mappings(
                expression, document
            )


def test_theorem_6_6_dnf_validity_reduction():
    from repro.reductions.dnf_validity import (
        brute_force_valid,
        containment_holds,
        random_dnf,
    )

    for seed in (0, 1):
        formula = random_dnf(2, 3, seed)
        assert containment_holds(formula) == brute_force_valid(formula)


def test_theorem_6_7_point_disjoint_containment():
    first = determinize(make_sequential(to_va(parse("x{ab}c"))))
    second = determinize(make_sequential(to_va(parse("x{ab}."))))
    assert contained_det_sequential_point_disjoint(first, second)
    assert not contained_det_sequential_point_disjoint(second, first)
