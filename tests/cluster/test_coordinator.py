"""Coordinator + worker-node integration over real sockets.

One CoordinatorThread per scenario (short heartbeats so eviction paths
run in test time), worker nodes as in-process WorkerNodeThreads, and the
plain ServerClient speaking both the data plane and the control plane.
"""

import time

import pytest

from repro.cluster import (
    CoordinatorConfig,
    CoordinatorThread,
    NodeRegistry,
    WorkerNodeThread,
)
from repro.server import ServerClient, ServerResponseError


def _config(**overrides) -> CoordinatorConfig:
    settings = dict(port=0, heartbeat_interval=0.2, heartbeat_timeout=0.6)
    settings.update(overrides)
    return CoordinatorConfig(**settings)


def _wait(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def test_control_plane_register_heartbeat_evict_reregister():
    with CoordinatorThread(_config()) as coordinator:
        client = ServerClient(*coordinator.address)
        try:
            reply = client.post_json(
                "/register",
                {"url": "http://127.0.0.1:59999", "fingerprints": ["fp"]},
            )
            node_id = reply["node_id"]
            assert node_id == NodeRegistry.stable_node_id(
                "http://127.0.0.1:59999"
            )
            assert reply["heartbeat_interval"] == pytest.approx(0.2)

            assert client.post_json(
                "/heartbeat", {"node_id": node_id}
            ) == {"status": "ok"}

            # Stop beating: the reaper evicts after the timeout, and the
            # next heartbeat is told to re-register.
            _wait(
                lambda: len(coordinator.coordinator.registry) == 0,
                message="stale node eviction",
            )
            with pytest.raises(ServerResponseError) as caught:
                client.post_json("/heartbeat", {"node_id": node_id})
            assert caught.value.status == 404

            again = client.post_json(
                "/register",
                {"url": "http://127.0.0.1:59999", "node_id": node_id},
            )
            assert again["node_id"] == node_id  # stable across eviction

            health = client.healthz()
            assert health["nodes"] == 1
            assert health["cluster"]["evictions"] == 1
            assert health["cluster"]["registrations"] == 2
        finally:
            client.close()


def test_control_plane_validation_and_methods():
    with CoordinatorThread(_config()) as coordinator:
        client = ServerClient(*coordinator.address)
        try:
            for path, body in (
                ("/register", {}),
                ("/register", {"url": "not a url"}),
                ("/heartbeat", {}),
                ("/leave", {"node_id": ""}),
            ):
                with pytest.raises(ServerResponseError) as caught:
                    client.post_json(path, body)
                assert caught.value.status == 400
            status, _ = client.request_raw("GET", "/register")
            assert status == 405
            # Leaving twice is idempotent, not an error.
            reply = client.post_json("/leave", {"node_id": "node-unknown"})
            assert reply == {"known": False, "status": "ok"}
        finally:
            client.close()


def test_requests_route_to_worker_nodes_and_warm_affinity():
    with CoordinatorThread(_config()) as coordinator:
        with WorkerNodeThread(coordinator.url, interval=0.2) as node:
            assert node.agent.wait_registered(10.0)
            client = ServerClient(*coordinator.address)
            try:
                first = client.enumerate(".*x{a+}.*", ["baa"])
                second = client.enumerate(".*x{a+}.*", ["aaa"])
            finally:
                client.close()
            assert first["results"][0]["mappings"] == [
                {"x": "a"},
                {"x": "aa"},
                {"x": "a"},
            ]
            assert second["results"][0]["error"] is None
            # The batches ran on the node, not in the coordinator…
            assert node.server.dispatcher.cache.stats()["misses"] >= 1
            stats = coordinator.coordinator.cluster.stats()
            assert stats["remote_batches"] >= 2
            assert stats["local_batches"] == 0
            # …and the second batch hit the warm-affinity route.
            assert stats["warm_hits"] >= 1


def test_empty_cluster_degrades_to_local_execution():
    with CoordinatorThread(_config()) as coordinator:
        client = ServerClient(*coordinator.address)
        try:
            reply = client.evaluate("x{a}b", ["ab", "zz"])
            health = client.healthz()
        finally:
            client.close()
        assert [r["matches"] for r in reply["results"]] == [True, False]
        assert health["nodes"] == 0
        assert health["status"] == "ok"  # degraded-not-failed
        assert coordinator.coordinator.cluster.stats()["local_batches"] >= 1


def test_healthz_reports_version_uptime_and_topology():
    from repro import __version__

    with CoordinatorThread(_config()) as coordinator:
        with WorkerNodeThread(coordinator.url, interval=0.2) as node:
            assert node.agent.wait_registered(10.0)
            node_url = node.url
            client = ServerClient(*coordinator.address)
            try:
                health = client.healthz()
            finally:
                client.close()
    assert health["version"] == __version__
    assert health["uptime_seconds"] >= 0
    assert health["nodes"] == 1
    (record,) = health["cluster"]["nodes"]
    assert record["url"] == node_url
    assert "stats" in record


def test_worker_node_advertises_warm_fingerprints():
    with CoordinatorThread(_config()) as coordinator:
        with WorkerNodeThread(coordinator.url, interval=0.1) as node:
            assert node.agent.wait_registered(10.0)
            client = ServerClient(*coordinator.address)
            try:
                client.enumerate(".*x{a+}.*", ["baa"])
                registry = coordinator.coordinator.registry

                def advertised():
                    nodes = registry.nodes()
                    return bool(nodes) and len(nodes[0].fingerprints) >= 1

                # The next heartbeat carries the engine the batch warmed.
                _wait(advertised, message="fingerprint advertisement")
            finally:
                client.close()


def test_metrics_exposition_includes_cluster_series():
    with CoordinatorThread(_config()) as coordinator:
        with WorkerNodeThread(coordinator.url, interval=0.2) as node:
            assert node.agent.wait_registered(10.0)
            client = ServerClient(*coordinator.address)
            try:
                client.enumerate("x{a}", ["a"])
                text = client.metrics_text()
            finally:
                client.close()
    assert "repro_cluster_nodes 1" in text
    assert "repro_cluster_registrations_total" in text
    assert "repro_cluster_remote_batches_total" in text
    assert 'repro_cluster_node_batches{node="' in text


def test_leave_empties_the_topology():
    with CoordinatorThread(_config()) as coordinator:
        with WorkerNodeThread(coordinator.url, interval=0.2) as node:
            assert node.agent.wait_registered(10.0)
        # Context exit stopped the agent, which POSTs /leave.
        _wait(
            lambda: len(coordinator.coordinator.registry) == 0,
            message="node leave",
        )
        assert coordinator.coordinator.registry.counters()["leaves"] == 1
