"""The executor-backend seam: threads, processes, and corpus injection."""

import pytest

from repro.engine.compiled import compile_spanner
from repro.service import evaluate_corpus
from repro.service.backend import ProcessBackend, ThreadBackend
from repro.service.evaluate import WorkerPool, evaluate_records

DOCS = ["baa", "aaa", "", "bb", "aba"]
RECORDS = [(f"d{i}", text) for i, text in enumerate(DOCS)]


@pytest.fixture(scope="module")
def engine():
    return compile_spanner(".*x{a+}.*")


@pytest.mark.parametrize("kind", ["mappings", "extract", "matches"])
def test_thread_backend_matches_local(engine, kind):
    with ThreadBackend(threads=2) as backend:
        triples = backend.submit(engine, RECORDS, kind=kind).result()
    assert triples == evaluate_records(engine, RECORDS, kind, False)


def test_thread_backend_spans(engine):
    with ThreadBackend(threads=2) as backend:
        triples = backend.submit(
            engine, RECORDS, kind="extract", spans=True
        ).result()
    assert triples == evaluate_records(engine, RECORDS, "extract", True)


def test_thread_backend_rejects_bad_kind(engine):
    with ThreadBackend(threads=1) as backend:
        with pytest.raises(ValueError, match="unknown batch kind"):
            backend.submit(engine, RECORDS, kind="verdicts")


def test_thread_backend_closed_refuses(engine):
    backend = ThreadBackend(threads=1)
    backend.close()
    with pytest.raises(RuntimeError, match="closed"):
        backend.submit(engine, RECORDS)


def test_process_backend_owned_pool(engine):
    with ProcessBackend(workers=2) as backend:
        assert backend.parallelism == 2
        assert backend.stats()["backend"] == "processes"
        triples = backend.submit(engine, RECORDS, kind="mappings").result()
    assert triples == evaluate_records(engine, RECORDS, "mappings", False)
    assert backend.pool.failed is False or backend.pool.failed  # shut down


def test_process_backend_borrowed_pool_survives_close(engine):
    pool = WorkerPool(2)
    try:
        backend = ProcessBackend(pool=pool)
        first = backend.submit(engine, RECORDS, kind="matches").result()
        backend.close()
        # close() must not shut a caller-owned pool down.
        second = pool.submit(engine, RECORDS, kind="matches").result()
        assert first == second
    finally:
        pool.shutdown()


def test_process_backend_argument_validation():
    with pytest.raises(ValueError, match="exactly one"):
        ProcessBackend()
    with pytest.raises(ValueError, match="exactly one"):
        ProcessBackend(workers=2, pool=object())


def test_evaluate_corpus_accepts_injected_backend(engine):
    pairs = [(f"doc-{i}", text) for i, text in enumerate(DOCS)]
    baseline = evaluate_corpus(engine, dict(pairs))
    with ThreadBackend(threads=2) as backend:
        # Materialise inside the block: the stream is lazy and the
        # borrowed backend closes when the block exits.
        routed = list(
            evaluate_corpus(engine, dict(pairs), workers=2, backend=backend)
        )
    assert [(r.doc_id, r.mappings, r.error) for r in routed] == [
        (r.doc_id, r.mappings, r.error) for r in baseline
    ]


def test_evaluate_corpus_rejects_pool_and_backend(engine):
    pool = WorkerPool(1)
    try:
        with ThreadBackend(threads=1) as backend:
            with pytest.raises(ValueError, match="at most one"):
                evaluate_corpus(
                    engine,
                    {"d": "a"},
                    workers=2,
                    pool=pool,
                    backend=backend,
                )
    finally:
        pool.shutdown()
