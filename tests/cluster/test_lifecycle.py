"""Chaos acceptance: kill a rack node mid-corpus, results stay identical.

Worker nodes run as real ``repro worker`` subprocesses (so SIGKILL kills
a whole process tree the way an operator's machine would fail), the
coordinator runs in-process so the test can read its registry and
counters directly.  Corpus size scales with ``REPRO_CHAOS_DOCS``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cluster import CoordinatorConfig, CoordinatorThread
from repro.server import ServerClient, ServerConfig, ServerThread

from tests.conftest import chaos_docs

pytestmark = pytest.mark.chaos


def _pattern_docs():
    count = max(40, chaos_docs() // 2)
    docs = [
        (f"doc-{index:05d}", ("ab" * (index % 7)) + "aaa" + ("ba" * (index % 5)))
        for index in range(count)
    ]
    return ".*x{a+}.*", docs


def _spawn_worker(join_url: str) -> subprocess.Popen:
    source_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = source_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--join",
            join_url,
            "--port",
            "0",
        ],
        env=env,
        stderr=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
    )
    # The banner line doubles as the "server is listening" barrier.
    banner = process.stderr.readline().decode()
    assert "repro worker: serving" in banner, banner
    return process


def _wait_nodes(coordinator, expected: int, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(coordinator.coordinator.registry) == expected:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"expected {expected} registered nodes, "
        f"have {len(coordinator.coordinator.registry)}"
    )


def _config() -> CoordinatorConfig:
    return CoordinatorConfig(
        port=0,
        heartbeat_interval=0.2,
        heartbeat_timeout=0.6,
        node_timeout=10.0,
    )


def test_sigkill_mid_corpus_keeps_output_byte_identical():
    pattern, docs = _pattern_docs()

    # The ground truth: the same corpus through a plain single server.
    with ServerThread(ServerConfig(port=0)) as single:
        client = ServerClient(*single.address)
        try:
            baseline = client.enumerate_ndjson(pattern, docs)
        finally:
            client.close()

    with CoordinatorThread(_config()) as coordinator:
        workers = [_spawn_worker(coordinator.url) for _ in range(3)]
        try:
            _wait_nodes(coordinator, 3)
            client = ServerClient(*coordinator.address, timeout=60.0)
            try:
                # SIGKILL one node as soon as the corpus is in flight.
                killer_fired = []

                def documents():
                    for position, pair in enumerate(docs):
                        if position == len(docs) // 4 and not killer_fired:
                            os.kill(workers[0].pid, signal.SIGKILL)
                            killer_fired.append(True)
                        yield pair

                lines = client.enumerate_ndjson(pattern, documents())
            finally:
                client.close()
            assert killer_fired, "the kill never fired"
            assert lines == baseline

            stats = coordinator.coordinator.cluster.stats()
            counters = coordinator.coordinator.registry.counters()
            metrics = coordinator.coordinator.metrics
            # Batches in flight on the killed node were requeued (or the
            # node died between batches and was reaped by heartbeat
            # timeout — either way it is gone and nothing was lost).
            assert len(coordinator.coordinator.registry) == 2
            assert counters["evictions"] >= 1
            assert (
                stats["requeues"] >= 1
                or metrics.value("repro_cluster_evictions_total") >= 1
            )
            assert stats["remote_batches"] >= 1
        finally:
            for process in workers:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            for process in workers:
                try:
                    process.wait(timeout=20)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=5)
                if process.stderr is not None:
                    process.stderr.close()


def test_all_nodes_dead_degrades_to_local_completion():
    pattern, docs = _pattern_docs()
    docs = docs[:40]
    with CoordinatorThread(_config()) as coordinator:
        worker = _spawn_worker(coordinator.url)
        try:
            _wait_nodes(coordinator, 1)
            os.kill(worker.pid, signal.SIGKILL)
            client = ServerClient(*coordinator.address, timeout=60.0)
            try:
                lines = client.enumerate_ndjson(pattern, docs)
                health = client.healthz()
            finally:
                client.close()
        finally:
            worker.wait(timeout=20)
            if worker.stderr is not None:
                worker.stderr.close()
        assert [json.loads(json.dumps(line))["error"] for line in lines] == [
            None
        ] * len(docs)
        assert health["status"] == "ok"  # degraded, never failed
        assert health["nodes"] == 0
        assert coordinator.coordinator.cluster.stats()["local_batches"] >= 1
