"""NodeRegistry unit tests on a fake clock (fully deterministic)."""

import pytest

from repro.cluster.registry import NodeRegistry

URL_A = "http://127.0.0.1:9001"
URL_B = "http://127.0.0.1:9002"


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry(clock):
    return NodeRegistry(
        heartbeat_interval=1.0, heartbeat_timeout=3.0, clock=clock
    )


def test_node_id_is_a_stable_digest_of_the_url():
    first = NodeRegistry.stable_node_id(URL_A)
    assert first == NodeRegistry.stable_node_id(URL_A)
    assert first != NodeRegistry.stable_node_id(URL_B)
    assert first.startswith("node-")


def test_register_heartbeat_evict_reregister_cycle(registry, clock):
    record = registry.register(URL_A, fingerprints=["fp1"])
    node_id = record.node_id

    clock.advance(1.0)
    assert registry.heartbeat(node_id, fingerprints=["fp1", "fp2"])
    assert registry.nodes()[0].fingerprints == {"fp1", "fp2"}

    # Silence past the timeout: the node is reaped.
    clock.advance(3.5)
    evicted = registry.evict_stale()
    assert [r.node_id for r in evicted] == [node_id]
    assert len(registry) == 0
    assert not registry.heartbeat(node_id)  # unknown now: must re-register

    # Re-registration from the same URL keeps the stable id.
    again = registry.register(URL_A)
    assert again.node_id == node_id
    assert registry.counters()["evictions"] == 1
    assert registry.counters()["registrations"] == 2


def test_heartbeat_within_timeout_is_not_evicted(registry, clock):
    registry.register(URL_A)
    clock.advance(2.0)
    assert registry.heartbeat(NodeRegistry.stable_node_id(URL_A))
    clock.advance(2.0)
    assert registry.evict_stale() == []
    assert len(registry) == 1


def test_acquire_prefers_warm_then_balances(registry):
    a = registry.register(URL_A, fingerprints=["warm"])
    b = registry.register(URL_B)

    # Equal load: the warm node wins the tie.
    leased, warm = registry.acquire("warm")
    assert (leased.node_id, warm) == (a.node_id, True)

    # Now A carries one inflight batch: load balancing beats affinity.
    leased2, warm2 = registry.acquire("warm")
    assert (leased2.node_id, warm2) == (b.node_id, False)

    # A successful release teaches the registry that B is warm too.
    registry.release(b.node_id, ok=True, fingerprint="warm")
    registry.release(a.node_id, ok=True, fingerprint="warm")
    leased3, warm3 = registry.acquire("warm")
    assert warm3 is True


def test_acquire_skips_open_breakers(registry):
    registry.register(URL_A)
    registry.register(URL_B)
    a_id = NodeRegistry.stable_node_id(URL_A)
    # Two straight failures open A's breaker.
    for _ in range(2):
        registry.acquire(None)
        registry.release(a_id, ok=False)
    chosen = {registry.acquire(None)[0].node_id for _ in range(3)}
    for node_id in chosen:
        registry.release(node_id, ok=True)
    assert chosen == {NodeRegistry.stable_node_id(URL_B)}


def test_acquire_empty_and_all_open_returns_none(registry):
    assert registry.acquire("fp") is None
    registry.register(URL_A)
    a_id = NodeRegistry.stable_node_id(URL_A)
    for _ in range(2):
        registry.acquire(None)
        registry.release(a_id, ok=False)
    assert registry.acquire("fp") is None


def test_leave_and_release_after_eviction_are_safe(registry):
    record = registry.register(URL_A)
    leased, _ = registry.acquire(None)
    assert registry.leave(record.node_id) is not None
    # The batch was in flight while the node left; release is a no-op.
    registry.release(leased.node_id, ok=True, fingerprint="fp")
    assert registry.leave(record.node_id) is None
    assert registry.counters()["leaves"] == 1


def test_describe_is_json_shaped(registry):
    registry.register(URL_A, fingerprints=["fp"], stats={"workers": 2})
    described = registry.describe()
    assert described["registrations"] == 1
    (node,) = described["nodes"]
    assert node["url"] == URL_A
    assert node["fingerprints"] == 1
    assert node["stats"] == {"workers": 2}


def test_validation():
    with pytest.raises(ValueError, match="positive"):
        NodeRegistry(heartbeat_interval=0)
    with pytest.raises(ValueError, match="exceed"):
        NodeRegistry(heartbeat_interval=2.0, heartbeat_timeout=1.0)
