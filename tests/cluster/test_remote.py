"""NodeClient/RemoteBackend against a live in-process server.

The contract under test: remote execution returns *structurally
identical* triples to :func:`~repro.service.evaluate.evaluate_records`
run locally — same payload types (``Mapping``/``Span``/``dict``/``bool``),
same order, same errors.
"""

import pytest

from repro.cluster.remote import (
    NodeClient,
    RemoteBackend,
    RemoteRejected,
    RemoteUnavailable,
    remote_spec,
)
from repro.engine.compiled import compile_spanner
from repro.rgx import parse
from repro.server import ServerConfig, ServerThread
from repro.service.evaluate import evaluate_records

DOCS = ["baa", "aaa", "", "bb", "aba"]
RECORDS = [(f"d{i}", text) for i, text in enumerate(DOCS)]


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(port=0)) as thread:
        yield thread


@pytest.fixture(scope="module")
def engine():
    return compile_spanner(".*x{a+}.*")


def _url(server) -> str:
    host, port = server.address
    return f"http://{host}:{port}"


def test_remote_spec_roundtrip(engine):
    spec = remote_spec(engine)
    assert spec == (".*x{a+}.*", engine.plan.opt_level)


def test_remote_spec_none_for_ast_engine():
    engine = compile_spanner(parse(".*x{a+}.*"))
    assert remote_spec(engine) is None


@pytest.mark.parametrize("kind", ["mappings", "extract", "matches"])
def test_batch_matches_local_execution(server, engine, kind):
    client = NodeClient(_url(server))
    try:
        triples = client.evaluate_batch(
            remote_spec(engine), RECORDS, kind=kind
        )
    finally:
        client.close()
    assert triples == evaluate_records(engine, RECORDS, kind, False)


def test_batch_extract_spans_matches_local(server, engine):
    client = NodeClient(_url(server))
    try:
        triples = client.evaluate_batch(
            remote_spec(engine), RECORDS, kind="extract", spans=True
        )
    finally:
        client.close()
    assert triples == evaluate_records(engine, RECORDS, "extract", True)


def test_duplicate_doc_ids_survive_positional_remap(server, engine):
    records = [("same", "baa"), ("same", "aaa"), ("other", "bb")]
    client = NodeClient(_url(server))
    try:
        triples = client.evaluate_batch(
            remote_spec(engine), records, kind="matches"
        )
    finally:
        client.close()
    assert triples == evaluate_records(engine, records, "matches", False)
    assert [doc_id for doc_id, _, _ in triples] == ["same", "same", "other"]


def test_unreachable_node_raises_unavailable(engine):
    client = NodeClient("http://127.0.0.1:9", timeout=0.5)
    try:
        with pytest.raises(RemoteUnavailable):
            client.evaluate_batch(remote_spec(engine), RECORDS, "matches")
    finally:
        client.close()


def test_remote_backend_matches_local(server, engine):
    with RemoteBackend(_url(server), threads=2) as backend:
        future = backend.submit(engine, RECORDS, kind="mappings")
        assert future.result() == evaluate_records(
            engine, RECORDS, "mappings", False
        )
        stats = backend.stats()
    assert stats["backend"] == "remote"
    assert stats["batches"] == 1


def test_remote_backend_rejects_sourceless_engine(server):
    sourceless = compile_spanner(parse("x{a}"))
    with RemoteBackend(_url(server)) as backend:
        with pytest.raises(RemoteRejected):
            backend.submit(sourceless, RECORDS, kind="matches").result()
