"""The high-level Spanner facade."""

import pytest

from repro.spanner import Spanner
from repro.spans.mapping import ExtendedMapping, Mapping, NULL
from repro.spans.span import Span
from repro.util.errors import SpannerError


class TestCompileAndExtract:
    def test_extract_decodes_contents(self):
        spanner = Spanner.compile(".*Seller: x{[^,\n]*},.*")
        assert spanner.extract("Seller: John, ID75\n") == [{"x": "John"}]

    def test_extract_spans(self):
        spanner = Spanner.compile("x{a*}y{b*}")
        assert spanner.extract("aab", spans=True) == [
            {"x": Span(1, 3), "y": Span(3, 4)}
        ]

    def test_optional_fields_are_omitted(self):
        spanner = Spanner.compile("x{a}(y{b}|ε)c*")
        assert spanner.extract("ac") == [{"x": "a"}]
        assert spanner.extract("abc") == [{"x": "a", "y": "b"}]

    def test_extract_is_deterministic_order(self):
        spanner = Spanner.compile(".*x{a}.*")
        assert spanner.extract("aa") == [{"x": "a"}, {"x": "a"}]
        assert spanner.extract("aa", spans=True) == [
            {"x": Span(1, 2)},
            {"x": Span(2, 3)},
        ]

    def test_compile_from_ast(self):
        from repro.rgx import parse

        spanner = Spanner.compile(parse("x{a}"))
        assert spanner.extract("a") == [{"x": "a"}]


class TestClassification:
    def test_sequential_flag(self):
        assert Spanner.compile("x{a*}y{b*}").is_sequential
        assert not Spanner.compile("(x{a})*").is_sequential

    def test_functional_flag(self):
        assert Spanner.compile("x{a*}y{b*}").is_functional
        assert not Spanner.compile("x{a}|b").is_functional

    def test_functional_needs_expression(self):
        from repro.automata.thompson import to_va
        from repro.rgx import parse

        spanner = Spanner.from_automaton(to_va(parse("x{a}")))
        with pytest.raises(SpannerError):
            spanner.is_functional


class TestDecisionProblems:
    def test_matches(self):
        spanner = Spanner.compile("x{a+}")
        assert spanner.matches("aa")
        assert not spanner.matches("b")

    def test_check(self):
        spanner = Spanner.compile("x{a*}y{b*}")
        good = Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        assert spanner.check("ab", good)
        assert not spanner.check("ab", Mapping({"x": Span(1, 2)}))

    def test_eval_with_pins(self):
        spanner = Spanner.compile("x{a*}(y{b}|ε)")
        assert spanner.eval("a", ExtendedMapping({"y": NULL}))
        assert not spanner.eval("ab", ExtendedMapping({"y": NULL}))

    def test_enumerate_streams_everything(self):
        spanner = Spanner.compile("(x{a}|y{b})*")
        assert set(spanner.enumerate("ab")) == spanner.mappings("ab")


class TestAlgebraAndAnalysis:
    def test_union(self):
        combined = Spanner.compile("x{a}").union(Spanner.compile("y{b}"))
        assert combined.mappings("a") == {Mapping({"x": Span(1, 2)})}
        assert combined.mappings("b") == {Mapping({"y": Span(1, 2)})}

    def test_project(self):
        projected = Spanner.compile("x{a}y{ε}").project({"x"})
        assert projected.mappings("a") == {Mapping({"x": Span(1, 2)})}

    def test_join(self):
        joined = Spanner.compile("x{a}.*").join(Spanner.compile(".*y{b}"))
        assert joined.mappings("ab") == {
            Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        }

    def test_satisfiability_and_witness(self):
        satisfiable = Spanner.compile("x{ab}")
        assert satisfiable.is_satisfiable()
        witness = satisfiable.witness()
        assert witness is not None and satisfiable.matches(witness)
        assert not Spanner.compile("x{a}x{b}").is_satisfiable()

    def test_containment_and_equivalence(self):
        small = Spanner.compile("x{a}b")
        large = Spanner.compile("x{a}.")
        assert small.contained_in(large)
        assert not large.contained_in(small)
        assert small.equivalent_to(Spanner.compile("x{a}(b)"))

    def test_repr(self):
        text = repr(Spanner.compile("x{a}"))
        assert "states" in text and "x" in text
