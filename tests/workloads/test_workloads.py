"""Workload generators and their ground-truth oracles."""

import pytest

from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.rgx.properties import is_sequential
from repro.workloads import land_registry, server_logs
from repro.workloads.expressions import (
    field_document,
    random_document,
    random_rgx,
    random_sequential_rgx,
    random_va,
    seller_like_sequential_rgx,
)


class TestLandRegistry:
    def test_rendering_matches_paper_shape(self):
        rows = [
            land_registry.RegistryRow("Seller", "John", "ID75", None),
            land_registry.RegistryRow("Seller", "Mark", "ID7", "$35,000"),
        ]
        document = land_registry.render(rows)
        assert "Seller: John, ID75\n" in document
        assert "Seller: Mark, ID7, $35,000\n" in document

    @pytest.mark.parametrize("seed", range(5))
    def test_expression_extracts_ground_truth(self, seed):
        rows = land_registry.generate_rows(8, seed=seed)
        document = land_registry.render(rows)
        output = evaluate_va(to_va(land_registry.seller_tax_expression()), document)
        assert land_registry.extraction_pairs(document, output) == (
            land_registry.expected_extraction(rows)
        )

    def test_name_only_expression(self):
        rows = land_registry.generate_rows(6, seed=1)
        document = land_registry.render(rows)
        output = evaluate_va(to_va(land_registry.seller_name_expression()), document)
        names = {m["x"].content(document) for m in output}
        assert names == {r.name for r in rows if r.kind == "Seller"}

    def test_rule_agrees_with_expression(self):
        rows = land_registry.generate_rows(5, seed=2)
        document = land_registry.render(rows)
        rule_result = land_registry.seller_rule().evaluate(document)
        assert land_registry.extraction_pairs(document, rule_result) == (
            land_registry.expected_extraction(rows)
        )

    def test_incomplete_rows_have_partial_mappings(self):
        document = "Seller: Ana, ID1\n"
        output = evaluate_va(to_va(land_registry.seller_tax_expression()), document)
        assert {m.domain for m in output} == {frozenset({"x"})}

    def test_deterministic_given_seed(self):
        assert land_registry.generate_document(5, seed=7) == (
            land_registry.generate_document(5, seed=7)
        )


class TestServerLogs:
    @pytest.mark.parametrize("seed", range(4))
    def test_expression_extracts_ground_truth(self, seed):
        lines = server_logs.generate_lines(7, seed=seed)
        document = server_logs.render(lines)
        output = evaluate_va(to_va(server_logs.access_expression()), document)
        assert server_logs.extraction_tuples(document, output) == (
            server_logs.expected_tuples(lines)
        )

    def test_four_mapping_domains_possible(self):
        lines = [
            server_logs.LogLine("/a", "200", None, None),
            server_logs.LogLine("/b", "200", "u", None),
            server_logs.LogLine("/c", "200", None, "/a"),
            server_logs.LogLine("/d", "200", "u", "/a"),
        ]
        document = server_logs.render(lines)
        output = evaluate_va(to_va(server_logs.access_expression()), document)
        domains = {frozenset(m.domain) for m in output}
        assert len(domains) == 4


class TestGenerators:
    def test_random_rgx_is_seeded(self):
        assert random_rgx(12, 5) == random_rgx(12, 5)
        samples = {random_rgx(12, seed) for seed in range(10)}
        assert len(samples) > 3  # different seeds explore the space

    @pytest.mark.parametrize("seed", range(10))
    def test_random_sequential_rgx_is_sequential(self, seed):
        assert is_sequential(random_sequential_rgx(12, seed))

    def test_seller_like_rgx_properties(self):
        expression = seller_like_sequential_rgx(4)
        assert is_sequential(expression)
        assert len(expression.variables()) == 4

    def test_field_document_matches_expression(self):
        expression = seller_like_sequential_rgx(3)
        document = field_document(3, seed=1)
        result = evaluate_va(to_va(expression), document)
        assert len(result) == 1
        mapping = next(iter(result))
        assert mapping.is_total_on({"v0", "v1", "v2"})

    def test_random_document_alphabet(self):
        document = random_document(50, seed=3, alphabet="xy")
        assert set(document) <= {"x", "y"}

    @pytest.mark.parametrize("seed", range(5))
    def test_random_va_evaluates(self, seed):
        automaton = random_va(5, seed=seed)
        evaluate_va(automaton, "ab")  # must not raise
