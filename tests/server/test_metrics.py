"""The metrics registry: counters, gauges, exposition hygiene."""

from repro.server.metrics import Metrics


class TestMetrics:
    def test_counters_accumulate_per_label(self):
        metrics = Metrics()
        metrics.inc("hits", endpoint="a")
        metrics.inc("hits", 2, endpoint="a")
        metrics.inc("hits", endpoint="b")
        assert metrics.value("hits", endpoint="a") == 3
        assert metrics.value("hits", endpoint="b") == 1
        assert metrics.value("hits", endpoint="absent") == 0

    def test_gauges_set_and_adjust(self):
        metrics = Metrics()
        metrics.gauge("depth", 5)
        metrics.adjust("depth", -2)
        assert metrics.value("depth") == 3

    def test_observe_is_sum_and_count(self):
        metrics = Metrics()
        metrics.observe("latency", 0.5)
        metrics.observe("latency", 1.5)
        assert metrics.value("latency_sum") == 2.0
        assert metrics.value("latency_count") == 2

    def test_label_values_are_escaped_in_exposition(self):
        metrics = Metrics()
        metrics.inc("requests", path='a"b\\c\nd')
        rendered = metrics.render()
        # Quotes, backslashes, and newlines must not break the text
        # format: exactly one payload line, with escapes.
        (line,) = [
            candidate
            for candidate in rendered.splitlines()
            if candidate.startswith("requests{")
        ]
        assert line == 'requests{path="a\\"b\\\\c\\nd"} 1'

    def test_render_is_sorted_and_typed(self):
        metrics = Metrics()
        metrics.gauge("b_gauge", 1)
        metrics.inc("a_counter")
        rendered = metrics.render()
        assert rendered.index("a_counter") < rendered.index("b_gauge")
        assert "# TYPE a_counter counter" in rendered
        assert "# TYPE b_gauge gauge" in rendered
