"""The coalescing dispatcher: dedup, watermarks, shedding, drain."""

import asyncio
import threading

import pytest

from repro.server.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    Overloaded,
    RequestTooLarge,
)
from repro.server.protocol import ENUMERATE, EVALUATE, SpanRequest
from repro.service.cache import SpannerCache


def request(pattern, documents, mode=ENUMERATE, opt_level=None):
    return SpanRequest(
        mode=mode,
        pattern=pattern,
        documents=tuple(
            (f"doc-{position:05d}", text)
            for position, text in enumerate(documents)
        ),
        opt_level=opt_level,
    )


def run(main):
    return asyncio.run(main())


async def started(config=None, cache=None) -> Dispatcher:
    dispatcher = Dispatcher(config or DispatcherConfig(), cache=cache)
    await dispatcher.start()
    return dispatcher


class TestCoalescing:
    def test_concurrent_requests_share_one_compile(self):
        """N concurrent engine() calls for one pattern: one cache miss."""

        class SlowCache(SpannerCache):
            def __init__(self):
                super().__init__()
                self.calls = 0
                self.release = threading.Event()

            def get(self, source, opt_level=None):
                self.calls += 1
                assert self.release.wait(timeout=10.0)
                return super().get(source, opt_level)

        async def main():
            cache = SlowCache()
            dispatcher = await started(cache=cache)
            ask = request(".*x{a+}.*", ["ba"])
            tasks = [
                asyncio.ensure_future(dispatcher.engine(ask)) for _ in range(8)
            ]
            await asyncio.sleep(0.05)  # everyone queued behind the compile
            cache.release.set()
            engines = await asyncio.gather(*tasks)
            assert cache.calls == 1
            assert all(engine is engines[0] for engine in engines)
            coalesced = dispatcher.metrics.value(
                "repro_compiles_coalesced_total"
            )
            assert coalesced == 7
            # Later calls resolve through the cache's pattern memo and
            # get the same engine.
            assert (await dispatcher.engine(ask)) is engines[0]
            assert cache.stats()["hits"] >= 1
            await dispatcher.close()

        run(main)

    def test_distinct_opt_levels_do_not_coalesce(self):
        async def main():
            dispatcher = await started()
            one = await dispatcher.engine(request("x{a}", ["a"], opt_level=1))
            two = await dispatcher.engine(request("x{a}", ["a"], opt_level=0))
            assert one is not two
            await dispatcher.close()

        run(main)

    def test_compile_error_propagates_and_does_not_wedge(self):
        async def main():
            dispatcher = await started()
            bad = request("x{", ["a"])
            from repro.util.errors import SpannerError

            with pytest.raises(SpannerError):
                await dispatcher.engine(bad)
            # The failed key is forgotten: a good pattern still works.
            engine = await dispatcher.engine(request("x{a}", ["a"]))
            assert engine is not None
            await dispatcher.close()

        run(main)


class TestMicroBatching:
    def test_size_watermark_flushes_immediately(self):
        async def main():
            config = DispatcherConfig(batch_max_size=4, batch_max_delay=30.0)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba", "aa", "ab", "bb"])
            engine = await dispatcher.engine(ask)
            futures = dispatcher.submit(engine, ask)
            # 4 documents == batch_max_size: no timer wait needed.
            results = await asyncio.wait_for(asyncio.gather(*futures), 10.0)
            assert [error for _, error in results] == [None] * 4
            assert dispatcher.metrics.value("repro_batches_total") == 1
            assert (
                dispatcher.metrics.value("repro_batch_documents_sum") == 4
            )
            await dispatcher.close()

        run(main)

    def test_delay_watermark_flushes_partial_batch(self):
        async def main():
            config = DispatcherConfig(batch_max_size=100, batch_max_delay=0.01)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba"])
            engine = await dispatcher.engine(ask)
            (future,) = dispatcher.submit(engine, ask)
            payload, error = await asyncio.wait_for(future, 10.0)
            assert error is None
            assert payload == ({"x": "a"},)
            await dispatcher.close()

        run(main)

    def test_batches_group_across_requests(self):
        async def main():
            config = DispatcherConfig(batch_max_size=100, batch_max_delay=0.02)
            dispatcher = await started(config)
            asks = [request(".*x{a+}.*", [f"b{'a' * n}"]) for n in range(1, 6)]
            engine = await dispatcher.engine(asks[0])
            futures = [dispatcher.submit(engine, ask)[0] for ask in asks]
            await asyncio.wait_for(asyncio.gather(*futures), 10.0)
            # All five single-document requests rode one batch.
            assert dispatcher.metrics.value("repro_batches_total") == 1
            assert dispatcher.metrics.value("repro_batch_documents_sum") == 5
            await dispatcher.close()

        run(main)

    def test_mixed_modes_batch_separately_with_correct_payloads(self):
        async def main():
            config = DispatcherConfig(batch_max_size=100, batch_max_delay=0.01)
            dispatcher = await started(config)
            enumerate_ask = request(".*x{a+}.*", ["ba"], mode=ENUMERATE)
            evaluate_ask = request(".*x{a+}.*", ["ba"], mode=EVALUATE)
            engine = await dispatcher.engine(enumerate_ask)
            (enum_future,) = dispatcher.submit(engine, enumerate_ask)
            (eval_future,) = dispatcher.submit(engine, evaluate_ask)
            (enum_payload, _), (eval_payload, _) = await asyncio.wait_for(
                asyncio.gather(enum_future, eval_future), 10.0
            )
            assert enum_payload == ({"x": "a"},)
            assert eval_payload is True
            assert dispatcher.metrics.value("repro_batches_total") == 2
            await dispatcher.close()

        run(main)

    def test_per_document_error_isolation(self):
        async def main():
            dispatcher = await started(DispatcherConfig(batch_max_delay=0.005))
            ask = request(".*x{a+}.*", ["ba", None, "aa"])  # None explodes
            engine = await dispatcher.engine(ask)
            futures = dispatcher.submit(engine, ask)
            results = await asyncio.wait_for(asyncio.gather(*futures), 10.0)
            assert results[0][1] is None and results[2][1] is None
            assert results[1][0] is None and results[1][1] is not None
            await dispatcher.close()

        run(main)


class TestBackpressure:
    def test_sheds_past_max_pending(self):
        async def main():
            config = DispatcherConfig(
                batch_max_size=100, batch_max_delay=30.0, max_pending=3
            )
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba", "aa"])
            engine = await dispatcher.engine(ask)
            first = dispatcher.submit(engine, ask)  # 2 pending, parked
            with pytest.raises(Overloaded):
                dispatcher.submit(engine, ask)  # 2 + 2 > 3: shed whole
            assert dispatcher.metrics.value("repro_shed_total") == 2
            # Shedding queued nothing: pending still 2, and room for 1.
            assert dispatcher.stats()["pending_documents"] == 2
            single = request(".*x{a+}.*", ["ab"])
            extra = dispatcher.submit(engine, single)
            dispatcher.flush_all()
            await asyncio.wait_for(
                asyncio.gather(*first, *extra), 10.0
            )
            assert dispatcher.stats()["pending_documents"] == 0
            await dispatcher.close()

        run(main)

    def test_request_larger_than_queue_is_rejected_not_shed(self):
        async def main():
            config = DispatcherConfig(max_pending=2)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba", "aa", "ab"])  # 3 > 2
            engine = await dispatcher.engine(ask)
            # Even with an empty queue a retry could never succeed, so
            # this is RequestTooLarge (HTTP 413), not Overloaded (429).
            with pytest.raises(RequestTooLarge):
                dispatcher.submit(engine, ask)
            assert dispatcher.stats()["pending_documents"] == 0
            await dispatcher.close()

        run(main)


class TestDrain:
    def test_close_flushes_parked_batches(self):
        async def main():
            config = DispatcherConfig(batch_max_size=100, batch_max_delay=30.0)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba", "aa"])
            engine = await dispatcher.engine(ask)
            futures = dispatcher.submit(engine, ask)
            assert not any(future.done() for future in futures)
            await asyncio.wait_for(dispatcher.close(), 10.0)
            results = [future.result() for future in futures]
            assert [error for _, error in results] == [None, None]

        run(main)

    def test_submissions_during_drain_flush_immediately(self):
        async def main():
            config = DispatcherConfig(batch_max_size=100, batch_max_delay=30.0)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba"])
            engine = await dispatcher.engine(ask)
            dispatcher.flush_all()  # drain phase: no watermark waits now
            (future,) = dispatcher.submit(engine, ask)
            payload, error = await asyncio.wait_for(future, 10.0)
            assert error is None and payload == ({"x": "a"},)
            await dispatcher.close()
            with pytest.raises(RuntimeError):
                dispatcher.submit(engine, ask)

        run(main)


class TestNaiveMode:
    def test_no_cache_no_batching(self):
        async def main():
            dispatcher = await started(DispatcherConfig(naive=True))
            ask = request(".*x{a+}.*", ["ba", "aa"])
            first = await dispatcher.engine(ask)
            second = await dispatcher.engine(ask)
            assert first is not second  # every request compiles afresh
            futures = dispatcher.submit(first, ask)
            results = await asyncio.wait_for(asyncio.gather(*futures), 10.0)
            assert [error for _, error in results] == [None, None]
            # One "batch" per document, none grouped.
            assert dispatcher.metrics.value("repro_batches_total") == 0
            await dispatcher.close()

        run(main)


class TestWorkerPoolMode:
    def test_batches_run_on_worker_processes(self):
        async def main():
            config = DispatcherConfig(workers=2, batch_max_delay=0.005)
            dispatcher = await started(config)
            ask = request(".*x{a+}.*", ["ba", "aa", "bb"])
            engine = await dispatcher.engine(ask)
            futures = dispatcher.submit(engine, ask)
            results = await asyncio.wait_for(asyncio.gather(*futures), 30.0)
            payloads = [payload for payload, _ in results]
            assert payloads[0] == ({"x": "a"},)
            assert payloads[2] == ()
            await dispatcher.close()

        run(main)
