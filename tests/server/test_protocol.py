"""The wire protocol: parsing, validation, and response encoding."""

import json

import pytest

from repro.server.protocol import (
    ENUMERATE,
    EVALUATE,
    NDJSON_CONTENT_TYPE,
    ProtocolError,
    encode_result_line,
    encode_results,
    parse_request,
    result_entry,
)


def parse(payload, mode=ENUMERATE, content_type=""):
    raw = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    return parse_request(raw, mode, content_type)


class TestJsonRequests:
    def test_single_document(self):
        request = parse({"pattern": "x{a}", "document": "ab"})
        assert request.pattern == "x{a}"
        assert request.documents == (("doc-00000", "ab"),)
        assert request.opt_level is None and request.spans is False

    def test_document_list_generates_ids(self):
        request = parse({"pattern": "x{a}", "documents": ["ab", "ba"]})
        assert [doc_id for doc_id, _ in request.documents] == [
            "doc-00000",
            "doc-00001",
        ]

    def test_document_objects_and_mapping(self):
        by_objects = parse(
            {
                "pattern": "x{a}",
                "documents": [{"id": "left", "text": "ab"}, {"text": "ba"}],
            }
        )
        assert by_objects.documents == (("left", "ab"), ("doc-00001", "ba"))
        by_mapping = parse(
            {"pattern": "x{a}", "documents": {"one": "ab", "two": "ba"}}
        )
        assert by_mapping.documents == (("one", "ab"), ("two", "ba"))

    def test_options(self):
        request = parse(
            {"pattern": "x{a}", "document": "a", "opt_level": 2, "spans": True}
        )
        assert request.opt_level == 2 and request.spans is True
        assert request.key == ("x{a}", 2)

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"document": "a"}, "pattern"),
            ({"pattern": "", "document": "a"}, "pattern"),
            ({"pattern": "x{a}"}, "exactly one"),
            ({"pattern": "x{a}", "document": "a", "documents": ["b"]}, "exactly one"),
            ({"pattern": "x{a}", "documents": []}, "empty"),
            ({"pattern": "x{a}", "documents": 7}, "list or an object"),
            ({"pattern": "x{a}", "document": 7}, "string"),
            ({"pattern": "x{a}", "documents": [{"id": "d"}]}, "text"),
            ({"pattern": "x{a}", "document": "a", "opt_level": 9}, "opt_level"),
            ({"pattern": "x{a}", "document": "a", "spans": "yes"}, "boolean"),
            (
                {
                    "pattern": "x{a}",
                    "documents": [{"id": "d", "text": "a"}, {"id": "d", "text": "b"}],
                },
                "duplicate",
            ),
        ],
    )
    def test_rejections(self, payload, message):
        with pytest.raises(ProtocolError, match=message):
            parse(payload)

    def test_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            parse(b"{not json")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse(b'["list"]')


class TestNdjsonRequests:
    def encode(self, *lines) -> bytes:
        return ("\n".join(json.dumps(line) for line in lines) + "\n").encode()

    def test_header_then_documents(self):
        request = parse_request(
            self.encode({"pattern": "x{a}"}, "ab", {"id": "d2", "text": "ba"}),
            ENUMERATE,
            NDJSON_CONTENT_TYPE,
        )
        assert request.ndjson is True
        assert request.documents == (("doc-00000", "ab"), ("d2", "ba"))

    def test_rejects_documents_in_header(self):
        with pytest.raises(ProtocolError, match="unknown NDJSON header"):
            parse_request(
                self.encode({"pattern": "x{a}", "documents": ["a"]}),
                ENUMERATE,
                NDJSON_CONTENT_TYPE,
            )

    def test_rejects_empty_and_headerless(self):
        with pytest.raises(ProtocolError, match="empty"):
            parse_request(b"", ENUMERATE, NDJSON_CONTENT_TYPE)
        with pytest.raises(ProtocolError, match="no document lines"):
            parse_request(
                self.encode({"pattern": "x{a}"}), ENUMERATE, NDJSON_CONTENT_TYPE
            )

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ProtocolError, match="duplicate"):
            parse_request(
                self.encode(
                    {"pattern": "x{a}"},
                    {"id": "d", "text": "a"},
                    {"id": "d", "text": "b"},
                ),
                ENUMERATE,
                NDJSON_CONTENT_TYPE,
            )


class TestResponses:
    def test_evaluate_entry_carries_verdict(self):
        request = parse({"pattern": "x{a}", "document": "a"}, mode=EVALUATE)
        assert result_entry(request, "d", True, None) == {
            "doc": "d",
            "error": None,
            "matches": True,
        }
        assert result_entry(request, "d", None, "boom")["matches"] is None

    def test_enumerate_entry_decodes_spans(self):
        from repro.spans.span import Span

        request = parse(
            {"pattern": "x{a}", "document": "a", "spans": True}
        )
        entry = result_entry(request, "d", [{"x": Span(1, 2)}], None)
        assert entry["mappings"] == [{"x": [1, 2]}]

    def test_encode_results_is_canonical_json(self):
        request = parse({"pattern": "x{a}", "document": "a"})
        body = encode_results(
            request, [result_entry(request, "d", [{"x": "a"}], None)]
        )
        decoded = json.loads(body)
        assert decoded["pattern"] == "x{a}"
        assert decoded["results"][0]["mappings"] == [{"x": "a"}]

    def test_result_line_is_one_json_line(self):
        request = parse({"pattern": "x{a}", "document": "a"})
        line = encode_result_line(request, "d", [], None)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert json.loads(line) == {"doc": "d", "error": None, "mappings": []}
