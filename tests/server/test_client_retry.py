"""ServerClient's typed Retry-After handling (422/429 refusals).

A scripted raw-socket stub plays the server side so the tests control
exactly which status and headers come back, without having to force a
real server into overload.
"""

import json
import socket
import threading

import pytest

from repro.server import RetryLaterError, ServerClient, ServerResponseError


class ScriptedServer:
    """Answers one scripted response per connection, then closes it."""

    def __init__(self, responses: list[bytes]) -> None:
        self._responses = list(responses)
        self.requests: list[bytes] = []
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "ScriptedServer":
        self._thread.start()
        return self

    def _serve(self) -> None:
        for response in self._responses:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                chunks = b""
                while b"\r\n\r\n" not in chunks:
                    data = connection.recv(65536)
                    if not data:
                        break
                    chunks += data
                head, _, rest = chunks.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                while len(rest) < length:
                    rest += connection.recv(65536)
                self.requests.append(head + b"\r\n\r\n" + rest)
                connection.sendall(response)

    def __exit__(self, *exc_info) -> None:
        self._listener.close()
        self._thread.join(timeout=5.0)


def _response(
    status: int, reason: str, payload: dict, *headers: str
) -> bytes:
    body = json.dumps(payload).encode()
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *headers,
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


SHED = _response(
    429, "Too Many Requests", {"error": "queue full"}, "Retry-After: 0.05"
)
BREAKER = _response(
    422,
    "Unprocessable Entity",
    {"error": "circuit breaker open"},
    "Retry-After: 2",
)
OK = _response(200, "OK", {"pattern": "x{a}", "results": []})


def test_429_with_hint_raises_typed_error():
    with ScriptedServer([SHED]) as server:
        client = ServerClient(*server.address)
        try:
            with pytest.raises(RetryLaterError) as caught:
                client.evaluate("x{a}", ["a"])
        finally:
            client.close()
    assert caught.value.status == 429
    assert caught.value.retry_after == pytest.approx(0.05)
    # The typed error still is a ServerResponseError for old callers.
    assert isinstance(caught.value, ServerResponseError)


def test_422_with_hint_raises_typed_error():
    with ScriptedServer([BREAKER]) as server:
        client = ServerClient(*server.address)
        try:
            with pytest.raises(RetryLaterError) as caught:
                client.enumerate("x{a}", ["a"])
        finally:
            client.close()
    assert caught.value.status == 422
    assert caught.value.retry_after == pytest.approx(2.0)


def test_4xx_without_hint_stays_plain():
    with ScriptedServer(
        [_response(400, "Bad Request", {"error": "bad pattern"})]
    ) as server:
        client = ServerClient(*server.address)
        try:
            with pytest.raises(ServerResponseError) as caught:
                client.evaluate("x{a}", ["a"])
        finally:
            client.close()
    assert caught.value.status == 400
    assert not isinstance(caught.value, RetryLaterError)


def test_retries_honour_the_hint_and_resend():
    with ScriptedServer([SHED, SHED, OK]) as server:
        client = ServerClient(*server.address, retries=3)
        try:
            reply = client.evaluate("x{a}", ["a"])
        finally:
            client.close()
        assert reply == {"pattern": "x{a}", "results": []}
        assert len(server.requests) == 3


def test_retry_budget_exhausted_reraises():
    with ScriptedServer([SHED, SHED]) as server:
        client = ServerClient(*server.address, retries=1)
        try:
            with pytest.raises(RetryLaterError):
                client.evaluate("x{a}", ["a"])
        finally:
            client.close()
        assert len(server.requests) == 2


def test_ndjson_path_raises_typed_error():
    with ScriptedServer([SHED]) as server:
        client = ServerClient(*server.address)
        try:
            with pytest.raises(RetryLaterError):
                client.enumerate_ndjson("x{a}", ["a"])
        finally:
            client.close()
