"""Server resilience: compile breakers, degraded mode, drain timeouts,
client connect retries."""

import asyncio
import http.client
import socket
import threading
import time

import pytest

from repro.engine.compiled import compile_spanner
from repro.server import (
    ServerClient,
    ServerConfig,
    ServerResponseError,
    ServerThread,
)
from repro.service import faults

PATTERN = ".*x{a+}.*"


class TestServerConfigValidation:
    def test_zero_or_negative_drain_grace_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(drain_grace=0)
        with pytest.raises(ValueError):
            ServerConfig(drain_grace=-1)

    def test_negative_batch_delay_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(batch_max_delay=-0.001)
        ServerConfig(batch_max_delay=0)  # zero means flush immediately: fine

    def test_nonpositive_task_timeout_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(task_timeout=0)
        with pytest.raises(ValueError):
            ServerConfig(task_timeout=-2)
        ServerConfig(task_timeout=1.5)
        ServerConfig(task_timeout=None)

    def test_resilience_knobs_validated(self):
        with pytest.raises(ValueError):
            ServerConfig(max_rebuilds=-1)
        with pytest.raises(ValueError):
            ServerConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ServerConfig(breaker_reset=0)
        with pytest.raises(ValueError):
            ServerConfig(degraded_reset=0)


@pytest.mark.chaos
class TestCompileBreaker:
    def test_breaker_opens_to_422_then_recovers(self):
        config = ServerConfig(port=0, breaker_threshold=2, breaker_reset=0.3)
        with ServerThread(config) as server:
            client = ServerClient(*server.address)
            with faults.injected("compile", "fail"):
                for _ in range(2):
                    with pytest.raises(ServerResponseError) as caught:
                        client.enumerate(PATTERN, ["baa"])
                    assert caught.value.status == 500
                # Threshold reached: the breaker now fails fast.
                with pytest.raises(ServerResponseError) as caught:
                    client.enumerate(PATTERN, ["baa"])
                assert caught.value.status == 422
            # Disarmed, but the reset window has not passed yet.
            with pytest.raises(ServerResponseError) as caught:
                client.enumerate(PATTERN, ["baa"])
            assert caught.value.status == 422
            health = client.healthz()
            assert health["breakers"]["open"] >= 1
            time.sleep(config.breaker_reset + 0.05)
            # The half-open probe compiles cleanly and closes the breaker.
            reply = client.enumerate(PATTERN, ["baa"])
            assert reply["results"][0]["mappings"]
            assert client.healthz()["breakers"]["open"] == 0
            client.close()

    def test_422_carries_retry_after(self):
        config = ServerConfig(port=0, breaker_threshold=1, breaker_reset=30.0)
        with ServerThread(config) as server:
            client = ServerClient(*server.address)
            with faults.injected("compile", "fail"):
                with pytest.raises(ServerResponseError):
                    client.enumerate(PATTERN, ["baa"])
            client.close()
            connection = http.client.HTTPConnection(
                *server.address, timeout=10
            )
            connection.request(
                "POST",
                "/enumerate",
                body=(
                    '{"pattern": ".*x{a+}.*", "document": "baa"}'
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 422
            assert int(response.getheader("Retry-After")) >= 1
            connection.close()

    def test_breakers_are_per_pattern(self):
        config = ServerConfig(port=0, breaker_threshold=1, breaker_reset=30.0)
        with ServerThread(config) as server:
            client = ServerClient(*server.address)
            with faults.injected("compile", "once"):
                with pytest.raises(ServerResponseError):
                    client.enumerate(PATTERN, ["baa"])
            with pytest.raises(ServerResponseError) as caught:
                client.enumerate(PATTERN, ["baa"])
            assert caught.value.status == 422
            # A different pattern has its own (closed) breaker.
            reply = client.enumerate(".*y{b+}.*", ["abb"])
            assert reply["results"][0]["mappings"]
            client.close()


@pytest.mark.chaos
class TestDegradedMode:
    def test_healthz_flips_degraded_and_recovers(self, monkeypatch):
        """Workers die, rebuild budget is zero: the server answers the
        batch in-process, /healthz reads ``degraded``, and after the
        reset window a healthy pool flips it back to ``ok``."""
        monkeypatch.setenv(faults.POISON_ENV, "KILLME")
        config = ServerConfig(
            port=0, workers=2, max_rebuilds=0, degraded_reset=0.4
        )
        with ServerThread(config) as server:
            client = ServerClient(*server.address)
            assert client.healthz()["status"] == "ok"

            reply = client.enumerate(PATTERN, ["baa KILLME baa"])
            # Degraded, not failed: the inline fallback still answered.
            expected = [
                dict(mapping)
                for mapping in compile_spanner(PATTERN).extract(
                    "baa KILLME baa"
                )
            ]
            assert reply["results"][0]["mappings"] == expected
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["pool"]["alive"] is False
            metrics = client.metrics_text()
            assert "repro_degraded 1" in metrics

            monkeypatch.delenv(faults.POISON_ENV)
            time.sleep(config.degraded_reset + 0.05)
            reply = client.enumerate(PATTERN, ["baa"])
            assert reply["results"][0]["mappings"]
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["degraded"] is False
            assert health["pool"]["alive"] is True
            assert "repro_degraded 0" in client.metrics_text()
            client.close()

    def test_worker_restart_metrics_published(self, tmp_path):
        """A single injected worker kill with rebuild budget left: the
        pool recovers and /metrics reports the restart and retry."""
        config = ServerConfig(port=0, workers=2)
        with faults.injected("worker_kill", "1", state_dir=str(tmp_path)):
            with ServerThread(config) as server:
                client = ServerClient(*server.address)
                reply = client.enumerate(PATTERN, ["baa", "ba"])
                assert [r["mappings"] is not None for r in reply["results"]]
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    metrics = client.metrics_text()
                    if "repro_worker_restarts_total 1" in metrics:
                        break
                    time.sleep(0.05)
                assert "repro_worker_restarts_total 1" in metrics
                assert "repro_task_retries_total 1" in metrics
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["pool"]["worker_restarts"] == 1
                client.close()


class TestDrainTimeout:
    def test_overrunning_drain_is_logged_not_raised(self, capsys):
        """A drain that blows its budget prints a warning and returns —
        the caller wanted the server stopped, not an exception."""
        thread = ServerThread(ServerConfig(port=0))
        with thread:
            real_drain = thread.server.drain

            async def wedged_drain():
                await asyncio.sleep(5.0)
                await real_drain()

            thread.server.drain = wedged_drain
            started = time.monotonic()
            thread.drain(timeout=0.2)  # must not raise
            assert time.monotonic() - started < 2.0
            assert "drain did not finish" in capsys.readouterr().err
            thread.server.drain = real_drain
        # __exit__ re-drained for real; the loop is gone.
        assert thread._loop.is_closed()


class TestClientConnectRetries:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServerClient("127.0.0.1", 1, retries=-1)

    def test_default_fails_fast_on_refused_connect(self):
        port = _free_port()
        client = ServerClient("127.0.0.1", port, timeout=2.0)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.healthz()
        assert time.monotonic() - started < 1.0

    def test_retries_back_off_before_giving_up(self):
        port = _free_port()
        client = ServerClient("127.0.0.1", port, timeout=2.0, retries=3)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.healthz()
        # 0.05 + 0.1 + 0.2 of backoff sleeps before the final attempt.
        assert time.monotonic() - started >= 0.3

    def test_retries_bridge_a_late_listener(self):
        port = _free_port()

        def listen_later():
            time.sleep(0.3)
            with socket.create_server(("127.0.0.1", port)) as server:
                connection, _ = server.accept()
                connection.recv(4096)
                body = b'{"status": "ok"}'
                connection.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n"
                    + body
                )
                connection.close()

        listener = threading.Thread(target=listen_later, daemon=True)
        listener.start()
        client = ServerClient("127.0.0.1", port, timeout=5.0, retries=8)
        try:
            assert client.healthz()["status"] == "ok"
        finally:
            client.close()
            listener.join(timeout=5)

    def test_retries_work_against_a_live_server(self):
        with ServerThread(ServerConfig(port=0)) as server:
            client = ServerClient(*server.address, retries=2)
            assert client.healthz()["status"] == "ok"
            client.close()


def _free_port() -> int:
    with socket.socket() as holder:
        holder.bind(("127.0.0.1", 0))
        return holder.getsockname()[1]
