"""The /query endpoint: server-side query registry, shared-engine batches."""

import json

import pytest

from repro.server import (
    ServerClient,
    ServerConfig,
    ServerResponseError,
    ServerThread,
)

SELLER = ".*Seller: x{[^,]*}, ID y{[0-9]+}.*"
DOC = "Seller: John, ID 75"


@pytest.fixture()
def server():
    config = ServerConfig(port=0, batch_max_delay=0.001)
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServerClient(*server.address) as connection:
        yield connection


class TestRegistration:
    def test_register_only(self, client):
        reply = client.query(register={"sellers": SELLER})
        assert reply["registered"] == ["sellers"]
        assert "sellers" in reply["queries"]
        assert "results" not in reply

    def test_registry_persists_across_requests(self, client):
        client.query(register={"sellers": SELLER})
        reply = client.query(documents=[DOC])
        assert reply["registered"] == []
        entry = reply["results"][0]
        assert entry["error"] is None
        assert entry["queries"]["sellers"] == [
            {"x": "John", "y": "7"},
            {"x": "John", "y": "75"},
        ]

    def test_register_and_evaluate_in_one_request(self, client):
        reply = client.query(
            register={
                "sellers": SELLER,
                "names": {
                    "op": "project",
                    "of": {"op": "ref", "name": "sellers"},
                    "keep": ["x"],
                },
            },
            documents=[DOC],
        )
        assert sorted(reply["registered"]) == ["names", "sellers"]
        queries = reply["results"][0]["queries"]
        assert queries["names"] == [{"x": "John"}]
        assert queries["sellers"] == [
            {"x": "John", "y": "7"},
            {"x": "John", "y": "75"},
        ]

    def test_evaluate_subset_by_name(self, client):
        reply = client.query(
            register={
                "sellers": SELLER,
                "names": {
                    "op": "project",
                    "of": {"op": "ref", "name": "sellers"},
                    "keep": ["x"],
                },
            },
            documents=[DOC],
            evaluate=["names"],
        )
        assert reply["queries"] == ["names"]
        assert set(reply["results"][0]["queries"]) == {"names"}

    def test_spans_mode(self, client):
        reply = client.query(
            register={"q": "x{a+}b"}, documents=["aab"], spans=True
        )
        assert reply["results"][0]["queries"]["q"] == [{"x": [1, 3]}]


class TestQueryErrors:
    def test_bad_query_is_400_at_registration(self, client):
        with pytest.raises(ServerResponseError) as caught:
            client.query(register={"broken": "x{"})
        assert caught.value.status == 400
        assert "bad query" in caught.value.message
        # The broken query must not have poisoned the registry.
        reply = client.query(register={"ok": "x{a}"}, documents=["a"])
        assert reply["results"][0]["queries"]["ok"] == [{"x": "a"}]

    def test_unknown_name_is_400(self, client):
        client.query(register={"sellers": SELLER})
        with pytest.raises(ServerResponseError) as caught:
            client.query(documents=[DOC], evaluate=["ghost"])
        assert caught.value.status == 400

    def test_evaluate_against_empty_registry_is_400(self, client):
        with pytest.raises(ServerResponseError) as caught:
            client.query(documents=[DOC])
        assert caught.value.status == 400

    def test_empty_request_is_400(self, client):
        status, raw = client.request_raw("POST", "/query", b"{}")
        assert status == 400
        assert "register" in json.loads(raw)["error"]

    def test_get_is_405(self, client):
        status, _ = client.request_raw("GET", "/query")
        assert status == 405

    def test_ndjson_content_type_rejected(self, client):
        status, raw = client.request_raw(
            "POST",
            "/query",
            b'{"register": {"q": "x{a}"}}',
            content_type="application/x-ndjson",
        )
        assert status == 400
        assert "JSON" in json.loads(raw)["error"]


class TestMetrics:
    def test_queryset_gauges_exported(self, client):
        client.query(register={"sellers": SELLER}, documents=[DOC])
        status, raw = client.request_raw("GET", "/metrics")
        assert status == 200
        text = raw.decode()
        assert "repro_queryset_queries 1" in text
        assert "repro_queryset_cores 1" in text
