"""End-to-end HTTP: routes, streaming, shedding, graceful drain."""

import json
import threading
import time

import pytest

from repro.server import (
    ServerClient,
    ServerConfig,
    ServerResponseError,
    ServerThread,
)


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, batch_max_delay=0.001)
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServerClient(*server.address) as connection:
        yield connection


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 0

    def test_evaluate_returns_verdicts(self, client):
        reply = client.evaluate("x{a}b", ["ab", "zz"])
        assert [entry["matches"] for entry in reply["results"]] == [True, False]

    def test_enumerate_matches_engine_output(self, client):
        from repro.engine.compiled import compile_spanner

        reply = client.enumerate(".*x{a+}.*", ["baa"])
        assert (
            reply["results"][0]["mappings"]
            == compile_spanner(".*x{a+}.*").extract("baa")
        )

    def test_enumerate_spans_mode(self, client):
        reply = client.enumerate(".*x{a+}.*", ["ba"], spans=True)
        assert reply["results"][0]["mappings"] == [{"x": [2, 3]}]

    def test_single_document_shorthand(self, client):
        reply = client.evaluate("x{a}b", "ab")
        assert reply["results"][0]["matches"] is True

    def test_ndjson_round_trip_preserves_ids_and_order(self, client):
        lines = client.enumerate_ndjson(
            ".*x{a+}.*", [("second", "bb"), ("first", "ba")]
        )
        assert [line["doc"] for line in lines] == ["second", "first"]
        assert lines[1]["mappings"] == [{"x": "a"}]

    def test_per_document_errors_do_not_poison_the_batch(self, client):
        # A document whose evaluation blows past the FPT sweep budget
        # would be ideal, but a plain engine error is hard to trigger
        # with valid text — so check the contract at the protocol level:
        # results arrive per document, errors nulled.
        reply = client.enumerate("x{a}", ["a", "b"])
        assert [entry["error"] for entry in reply["results"]] == [None, None]

    def test_metrics_exposition(self, client):
        client.evaluate("x{a}b", ["ab"])
        text = client.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="evaluate"}' in text
        assert "repro_documents_total" in text
        assert "repro_queue_depth" in text

    def test_unknown_paths_share_one_metric_label(self, client):
        for path in ("/nope", '/a"b', "/random-123"):
            client.request_raw("GET", path)
        text = client.metrics_text()
        # Client-chosen paths must not mint label values (unbounded
        # cardinality, exposition injection): they all count as "other".
        assert 'endpoint="other"' in text
        assert "nope" not in text and "random-123" not in text


class TestHttpErrors:
    def test_bad_pattern_is_400(self, client):
        with pytest.raises(ServerResponseError) as caught:
            client.enumerate("x{", ["a"])
        assert caught.value.status == 400
        assert "bad pattern" in caught.value.message

    def test_malformed_body_is_400(self, client):
        status, raw = client.request_raw("POST", "/evaluate", b"{nope")
        assert status == 400
        assert "invalid JSON" in json.loads(raw)["error"]

    def test_unknown_route_is_404(self, client):
        status, _ = client.request_raw("GET", "/nope")
        assert status == 404

    def test_get_on_post_endpoint_is_405(self, client):
        status, _ = client.request_raw("GET", "/evaluate")
        assert status == 405

    def test_request_larger_than_queue_is_413(self):
        config = ServerConfig(port=0, max_pending=2)
        with ServerThread(config) as small:
            with ServerClient(*small.address) as client:
                with pytest.raises(ServerResponseError) as caught:
                    client.evaluate("x{a}b", ["ab", "ba", "bb"])
                assert caught.value.status == 413
                assert "split" in caught.value.message

    def test_oversized_body_is_413(self, server):
        import http.client

        connection = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.putrequest("POST", "/evaluate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(64 * 1024 * 1024))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

    def test_keep_alive_across_requests(self, client):
        # The same ServerClient connection serves several round-trips.
        for _ in range(3):
            assert client.healthz()["status"] == "ok"


class TestBackpressure:
    def test_sheds_with_429_when_queue_is_full(self):
        config = ServerConfig(
            port=0,
            batch_max_delay=30.0,
            batch_max_size=10_000,
            max_pending=1,
        )
        with ServerThread(config) as server:
            host, port = server.address
            replies = {}

            def park():
                with ServerClient(host, port) as parked:
                    replies["parked"] = parked.enumerate(".*x{a}.*", ["za"])

            thread = threading.Thread(target=park)
            thread.start()
            deadline = time.monotonic() + 10.0
            dispatcher = server.server.dispatcher
            while time.monotonic() < deadline:
                if dispatcher.stats()["pending_documents"] == 1:
                    break
                time.sleep(0.005)
            with ServerClient(host, port) as client:
                with pytest.raises(ServerResponseError) as caught:
                    client.enumerate(".*x{a}.*", ["za"])
                assert caught.value.status == 429
            server.drain()
            thread.join(timeout=10)
        # The parked request was not lost by the shed or the drain.
        assert replies["parked"]["results"][0]["mappings"] == [{"x": "a"}]


class TestGracefulDrain:
    def test_inflight_requests_survive_drain(self):
        config = ServerConfig(
            port=0, batch_max_delay=30.0, batch_max_size=10_000
        )
        answers = {}
        with ServerThread(config) as server:
            host, port = server.address

            def post(position):
                with ServerClient(host, port) as client:
                    answers[position] = client.evaluate("x{a}b", ["ab"])

            threads = [
                threading.Thread(target=post, args=(position,))
                for position in range(6)
            ]
            for thread in threads:
                thread.start()
            dispatcher = server.server.dispatcher
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if dispatcher.stats()["pending_documents"] >= 6:
                    break
                time.sleep(0.005)
            server.drain()
            for thread in threads:
                thread.join(timeout=10)
        assert sorted(answers) == list(range(6))
        assert all(
            reply["results"][0]["matches"] is True
            for reply in answers.values()
        )

    def test_drain_is_idempotent_and_health_reports_it(self):
        with ServerThread(ServerConfig(port=0)) as server:
            server.drain()
            server.drain()
        # exiting the context drains a third time; nothing raises


class TestArtifactCache:
    def test_restart_serves_from_warm_artifacts(self, tmp_path):
        """A restarted server answers its first request without recompiling.

        The cold instance compiles and persists the engine; the warm
        instance (same artifact directory) must report an artifact hit
        and zero compiles-from-scratch, with identical output.
        """
        directory = str(tmp_path)

        def run_once():
            config = ServerConfig(
                port=0, batch_max_delay=0.001, artifact_dir=directory
            )
            with ServerThread(config) as server:
                with ServerClient(*server.address) as client:
                    response = client.enumerate(".*x{a+}.*", ["baa"])
                    metrics = client.metrics_text()
            gauges = {
                line.split()[0]: float(line.split()[1])
                for line in metrics.splitlines()
                if line.startswith("repro_artifact_")
            }
            return response, gauges

        cold, cold_gauges = run_once()
        warm, warm_gauges = run_once()
        assert warm == cold
        assert cold_gauges["repro_artifact_misses"] == 1
        assert cold_gauges["repro_artifact_saves"] == 1
        assert warm_gauges["repro_artifact_hits"] == 1
        assert warm_gauges["repro_artifact_misses"] == 0

    def test_worker_pool_reads_the_artifact_dir(self, tmp_path):
        # Shared-memory segments would satisfy the workers before they
        # ever touch the artifact directory; force the disk path — this
        # test is about the artifact fallback chain staying intact.
        directory = str(tmp_path)
        config = ServerConfig(
            port=0,
            workers=2,
            batch_max_delay=0.005,
            artifact_dir=directory,
            shared_memory=False,
        )
        with ServerThread(config) as server:
            with ServerClient(*server.address) as client:
                expected = client.enumerate(".*x{a+}.*", ["baa"])
        # Restart with workers: the batches evaluated in worker processes
        # must warm-load the artifact the first run saved.
        with ServerThread(config) as server:
            with ServerClient(*server.address) as client:
                assert client.enumerate(".*x{a+}.*", ["baa"]) == expected
                deadline = time.time() + 5
                hits = 0.0
                while time.time() < deadline:
                    metrics = client.metrics_text()
                    gauges = {
                        line.split()[0]: float(line.split()[1])
                        for line in metrics.splitlines()
                        if line.startswith("repro_artifact_")
                    }
                    # dispatcher hit + at least one worker-side hit
                    hits = gauges.get("repro_artifact_hits", 0.0)
                    if hits >= 2:
                        break
                    time.sleep(0.05)
        assert hits >= 2


class TestWorkerProcesses:
    def test_server_on_worker_pool(self):
        config = ServerConfig(port=0, workers=2, batch_max_delay=0.005)
        with ServerThread(config) as server:
            with ServerClient(*server.address) as client:
                first = client.enumerate(".*x{a+}.*", ["baa"])
                second = client.enumerate(".*x{a+}.*", ["baa"])
        assert first == second
        assert first["results"][0]["mappings"] == [
            {"x": "a"},
            {"x": "aa"},
            {"x": "a"},
        ]
