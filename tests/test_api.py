"""The repro.api facade: one surface, CLI-consistent names, clean imports."""

import inspect
import subprocess
import sys

import pytest

SRC = "src"


def _run(code: str, *warning_flags: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *warning_flags, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
    )


class TestFacade:
    def test_compile_extract(self):
        from repro import api

        assert api.compile("x{a+}b").extract("aab") == [{"x": "aa"}]

    def test_compile_accepts_json_specs(self):
        from repro import api

        engine = api.compile({"op": "union", "of": ["x{a}.*", ".*y{b}"]})
        assert engine.count("ab") == 2

    def test_evaluate_streams_corpus_results(self):
        from repro import api

        results = list(api.evaluate(".*x{a+}.*", {"one": "ba", "two": "bb"}))
        assert [(r.doc_id, r.mappings) for r in results] == [
            ("one", ({"x": "a"},)),
            ("two", ()),
        ]

    def test_enumerate_is_lazy_and_ordered(self):
        from repro import api

        stream = api.enumerate(".*x{a+}.*", "ba")
        assert inspect.isgenerator(stream)
        assert list(stream) == [{"x": "a"}]

    def test_query_builds_a_shared_queryset(self):
        from repro import api

        queries = api.query(
            {
                "pair": "x{a+}b",
                "left": {
                    "op": "project",
                    "of": {"op": "ref", "name": "pair"},
                    "keep": ["x"],
                },
            }
        )
        assert queries.stats()["cores"] == 1
        assert queries.extract("aab")["left"] == [{"x": "aa"}]

    def test_query_with_corpus_evaluates_directly(self):
        from repro import api

        results = list(api.query({"q": "x{a}b"}, ["ab", "bb"]))
        assert [r.queries["q"] for r in results] == [[{"x": "a"}], []]

    def test_parameter_names_match_cli_flags(self):
        # The facade promises CLI-consistent names: opt_level, workers,
        # batch_size, spans.  A rename here is an API break.
        from repro import api

        for function, expected in [
            (api.compile, {"opt_level"}),
            (api.evaluate, {"opt_level", "workers", "batch_size", "spans"}),
            (api.enumerate, {"opt_level", "spans"}),
            (api.query, {"opt_level", "workers", "batch_size", "spans"}),
        ]:
            parameters = set(inspect.signature(function).parameters)
            missing = expected - parameters
            assert not missing, (function.__name__, missing)


class TestDeprecationPolicy:
    def test_importing_the_facade_is_warning_free(self):
        proc = _run("import repro.api", "-W", "error::DeprecationWarning")
        assert proc.returncode == 0, proc.stderr

    def test_import_repro_is_warning_free(self):
        proc = _run("import repro", "-W", "error::DeprecationWarning")
        assert proc.returncode == 0, proc.stderr

    @pytest.mark.parametrize(
        "access",
        [
            "import repro; repro.Spanner",
            "import repro; repro.compile_spanner",
            "import repro.engine; repro.engine.compile_spanner",
            "import repro.service; repro.service.cached_spanner",
            "from repro import Spanner",
            "from repro.engine import compile_spanner",
            "from repro.service import cached_spanner",
        ],
    )
    def test_deprecated_entry_points_warn_exactly_once(self, access):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('default')\n"
            f"    {access}\n"
            f"    {access}\n"
            "deprecations = [w for w in caught "
            "if issubclass(w.category, DeprecationWarning)]\n"
            "assert len(deprecations) == 1, deprecations\n"
            "message = str(deprecations[0].message)\n"
            "assert 'repro.api.compile' in message, message\n"
            "assert 'deprecated' in message, message\n"
        )
        proc = _run(code)
        assert proc.returncode == 0, proc.stderr

    def test_deprecated_entry_points_still_work(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro import Spanner

            assert Spanner.compile("x{a}b").extract("ab") == [{"x": "a"}]
