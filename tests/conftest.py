"""Shared pytest configuration: the ``slow``/``differential``/``chaos`` split.

The tier-1 loop (``pytest -x -q``) must stay fast, so:

* tests marked ``slow`` are *skipped* by default — opt in with
  ``--run-slow`` or an explicit ``-m slow`` / ``-m "slow or ..."``
  selection (CI's dedicated job does the latter);
* tests marked ``differential`` always run, but their hypothesis example
  budget defaults low and scales up through the
  ``REPRO_DIFFERENTIAL_EXAMPLES`` environment variable — the dedicated
  CI job sets it to a few hundred, the default run stays cheap;
* tests marked ``chaos`` (fault injection against live worker pools)
  always run too, with their corpus size scaled the same way through
  ``REPRO_CHAOS_DOCS`` — the default already satisfies the ≥200-document
  recovery acceptance bar, the CI chaos lane can push it higher.

:func:`differential_examples` and :func:`chaos_docs` are the one place
each budget is read, so every suite scales together.
"""

import os

import pytest

#: Default hypothesis example budget for ``differential`` suites.
_DEFAULT_DIFFERENTIAL_EXAMPLES = 25

#: Default corpus size for ``chaos`` fault-injection suites.
_DEFAULT_CHAOS_DOCS = 240


def differential_examples() -> int:
    """The per-test hypothesis budget for differential suites."""
    try:
        value = int(os.environ.get("REPRO_DIFFERENTIAL_EXAMPLES", ""))
    except ValueError:
        return _DEFAULT_DIFFERENTIAL_EXAMPLES
    return value if value > 0 else _DEFAULT_DIFFERENTIAL_EXAMPLES


def chaos_docs() -> int:
    """The corpus size chaos suites evaluate while injecting faults."""
    try:
        value = int(os.environ.get("REPRO_CHAOS_DOCS", ""))
    except ValueError:
        return _DEFAULT_CHAOS_DOCS
    return value if value > 0 else _DEFAULT_CHAOS_DOCS


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (skipped by default)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    # An explicit marker selection naming `slow` is also an opt-in.
    selection = config.getoption("-m") or ""
    if "slow" in selection:
        return
    skip = pytest.mark.skip(reason="slow: opt in with --run-slow or -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
