"""The pass-based compilation planner: front-ends, pipeline, explain."""

import pytest

from repro.automata.thompson import to_va
from repro.automata.simulate import evaluate_va
from repro.engine.compiled import compile_spanner
from repro.plan import (
    DEFAULT_OPT_LEVEL,
    OPT_LEVELS,
    Plan,
    plan,
)
from repro.rgx.ast import ANY_STAR, char, concat, var as bare
from repro.rgx.parser import parse
from repro.rules.rule import Rule
from repro.spanner import Spanner


class TestFrontEnds:
    def test_text_ast_spanner_share_fingerprint(self):
        pattern = ".*Seller: x{[^,\n]*},.*"
        from_text = plan(pattern)
        from_ast = plan(parse(pattern))
        from_spanner = plan(Spanner.compile(pattern))
        assert from_text.fingerprint == from_ast.fingerprint
        assert from_text.fingerprint == from_spanner.fingerprint

    def test_va_source(self):
        va = to_va(parse("x{a}b"))
        p = plan(va)
        assert p.source_kind == "va"
        assert p.source_expression is None
        assert evaluate_va(p.automaton, "ab") == evaluate_va(va, "ab")

    def test_rule_source_matches_rule_semantics(self):
        rule = Rule(
            concat(ANY_STAR, bare("x"), ANY_STAR),
            (("x", parse("ab*")),),
        )
        for level in OPT_LEVELS:
            p = plan(rule, level)
            for document in ("ab", "abb", "ba", ""):
                assert evaluate_va(p.automaton, document) == rule.evaluate(
                    document
                ), (level, document)

    def test_rule_with_chained_conjuncts(self):
        rule = Rule(
            bare("x"),
            (("x", concat(char("a"), bare("y"))), ("y", parse("b*"))),
        )
        p = plan(rule)
        assert p.source_kind == "rule"
        assert [r.name for r in p.passes][0] == "translate-rule"
        for document in ("abb", "aba", ""):
            assert evaluate_va(p.automaton, document) == rule.evaluate(document)

    def test_unsatisfiable_translation_plans_to_empty_language(self):
        # union_of_rules_to_rgx signals unsatisfiability with None; the
        # front-end maps that to the empty-language automaton.
        from repro.plan.planner import _rule_to_va

        empty = _rule_to_va(None, frozenset())
        assert evaluate_va(empty, "") == set()
        assert evaluate_va(empty, "a") == set()

    def test_plan_of_plan_is_identity_at_same_level(self):
        p = plan("x{a}b")
        assert plan(p) is p
        assert plan(p, DEFAULT_OPT_LEVEL) is p

    def test_plan_of_plan_replans_at_other_level(self):
        p = plan("x{a}b", 0)
        replanned = plan(p, 2)
        assert replanned.opt_level == 2
        assert replanned.source is p.source

    def test_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            plan(42)

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            plan("x{a}", 7)


class TestPipeline:
    def test_opt0_is_the_straight_translation(self):
        p = plan(".*x{a+}.*", 0)
        assert p.passes == ()
        assert p.automaton is p.raw_automaton

    def test_opt1_shrinks_thompson_output(self):
        p = plan(".*Seller: x{[^,\n]*},.*")
        assert p.automaton.num_states < p.raw_automaton.num_states

    def test_opt1_sequentializes(self):
        p = plan("(x{a})*")
        from repro.automata.sequential import is_sequential

        assert not p.source_sequential
        assert is_sequential(p.automaton)

    def test_opt2_runs_determinize(self):
        p = plan(".*x{a+}.*", 2)
        assert "determinize" in [record.name for record in p.passes]

    def test_structural_sharing_across_sources(self):
        assert plan("x{a}|x{a}").fingerprint == plan("x{a}").fingerprint

    def test_sequentialize_budget_falls_back(self):
        p = plan("(x{a}|y{b}|z{a})*", sequentialize_budget=3)
        record = next(r for r in p.passes if r.name == "sequentialize")
        assert not record.changed
        assert not p.source_sequential

    def test_replanning_planned_automaton_is_stable(self):
        # The cache re-plans already-planned automata; the pipeline must
        # land on the same fingerprint (idempotence up to fingerprint).
        for pattern in ("x{a}b", ".*x{a+}.*", "x{a*}y{b*}c", "x{[ab]}|c"):
            p = plan(pattern)
            assert plan(p.automaton).fingerprint == p.fingerprint, pattern


class TestExplain:
    def test_reports_at_least_four_passes_with_state_counts(self):
        p = plan(".*Seller: x{[^,\n]*},.*")
        assert len(p.passes) >= 4
        assert len({record.name for record in p.passes}) >= 4
        explained = p.explain()
        for record in p.passes:
            assert record.name in explained
        va_passes = [r for r in p.passes if r.unit == "states"]
        assert len(va_passes) >= 4
        for record in va_passes:
            assert f"{record.states_before} -> {record.states_after} states" in explained

    def test_explain_shows_source_and_result_shapes(self):
        p = plan("x{a}b")
        explained = p.explain()
        assert "source:" in explained and "result:" in explained
        assert p.fingerprint[:12] in explained

    def test_opt0_explain_mentions_empty_pipeline(self):
        assert "none" in plan("x{a}b", 0).explain()

    def test_pass_timings_recorded(self):
        p = plan("x{a}b")
        assert all(record.elapsed >= 0 for record in p.passes)
        assert p.total_time >= 0


class TestEngineIntegration:
    def test_compile_spanner_carries_the_plan(self):
        engine = compile_spanner(".*x{a+}.*")
        assert isinstance(engine.plan, Plan)
        assert engine.plan.opt_level == DEFAULT_OPT_LEVEL
        assert engine.automaton is engine.plan.automaton

    def test_compile_spanner_opt_levels_agree(self):
        pattern = "(x{a}|y{b})*"
        outputs = {
            level: compile_spanner(pattern, opt_level=level).mappings("abab")
            for level in OPT_LEVELS
        }
        assert outputs[0] == outputs[1] == outputs[2]

    def test_plan_compile_roundtrip(self):
        p = plan(".*x{a+}.*")
        engine = p.compile()
        assert engine.plan is p
        assert engine.extract("baab") == [{"x": "a"}, {"x": "aa"}, {"x": "a"}]

    def test_source_classification_preserved(self):
        engine = compile_spanner("(x{a})*")
        assert not engine.is_sequential  # the source's fragment membership
        assert engine.tables.is_sequential  # but the engine sweeps sequentially

    def test_spanner_keeps_raw_automaton(self):
        spanner = Spanner.compile("(x{a})*")
        assert not spanner.is_sequential
        assert spanner.plan.raw_automaton == spanner.automaton
        assert spanner.compiled.automaton is spanner.plan.automaton
