"""Unit tests for the planner's individual passes.

Each pass must (1) preserve the mapping semantics exactly, (2) be
idempotent up to structural fingerprint, and (3) report no-ops by
returning the input object unchanged (the plan log relies on identity).
"""

import pytest

from repro.alphabet import CharSet
from repro.automata.determinize import determinize, is_complete_deterministic
from repro.automata.fingerprint import va_fingerprint
from repro.automata.labels import EPS, Close, Open, Sym
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.automata.va import VA, VABuilder
from repro.plan.passes import (
    determinize_budgeted,
    eliminate_epsilon,
    fuse_predicates,
    sequentialize,
    trim,
)
from repro.rgx.parser import parse
from repro.util.errors import BudgetExceededError
from repro.workloads.expressions import random_document, random_va

DOCUMENTS = ["", "a", "b", "ab", "ba", "aab", "abab"]


def assert_equivalent(original: VA, rewritten: VA):
    for document in DOCUMENTS:
        assert evaluate_va(rewritten, document) == evaluate_va(
            original, document
        ), document


class TestEliminateEpsilon:
    def test_preserves_semantics_on_thompson_output(self):
        for pattern in ("x{a}b", "(x{a}|y{b})*", ".*x{a+}.*", "x{a*}y{b*}"):
            va = to_va(parse(pattern))
            assert_equivalent(va, eliminate_epsilon(va))

    def test_preserves_semantics_on_random_vas(self):
        for seed in range(30):
            va = random_va(6, seed=seed)
            rewritten = eliminate_epsilon(va)
            for doc_seed in range(3):
                document = random_document(4, seed=seed * 7 + doc_seed)
                assert evaluate_va(rewritten, document) == evaluate_va(
                    va, document
                )

    def test_idempotent_fingerprint(self):
        va = eliminate_epsilon(to_va(parse("(x{a}|y{b})*c")))
        again = eliminate_epsilon(va)
        assert again is va  # already in eliminated shape

    def test_epsilon_free_result_modulo_glue(self):
        va = eliminate_epsilon(to_va(parse("(a|b)*x{a}")))
        from repro.automata.labels import Eps

        for _, label, target in va.transitions:
            if isinstance(label, Eps):
                assert target == va.final
        assert not va.out_edges(va.final)


class TestTrim:
    def test_removes_dead_states(self):
        b = VABuilder()
        q0, q1, dead = b.add_states(3)
        b.add(q0, Sym(CharSet.single("a")), q1)
        b.add(q0, Sym(CharSet.single("b")), dead)  # dead end
        va = b.build(initial=q0, final=q1)
        assert trim(va).num_states == 2

    def test_noop_returns_input_object(self):
        va = trim(to_va(parse("x{a}")))
        assert trim(va) is va


class TestFusePredicates:
    def test_merges_parallel_letter_edges(self):
        b = VABuilder()
        q0, q1 = b.add_states(2)
        b.add(q0, Sym(CharSet.single("a")), q1)
        b.add(q0, Sym(CharSet.single("b")), q1)
        va = b.build(initial=q0, final=q1)
        fused = fuse_predicates(va)
        assert len(fused.transitions) == 1
        assert fused.transitions[0][1] == Sym(CharSet.of("ab"))
        assert_equivalent(va, fused)

    def test_fuses_positive_into_cofinite(self):
        b = VABuilder()
        q0, q1 = b.add_states(2)
        b.add(q0, Sym(CharSet.single(",")), q1)
        b.add(q0, Sym(CharSet.excluding(",;")), q1)
        va = b.build(initial=q0, final=q1)
        fused = fuse_predicates(va)
        assert len(fused.transitions) == 1
        charset = fused.transitions[0][1].charset
        assert charset.contains(",") and charset.contains("z")
        assert not charset.contains(";")

    def test_deduplicates_operations(self):
        b = VABuilder()
        q0, q1, q2 = b.add_states(3)
        b.add(q0, Open("x"), q1)
        b.add(q0, Open("x"), q1)
        b.add(q1, Close("x"), q2)
        va = b.build(initial=q0, final=q2)
        assert len(fuse_predicates(va).transitions) == 2

    def test_noop_returns_input_object(self):
        va = fuse_predicates(to_va(parse("x{[ab]}")))
        assert fuse_predicates(va) is va


class TestSequentialize:
    def test_makes_non_sequential_sequential(self):
        va = to_va(parse("(x{a})*"))
        assert not is_sequential(va)
        rewritten = sequentialize(va)
        assert is_sequential(rewritten)
        assert_equivalent(va, rewritten)

    def test_sequential_input_passes_through(self):
        va = to_va(parse("x{a}b"))
        assert sequentialize(va) is va

    def test_budget_falls_back_to_input(self):
        va = to_va(parse("(x{a}|y{b}|z{a})*"))
        assert not is_sequential(va)
        assert sequentialize(va, max_states=3) is va

    def test_budget_error_from_make_sequential(self):
        va = to_va(parse("(x{a}|y{b}|z{a})*"))
        with pytest.raises(BudgetExceededError):
            make_sequential(va, max_states=3)


class TestDeterminizeBudgeted:
    def test_deterministic_input_passes_through(self):
        va = determinize(to_va(parse("x{a}b")))
        assert is_complete_deterministic(va)
        assert determinize_budgeted(va) is va

    def test_budget_falls_back_to_input(self):
        va = to_va(parse("(a|b)*x{a+}(a|b)*"))
        assert determinize_budgeted(va, max_states=2) is va
        with pytest.raises(BudgetExceededError):
            determinize(va, max_states=2)

    def test_preserves_semantics(self):
        va = to_va(parse(".*x{a+}.*"))
        assert_equivalent(va, determinize_budgeted(va, max_states=4096))


class TestPipelineIdempotence:
    """Planning an already-planned automaton lands on the same fingerprint."""

    @pytest.mark.parametrize(
        "pattern", ["x{a}b", ".*x{a+}.*", "(x{a}|y{b})*", "x{a*}y{b*}c"]
    )
    def test_pass_chain_is_idempotent(self, pattern):
        va = to_va(parse(pattern))
        once = fuse_predicates(trim(eliminate_epsilon(va)))
        twice = fuse_predicates(trim(eliminate_epsilon(once)))
        assert va_fingerprint(once) == va_fingerprint(twice)
