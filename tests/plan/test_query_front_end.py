"""Algebra query expressions through the planner front-end.

Cross-validates the compiled engine on ``QueryExpr`` sources — union,
projection, join, and nested combinations — against the reference
semantics (Table 2 mappings composed with the set-level algebra), at
every optimisation level.  The engine path exercises the Theorem 4.5
constructions (`repro.automata.algebra`) *through* the pass pipeline,
which is what PR 6's query service compiles.
"""

import pytest
from hypothesis import given, settings

from repro.algebra import query
from repro.engine.compiled import CompiledSpanner
from repro.plan import plan as build_plan
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.spans.mapping import join as semantic_join
from repro.util.errors import SpannerError
from tests.strategies import documents, rgx_expressions

DOCS = ["", "a", "b", "ab", "ba", "aab", "abb"]
OPT_LEVELS = [0, 1, 2]


def _reference(expression, document):
    """The semantic value of a QueryExpr: Table 2 plus the set algebra."""
    from repro.algebra import Atom, JoinExpr, ProjectExpr, UnionExpr

    if isinstance(expression, Atom):
        source = expression.source
        parsed = parse(source) if isinstance(source, str) else source
        return mappings(parsed, document)
    if isinstance(expression, UnionExpr):
        result = set()
        for part in expression.parts:
            result |= _reference(part, document)
        return result
    if isinstance(expression, JoinExpr):
        result = _reference(expression.parts[0], document)
        for part in expression.parts[1:]:
            result = semantic_join(result, _reference(part, document))
        return result
    if isinstance(expression, ProjectExpr):
        return {
            m.project(expression.keep)
            for m in _reference(expression.child, document)
        }
    raise AssertionError(f"unhandled expression {expression!r}")


def _engines(expression):
    return [
        CompiledSpanner(plan=build_plan(expression, opt_level=level))
        for level in OPT_LEVELS
    ]


class TestUnionPath:
    @given(rgx_expressions(), rgx_expressions(), documents(max_length=4))
    @settings(max_examples=30, deadline=None)
    def test_union_matches_reference(self, first, second, document):
        expression = query(first).union(query(second))
        expected = _reference(expression, document)
        for engine in _engines(expression):
            assert engine.mappings(document) == expected

    def test_nary_union(self):
        expression = query("x{a}").union(query("y{b}")).union(query("x{b}"))
        for document in DOCS:
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected


class TestProjectionPath:
    @given(rgx_expressions(), documents(max_length=4))
    @settings(max_examples=30, deadline=None)
    def test_projection_matches_reference(self, inner, document):
        for keep in (["x"], ["y"], []):
            expression = query(inner).project(keep)
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected

    def test_projection_over_union(self):
        expression = (
            query("x{a*}y{b*}").union(query("x{b}|y{a}")).project(["x"])
        )
        for document in DOCS:
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected


class TestJoinPath:
    @given(rgx_expressions(), rgx_expressions(), documents(max_length=3))
    @settings(max_examples=25, deadline=None)
    def test_join_matches_reference(self, first, second, document):
        expression = query(first).join(query(second))
        expected = _reference(expression, document)
        for engine in _engines(expression):
            assert engine.mappings(document) == expected

    @pytest.mark.parametrize(
        "left,right",
        [
            ("x{a*}y{b*}", "x{a*}.*"),  # shared x
            ("x{a}.*", ".*x{a}"),       # shared, positions must agree
            ("x{a}|y{b}", "x{.}|y{.}"), # partial domains both sides
        ],
    )
    def test_join_cases(self, left, right):
        expression = query(left).join(query(right))
        for document in DOCS:
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected

    def test_nested_algebra(self):
        expression = (
            query("x{a*}y{b*}")
            .join(query("x{a*}.*"))
            .union(query("x{b}z{a*}"))
            .project(["x", "z"])
        )
        for document in DOCS:
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected

    def test_non_sequential_operand_respects_budget(self):
        # (x{a})* is not sequential; join operands are sequentialised up
        # front under the planner's state budget, so a tiny budget must
        # surface as a planner error, not an exponential compile.
        expression = query("(x{a})*").join(query(".*x{a}.*"))
        with pytest.raises(SpannerError):
            build_plan(expression, opt_level=1, sequentialize_budget=1)

    def test_non_sequential_operand_within_budget(self):
        expression = query("(x{a})*").join(query(".*x{a}.*"))
        for document in DOCS:
            expected = _reference(expression, document)
            for engine in _engines(expression):
                assert engine.mappings(document) == expected
