"""AST construction helpers, printing, traversal, renaming."""

import pytest
from hypothesis import given, settings

from repro.rgx.ast import (
    ANY,
    ANY_STAR,
    EPSILON,
    Concat,
    Letter,
    Union,
    VarBind,
    char,
    chars,
    concat,
    concat_all,
    map_expression,
    not_chars,
    optional,
    plus,
    rename_variables,
    star,
    string,
    union,
    union_all,
    var,
    walk,
)
from repro.util.errors import SpannerError
from tests.strategies import rgx_expressions


class TestSmartConstructors:
    def test_char_rejects_strings(self):
        with pytest.raises(SpannerError):
            char("ab")

    def test_string_builds_concat(self):
        assert string("abc") == Concat((char("a"), char("b"), char("c")))

    def test_string_empty_is_epsilon(self):
        assert string("") == EPSILON

    def test_string_single_is_letter(self):
        assert string("a") == char("a")

    def test_concat_flattens(self):
        nested = concat(concat(char("a"), char("b")), char("c"))
        assert nested == string("abc")

    def test_concat_identity(self):
        assert concat(char("a")) == char("a")
        assert concat() == EPSILON

    def test_union_flattens(self):
        nested = union(union(char("a"), char("b")), char("c"))
        assert isinstance(nested, Union)
        assert len(nested.options) == 3

    def test_union_of_nothing_rejected(self):
        with pytest.raises(SpannerError):
            union()

    def test_plus_and_optional_desugar(self):
        assert plus(char("a")) == concat(char("a"), star(char("a")))
        assert optional(char("a")) == union(char("a"), EPSILON)

    def test_var_default_body(self):
        assert var("x") == VarBind("x", ANY_STAR)

    def test_list_builders(self):
        assert concat_all([]) == EPSILON
        assert union_all([char("a")]) == char("a")

    def test_direct_nested_concat_rejected(self):
        with pytest.raises(SpannerError):
            Concat((Concat((char("a"), char("b"))), char("c")))

    def test_operators(self):
        assert (char("a") | char("b")) == union(char("a"), char("b"))
        assert (char("a") * char("b")) == concat(char("a"), char("b"))


class TestInspection:
    def test_variables_nested(self):
        expression = VarBind("x", concat(VarBind("y", ANY), char("a")))
        assert expression.variables() == {"x", "y"}

    def test_size_counts_nodes(self):
        assert EPSILON.size() == 1
        assert string("ab").size() == 3  # concat + two letters
        assert VarBind("x", char("a")).size() == 2

    def test_walk_preorder(self):
        expression = concat(char("a"), VarBind("x", char("b")))
        kinds = [type(node).__name__ for node in walk(expression)]
        assert kinds == ["Concat", "Letter", "VarBind", "Letter"]

    @given(rgx_expressions())
    @settings(max_examples=100)
    def test_walk_count_equals_size(self, expression):
        assert sum(1 for _ in walk(expression)) == expression.size()


class TestRewriting:
    def test_map_expression_bottom_up(self):
        expression = concat(char("a"), char("b"))

        def bump(node):
            if isinstance(node, Letter) and node.charset.is_single():
                return char("z")
            return node

        assert map_expression(expression, bump) == string("zz")

    def test_rename_variables(self):
        expression = VarBind("x", concat(VarBind("y", ANY), char("a")))
        renamed = rename_variables(expression, {"x": "u", "y": "v"})
        assert renamed.variables() == {"u", "v"}

    def test_rename_partial(self):
        expression = concat(var("x"), var("y"))
        renamed = rename_variables(expression, {"x": "w"})
        assert renamed.variables() == {"w", "y"}


class TestPrinting:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            (EPSILON, "ε"),
            (ANY, "."),
            (char("a"), "a"),
            (chars("ab"), "[ab]"),
            (not_chars(","), "[^,]"),
            (star(char("a")), "a*"),
            (star(string("ab")), "(ab)*"),
            (union(char("a"), char("b")), "a|b"),
            (concat(union(char("a"), char("b")), char("c")), "(a|b)c"),
            (VarBind("x", star(char("a"))), "x{a*}"),
            (char("*"), "\\*"),
            (char("\n"), "\\n"),
        ],
    )
    def test_examples(self, expression, expected):
        assert str(expression) == expected

    @given(rgx_expressions())
    @settings(max_examples=100)
    def test_printing_is_injective_via_parse(self, expression):
        from repro.rgx.parser import parse

        assert parse(str(expression)) == expression
