"""Parser tests: concrete syntax, errors, and the print/parse round-trip."""

import pytest
from hypothesis import given, settings

from repro.alphabet import CharSet
from repro.rgx.ast import (
    EPSILON,
    Concat,
    Letter,
    Star,
    VarBind,
    char,
    concat,
    string,
    union,
    var,
)
from repro.rgx.parser import parse
from repro.util.errors import ParseError
from tests.strategies import rgx_expressions


class TestAtoms:
    def test_single_letter(self):
        assert parse("a") == char("a")

    def test_epsilon_unicode(self):
        assert parse("ε") == EPSILON

    def test_epsilon_escape(self):
        assert parse("\\e") == EPSILON

    def test_any_char(self):
        assert parse(".") == Letter(CharSet.any())

    def test_space_is_a_letter(self):
        assert parse(" ") == char(" ")

    def test_escaped_metachar(self):
        assert parse("\\*") == char("*")
        assert parse("\\(") == char("(")
        assert parse("\\n") == char("\n")


class TestCharClasses:
    def test_positive_class(self):
        assert parse("[abc]") == Letter(CharSet.of("abc"))

    def test_negated_class(self):
        assert parse("[^,]") == Letter(CharSet.excluding(","))

    def test_range(self):
        assert parse("[a-d]") == Letter(CharSet.of("abcd"))

    def test_range_mixed_with_singletons(self):
        assert parse("[a-cz]") == Letter(CharSet.of("abcz"))

    def test_unterminated_raises(self):
        with pytest.raises(ParseError):
            parse("[ab")

    def test_empty_class_raises(self):
        with pytest.raises(ParseError):
            parse("[]")

    def test_negated_empty_class_is_any(self):
        assert parse("[^]") == Letter(CharSet.any())


class TestOperators:
    def test_union_binds_weakest(self):
        assert parse("ab|c") == union(concat(char("a"), char("b")), char("c"))

    def test_concat_by_juxtaposition(self):
        expression = parse("abc")
        assert isinstance(expression, Concat)
        assert expression == string("abc")

    def test_star_binds_tightest(self):
        assert parse("ab*") == concat(char("a"), Star(char("b")))

    def test_plus_desugars(self):
        assert parse("a+") == concat(char("a"), Star(char("a")))

    def test_question_desugars(self):
        assert parse("a?") == union(char("a"), EPSILON)

    def test_grouping(self):
        assert parse("(ab)*") == Star(string("ab"))

    def test_double_star(self):
        assert parse("a**") == Star(Star(char("a")))

    def test_empty_group_is_epsilon(self):
        assert parse("()") == EPSILON

    def test_union_of_empty_branch(self):
        assert parse("a|") == union(char("a"), EPSILON)


class TestVariables:
    def test_simple_binding(self):
        assert parse("x{a}") == VarBind("x", char("a"))

    def test_binding_with_body_operators(self):
        assert parse("x{a|b*}") == VarBind("x", union(char("a"), Star(char("b"))))

    def test_multichar_variable_name(self):
        assert parse("name{a}") == VarBind("name", char("a"))

    def test_identifier_not_followed_by_brace_is_letters(self):
        assert parse("xy") == concat(char("x"), char("y"))

    def test_nested_bindings(self):
        assert parse("x{y{a}}") == VarBind("x", VarBind("y", char("a")))

    def test_spanrgx_shorthand_builder(self):
        assert var("x") == parse("x{.*}")

    def test_unclosed_binding_raises(self):
        with pytest.raises(ParseError):
            parse("x{a")

    def test_stray_close_brace_raises(self):
        with pytest.raises(ParseError):
            parse("a}")


class TestErrors:
    @pytest.mark.parametrize("bad", ["*", "(", ")a(", "a)", "\\", "x{", "+"])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("ab}")
        assert excinfo.value.position is not None


class TestRoundTrip:
    PAPER_EXPRESSIONS = [
        "x{a*}y{b*}",
        "(x{(a|b)*}|y{(a|b)*})*",
        ".*Seller: x{[^,]*},.*",
        "x{y{a}b}c",
        "a(x{b})*",
    ]

    @pytest.mark.parametrize("text", PAPER_EXPRESSIONS)
    def test_examples_round_trip(self, text):
        expression = parse(text)
        assert parse(str(expression)) == expression

    @given(rgx_expressions())
    @settings(max_examples=200)
    def test_print_parse_round_trip(self, expression):
        assert parse(str(expression)) == expression

    def test_letter_before_binding_round_trips(self):
        # "a" followed by binding "y{b}" must not reparse as variable "ay".
        expression = concat(char("a"), VarBind("y", char("b")))
        assert parse(str(expression)) == expression
