"""Dedicated simplifier tests (beyond the property test in test_semantics)."""

import pytest

from repro.rgx.ast import EPSILON, VarBind, char, concat, star, union
from repro.rgx.parser import parse
from repro.rgx.rewrite import simplify


class TestIdentities:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("aε", "a"),
            ("εa", "a"),
            ("εε", "ε"),
            ("ε*", "ε"),
            ("(a*)*", "a*"),
            ("a|a", "a"),
            ("a|b|a", "a|b"),
            ("(aε)(εb)", "ab"),
            ("x{aε}", "x{a}"),
            ("((a*)*)*", "a*"),
        ],
    )
    def test_simplifies(self, before, after):
        assert simplify(parse(before)) == parse(after)

    @pytest.mark.parametrize(
        "stable", ["a", "a*", "a|b", "x{a}", "x{ε}", "(ab)*", "a?b"]
    )
    def test_fixed_points(self, stable):
        expression = parse(stable)
        assert simplify(expression) == expression

    def test_epsilon_binding_body_preserved(self):
        # x{ε} must NOT collapse: the binding still assigns an empty span.
        assert simplify(VarBind("x", EPSILON)) == VarBind("x", EPSILON)

    def test_concat_of_epsilons_under_binding(self):
        assert simplify(VarBind("x", concat(EPSILON, EPSILON))) == VarBind(
            "x", EPSILON
        )

    def test_union_order_preserved(self):
        expression = union(char("b"), char("a"))
        assert simplify(expression) == expression  # no reordering

    def test_idempotent(self):
        expression = parse("(((a*)*|ε)εb)|((a*)*|ε)εb")
        once = simplify(expression)
        assert simplify(once) == once

    def test_nested_star_with_variables(self):
        # (x{a}*)* keeps its variable structure (only the star collapses).
        inner = star(VarBind("x", char("a")))
        assert simplify(star(inner)) == inner
