"""The Table 2 denotational semantics, including Example 3.1 verbatim."""

import pytest
from hypothesis import given, settings

from repro.rgx.ast import EPSILON, char, concat, star, union
from repro.rgx.parser import parse
from repro.rgx.rewrite import simplify
from repro.rgx.semantics import (
    classical_semantics,
    mappings,
    outputs_relation,
    pair_semantics,
)
from repro.spans.mapping import Mapping
from repro.spans.span import Span
from tests.strategies import documents, rgx_expressions


class TestExample31:
    """Example 3.1 of the paper over the document ``aaabbb``."""

    DOC = "aaabbb"

    def test_letter_pairs(self):
        pairs = pair_semantics(char("a"), self.DOC)
        assert pairs == {
            (Span(1, 2), Mapping.empty()),
            (Span(2, 3), Mapping.empty()),
            (Span(3, 4), Mapping.empty()),
        }

    def test_binding_pairs(self):
        pairs = pair_semantics(parse("x{a}"), self.DOC)
        assert pairs == {
            (Span(i, i + 1), Mapping({"x": Span(i, i + 1)})) for i in (1, 2, 3)
        }

    def test_binding_whole_document_is_empty(self):
        # ⟦x{a}⟧ is empty: no pair spans the whole document.
        assert mappings(parse("x{a}"), self.DOC) == set()

    def test_concatenation_example(self):
        result = mappings(parse("x{a*}y{b*}"), self.DOC)
        assert result == {Mapping({"x": Span(1, 4), "y": Span(4, 7)})}

    def test_star_over_variables(self):
        result = mappings(parse("(x{(a|b)*}|y{(a|b)*})*"), self.DOC)
        # The paper's µ = µ1 ∪ µ2 with y=(1,4), x=(4,7) is among the outputs.
        assert Mapping({"y": Span(1, 4), "x": Span(4, 7)}) in result

    def test_variable_reuse_outputs_nothing(self):
        assert mappings(parse("x{a*}x{b*}"), self.DOC) == set()

    def test_self_nested_binding_outputs_nothing(self):
        assert mappings(parse("x{x{a}}"), "a") == set()


class TestRegularExpressionBehaviour:
    """Variable-free RGX degenerates to ordinary regex acceptance."""

    def test_true_is_empty_mapping(self):
        assert mappings(parse("a*"), "aaa") == {Mapping.empty()}

    def test_false_is_empty_set(self):
        assert mappings(parse("a*"), "ab") == set()

    def test_epsilon_on_empty_document(self):
        assert mappings(EPSILON, "") == {Mapping.empty()}

    def test_epsilon_on_nonempty_document(self):
        assert mappings(EPSILON, "a") == set()

    @pytest.mark.parametrize(
        "pattern,doc,accepts",
        [
            ("(a|b)*", "abba", True),
            ("a+", "", False),
            ("a+", "aa", True),
            ("a?b", "b", True),
            ("a?b", "ab", True),
            ("a?b", "aab", False),
            (".*", "anything", True),
            ("[^x]*", "abc", True),
            ("[^x]*", "axc", False),
        ],
    )
    def test_against_classical_regex(self, pattern, doc, accepts):
        assert bool(mappings(parse(pattern), doc)) == accepts


class TestMappingSemantics:
    def test_optional_field_produces_two_domains(self):
        expression = parse("x{a}(y{b}|ε)c*")
        with_tax = mappings(expression, "abc")
        without = mappings(expression, "ac")
        assert {m.domain for m in with_tax} == {frozenset({"x", "y"})}
        assert {m.domain for m in without} == {frozenset({"x"})}

    def test_empty_span_binding(self):
        result = mappings(parse("x{ε}a"), "a")
        assert result == {Mapping({"x": Span(1, 1)})}

    def test_binding_positions_distinguished(self):
        # Same content, different positions: two distinct mappings.
        result = mappings(parse(".*x{a}.*"), "aa")
        assert result == {
            Mapping({"x": Span(1, 2)}),
            Mapping({"x": Span(2, 3)}),
        }

    def test_union_chooses_either_side(self):
        result = mappings(parse("x{a}|y{a}"), "a")
        assert result == {
            Mapping({"x": Span(1, 2)}),
            Mapping({"y": Span(1, 2)}),
        }

    def test_star_accumulates_disjoint_domains(self):
        result = mappings(parse("(x{a}|y{b})*"), "ab")
        assert result == {Mapping({"x": Span(1, 2), "y": Span(2, 3)})}

    def test_star_cannot_rebind(self):
        assert mappings(parse("(x{a})*"), "aa") == set()


class TestRelationBehaviour:
    def test_functional_rgx_outputs_relation(self):
        assert outputs_relation(parse("x{a*}y{b*}"), "ab")

    def test_non_functional_rgx_may_not(self):
        # On "ab" the optional-y expression yields both the {x} and the
        # {x, y} domain, so the output is not a relation.
        expression = parse("x{a}(y{b}|ε).*")
        assert not outputs_relation(expression, "ab")


class TestClassicalSemantics:
    """Theorem 4.2: [2]'s semantics = join with all total mappings."""

    def test_unmatched_variable_becomes_arbitrary(self):
        expression = parse("x{a}|y{b}")
        result = classical_semantics(expression, "a")
        # x is forced to (1,2); y ranges over all three spans of "a".
        domains = {m.domain for m in result}
        assert domains == {frozenset({"x", "y"})}
        ys = {m["y"] for m in result if m["x"] == Span(1, 2)}
        assert ys == {Span(1, 1), Span(1, 2), Span(2, 2)}


class TestSimplifier:
    @given(rgx_expressions(), documents(max_length=5))
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_semantics(self, expression, document):
        assert mappings(simplify(expression), document) == mappings(
            expression, document
        )

    def test_epsilon_unit_dropped(self):
        assert simplify(concat(char("a"), EPSILON)) == char("a")

    def test_star_of_epsilon(self):
        assert simplify(star(EPSILON)) == EPSILON

    def test_star_of_star(self):
        assert simplify(star(star(char("a")))) == star(char("a"))

    def test_union_dedupe(self):
        assert simplify(union(char("a"), char("a"))) == char("a")
