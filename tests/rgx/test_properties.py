"""funcRGX / seqRGX / spanRGX classification tests (§4.1, §5.2, §3.3)."""

import pytest
from hypothesis import given, settings

from repro.rgx.parser import parse
from repro.rgx.properties import (
    derives_epsilon,
    derives_only_epsilon,
    functional_set,
    is_functional,
    is_proper_span_rgx,
    is_sequential,
    is_span_rgx,
    is_variable_free,
)
from tests.strategies import rgx_expressions


class TestFunctional:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "ε",
            "x{a}",
            "x{a*}y{b*}",
            "x{a}|x{b}",          # both branches assign exactly {x}
            "(a|b)*x{a|b}",
            "x{y{a}b}",
        ],
    )
    def test_functional(self, text):
        assert is_functional(parse(text))

    @pytest.mark.parametrize(
        "text",
        [
            "x{a}|b",             # branches assign different sets
            "(x{a})*",            # star over a variable
            "x{a}x{b}",           # same variable twice in a concatenation
            "x{x{a}}",            # rebinding inside itself
            "x{a}(y{b}|ε)",       # optional variable
        ],
    )
    def test_not_functional(self, text):
        assert not is_functional(parse(text))

    def test_functional_set_is_var_set(self):
        expression = parse("x{a*}y{b*}")
        assert functional_set(expression) == {"x", "y"}

    @given(rgx_expressions())
    @settings(max_examples=200)
    def test_functional_set_none_or_all_variables(self, expression):
        witness = functional_set(expression)
        assert witness is None or witness == expression.variables()


class TestSequential:
    @pytest.mark.parametrize(
        "text",
        [
            "x{a*}y{b*}",
            "x{a}|b",              # unions may differ in variables
            "x{a}|x{b}",           # reuse across union branches is fine
            "(a|b)*x{c?}d",
            ".*Seller: x{[^,]*},.*",
        ],
    )
    def test_sequential(self, text):
        assert is_sequential(parse(text))

    @pytest.mark.parametrize(
        "text",
        [
            "x{a}x{b}",   # shared variable across a concatenation
            "(x{a})*",    # variable under a star
            "x{x{a}}",    # rebinding inside the body
            "x{a}y{x{b}}",
        ],
    )
    def test_not_sequential(self, text):
        assert not is_sequential(parse(text))

    @given(rgx_expressions())
    @settings(max_examples=300)
    def test_functional_implies_sequential(self, expression):
        # The inclusion funcRGX ⊆ seqRGX claimed before Proposition 5.3.
        if is_functional(expression):
            assert is_sequential(expression)


class TestSpanRgx:
    def test_bare_variable_shorthand(self):
        assert is_span_rgx(parse("a x{.*} b"))

    def test_constrained_body_is_not_spanrgx(self):
        assert not is_span_rgx(parse("x{a*}"))

    def test_nesting_is_not_spanrgx(self):
        assert not is_span_rgx(parse("x{y{.*}}"))

    def test_proper_excludes_reuse(self):
        assert is_proper_span_rgx(parse("a x{.*} b"))
        assert not is_proper_span_rgx(parse("x{.*}x{.*}"))

    def test_variable_free(self):
        assert is_variable_free(parse("(a|b)*"))
        assert not is_variable_free(parse("x{a}"))


class TestEpsilonDerivability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ε", True),
            ("a", False),
            ("a*", True),
            ("a|ε", True),
            ("ab", False),
            ("(a|ε)(b|ε)", True),
            ("x{ε}", True),
            ("x{a}", False),
        ],
    )
    def test_derives_epsilon(self, text, expected):
        assert derives_epsilon(parse(text)) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ε", True),
            ("ε|ε", True),
            ("a*", False),
            ("ε*", True),
            ("x{ε}", True),
            ("a|ε", False),
        ],
    )
    def test_derives_only_epsilon(self, text, expected):
        assert derives_only_epsilon(parse(text)) == expected

    @given(rgx_expressions())
    @settings(max_examples=200)
    def test_only_epsilon_implies_epsilon(self, expression):
        if derives_only_epsilon(expression):
            assert derives_epsilon(expression)
