"""CharSet algebra and representative alphabets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.alphabet import CharSet, representative_alphabet
from repro.util.errors import SpannerError


def charsets() -> st.SearchStrategy[CharSet]:
    return st.builds(
        lambda chars, negated: CharSet(frozenset(chars), negated)
        if (chars or negated)
        else CharSet.any(),
        st.sets(st.sampled_from("abcd"), max_size=3),
        st.booleans(),
    )


class TestConstruction:
    def test_single(self):
        assert CharSet.single("a").contains("a")
        assert not CharSet.single("a").contains("b")

    def test_excluding(self):
        cs = CharSet.excluding(",\n")
        assert cs.contains("a")
        assert not cs.contains(",")

    def test_any(self):
        assert CharSet.any().contains("ξ")

    def test_empty_positive_rejected(self):
        with pytest.raises(SpannerError):
            CharSet(frozenset())

    def test_multichar_member_rejected(self):
        with pytest.raises(SpannerError):
            CharSet(frozenset({"ab"}))

    def test_the_single(self):
        assert CharSet.single("x").the_single() == "x"
        with pytest.raises(SpannerError):
            CharSet.of("ab").the_single()


class TestIntersection:
    def test_finite_finite(self):
        assert CharSet.of("ab").intersect(CharSet.of("bc")) == CharSet.of("b")
        assert CharSet.of("a").intersect(CharSet.of("b")) is None

    def test_finite_cofinite(self):
        assert CharSet.of("ab").intersect(CharSet.excluding("a")) == CharSet.of("b")
        assert CharSet.of("a").intersect(CharSet.excluding("a")) is None

    def test_cofinite_cofinite(self):
        merged = CharSet.excluding("a").intersect(CharSet.excluding("b"))
        assert merged == CharSet.excluding("ab")

    @given(charsets(), charsets())
    def test_intersection_soundness(self, first, second):
        merged = first.intersect(second)
        for probe in "abcdez~":
            both = first.contains(probe) and second.contains(probe)
            if merged is None:
                assert not both
            else:
                assert merged.contains(probe) == both

    @given(charsets(), charsets())
    def test_intersection_commutative(self, first, second):
        assert first.intersect(second) == second.intersect(first)


class TestWitness:
    @given(charsets())
    def test_witness_is_member(self, charset):
        assert charset.contains(charset.witness())

    def test_witness_avoids_when_possible(self):
        assert CharSet.of("ab").witness(avoid={"a"}) == "b"
        # Cannot avoid the only member:
        assert CharSet.of("a").witness(avoid={"a"}) == "a"

    def test_cofinite_witness_avoids_excluded(self):
        witness = CharSet.excluding("~@0z").witness()
        assert witness not in "~@0z"


class TestRepresentativeAlphabet:
    def test_covers_mentioned_plus_fresh(self):
        reps = representative_alphabet([CharSet.of("ab"), CharSet.excluding("c")])
        assert set("abc") <= set(reps)
        assert len(reps) == 4  # a, b, c, and one fresh

    def test_no_cofinite_no_fresh(self):
        reps = representative_alphabet([CharSet.of("ab")])
        assert set(reps) == {"a", "b"}

    def test_empty_input_single_fresh(self):
        reps = representative_alphabet([])
        assert len(reps) == 1

    @given(st.lists(charsets(), max_size=4))
    def test_representatives_distinguish_predicates(self, sets):
        # Every character that matches at least one predicate behaves like
        # some representative (characters matching nothing can never be
        # consumed by any transition, so they need no representative).
        reps = representative_alphabet(sets)
        for probe in "abcdz~ξ":
            vector = tuple(cs.contains(probe) for cs in sets)
            if not any(vector):
                continue
            assert any(
                tuple(cs.contains(rep) for cs in sets) == vector
                for rep in reps
            )
