"""Run the doctests embedded in the public API docstrings."""

import doctest

import pytest

import repro
import repro.algebra
import repro.api
import repro.automata.fingerprint
import repro.cluster
import repro.cluster.node
import repro.cluster.protocol
import repro.cluster.registry
import repro.engine.compiled
import repro.engine.kernel
import repro.engine.oracle
import repro.engine.tables
import repro.plan
import repro.plan.planner
import repro.rgx.parser
import repro.rgx.semantics
import repro.server.app
import repro.server.client
import repro.server.metrics
import repro.server.protocol
import repro.service
import repro.service.backend
import repro.service.cache
import repro.service.corpus
import repro.service.evaluate
import repro.service.queryset
import repro.spanner
import repro.spans.document
import repro.spans.span
import repro.workloads.land_registry
import repro.workloads.server_logs

MODULES = [
    repro,
    repro.algebra,
    repro.api,
    repro.automata.fingerprint,
    repro.cluster,
    repro.cluster.node,
    repro.cluster.protocol,
    repro.cluster.registry,
    repro.engine.compiled,
    repro.engine.kernel,
    repro.engine.oracle,
    repro.engine.tables,
    repro.plan,
    repro.plan.planner,
    repro.rgx.parser,
    repro.rgx.semantics,
    repro.server.app,
    repro.server.client,
    repro.server.metrics,
    repro.server.protocol,
    repro.service,
    repro.service.backend,
    repro.service.cache,
    repro.service.corpus,
    repro.service.evaluate,
    repro.service.queryset,
    repro.spanner,
    repro.spans.document,
    repro.spans.span,
    repro.workloads.land_registry,
    repro.workloads.server_logs,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} has no doctests"
    assert failures == 0
