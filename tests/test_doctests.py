"""Run the doctests embedded in the public API docstrings."""

import doctest

import pytest

import repro
import repro.engine.compiled
import repro.rgx.parser
import repro.rgx.semantics
import repro.spanner
import repro.spans.document
import repro.spans.span

MODULES = [
    repro,
    repro.engine.compiled,
    repro.rgx.parser,
    repro.rgx.semantics,
    repro.spanner,
    repro.spans.document,
    repro.spans.span,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} has no doctests"
    assert failures == 0
