"""Budget guards on the worst-case-exponential constructions.

The paper proves several translations are inherently exponential (or
doubly so); the implementations take explicit budgets and must fail
deterministically with :class:`BudgetExceededError` instead of exhausting
memory.
"""

import pytest

from repro.util.errors import BudgetExceededError


def big_star_expression(k: int):
    from repro.rgx.ast import VarBind, star, union, chars

    options = [VarBind(f"x{i}", star(chars("ab"))) for i in range(k)]
    return star(union(*options))


class TestPathUnionBudget:
    def test_walk_budget_triggers(self):
        from repro.automata.path_union import vastk_to_rgx
        from repro.automata.thompson import to_vastk

        automaton = to_vastk(big_star_expression(5))
        with pytest.raises(BudgetExceededError):
            vastk_to_rgx(automaton, budget=10)

    def test_budget_error_carries_limit(self):
        from repro.automata.path_union import vastk_to_rgx
        from repro.automata.thompson import to_vastk

        automaton = to_vastk(big_star_expression(5))
        with pytest.raises(BudgetExceededError) as excinfo:
            vastk_to_rgx(automaton, budget=7)
        assert excinfo.value.budget == 7


class TestPathDecompositionBudget:
    def test_star_unrolling_budget(self):
        from repro.rgx.ast import VarBind, star, union, ANY_STAR
        from repro.rules.spanrgx import path_disjuncts

        expression = star(
            union(*(VarBind(f"x{i}", ANY_STAR) for i in range(6)))
        )
        with pytest.raises(BudgetExceededError):
            path_disjuncts(expression, budget=20)


class TestRuleTranslationBudget:
    def test_functional_expansion_budget(self):
        from repro.rgx.ast import union, char
        from repro.rules.rule import Rule, bare
        from repro.rules.translate import to_functional_rules

        wide = union(*(char(c) for c in "ab"))
        rule = Rule(
            bare("x"),
            tuple((f"v{i}", union(wide, char("c"))) for i in range(1)),
        )
        # A generous rule but a tiny budget.
        with pytest.raises(BudgetExceededError):
            to_functional_rules(rule, budget=0)


class TestContainmentBudget:
    def test_search_budget_triggers(self):
        from repro.analysis.containment import contained_va
        from repro.automata.thompson import to_va
        from repro.rgx.parser import parse

        left = to_va(parse("(a|b)*a(a|b)(a|b)(a|b)"))
        right = to_va(parse("(a|b)*...."))
        with pytest.raises(BudgetExceededError):
            contained_va(left, right, budget=3)
