"""The paper's hardness reductions, cross-checked against brute force."""

import pytest

from repro.reductions.dnf_validity import (
    brute_force_valid,
    containment_holds,
    random_dnf,
    to_containment_instance,
)
from repro.reductions.hamiltonian import (
    brute_force_hamiltonian,
    random_graph,
    to_relational_va,
    va_nonempty_on_epsilon,
)
from repro.reductions.one_in_three_sat import (
    OneInThreeInstance,
    brute_force_one_in_three,
    random_instance,
    rule_nonempty_on_hash,
    spanrgx_nonempty_on_epsilon,
    to_daglike_rule,
    to_spanrgx,
)


class TestOneInThreeToSpanRgx:
    """Theorem 5.2."""

    def test_satisfiable_instance(self):
        # p ∨ q ∨ r alone: set exactly one true.
        instance = OneInThreeInstance(((("p", "q", "r")),))
        instance = OneInThreeInstance((("p", "q", "r"),))
        assert brute_force_one_in_three(instance)
        assert spanrgx_nonempty_on_epsilon(instance)

    def test_unsatisfiable_instance(self):
        # Clauses forcing two different "exactly one" choices of the same
        # triple to coexist with a contradiction clause.
        instance = OneInThreeInstance(
            (
                ("p", "p", "q"),  # exactly one of p,p,q: impossible for p=T
                ("p", "q", "r"),
            )
        )
        assert spanrgx_nonempty_on_epsilon(instance) == brute_force_one_in_three(
            instance
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances(self, seed):
        instance = random_instance(3, 4, seed)
        assert spanrgx_nonempty_on_epsilon(instance) == brute_force_one_in_three(
            instance
        )

    def test_produced_expression_is_spanrgx(self):
        from repro.rgx.properties import is_span_rgx

        assert is_span_rgx(to_spanrgx(random_instance(3, 4, 1)))


class TestOneInThreeToRules:
    """Theorem 5.8."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        instance = random_instance(2, 4, seed)
        assert rule_nonempty_on_hash(instance) == brute_force_one_in_three(
            instance
        )

    def test_rule_shape(self):
        from repro.rules.graph import is_dag_like, is_tree_like

        # p is shared by both clauses, making the graph a proper DAG.
        instance = OneInThreeInstance((("p", "q", "r"), ("p", "s", "t")))
        rule = to_daglike_rule(instance).normalized()
        assert rule.is_functional()
        assert is_dag_like(rule)
        assert not is_tree_like(rule)  # shared proposition variables

    def test_only_hash_document_satisfies(self):
        rule = to_daglike_rule(random_instance(2, 4, 3))
        assert rule.evaluate("##") == set()
        assert rule.evaluate("a") == set()


class TestHamiltonian:
    """Proposition 5.4 (Figure 4)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_graphs(self, seed):
        graph = random_graph(4, 0.4, seed)
        assert va_nonempty_on_epsilon(graph) == brute_force_hamiltonian(graph)

    def test_path_graph(self):
        graph = {"v0": {"v1"}, "v1": {"v2"}, "v2": set()}
        assert brute_force_hamiltonian(graph)
        assert va_nonempty_on_epsilon(graph)

    def test_disconnected_graph(self):
        graph = {"v0": set(), "v1": set(), "v2": set()}
        assert not va_nonempty_on_epsilon(graph)

    def test_automaton_is_relational(self):
        # Every accepting run assigns all vertex variables to (1,1).
        from repro.automata.simulate import evaluate_va

        graph = {"v0": {"v1"}, "v1": {"v2"}, "v2": {"v0"}}
        automaton = to_relational_va(graph)
        result = evaluate_va(automaton, "")
        domains = {m.domain for m in result}
        assert len(domains) == 1
        assert domains == {frozenset({"x_v0", "x_v1", "x_v2"})}

    def test_nonempty_only_on_empty_document(self):
        graph = {"v0": {"v1"}, "v1": set()}
        automaton = to_relational_va(graph)
        from repro.automata.simulate import evaluate_va

        assert evaluate_va(automaton, "a") == set()


class TestDnfValidity:
    """Theorem 6.6."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_formulas(self, seed):
        formula = random_dnf(2, 3, seed)
        assert containment_holds(formula) == brute_force_valid(formula)

    def test_instance_automata_are_deterministic_sequential(self):
        from repro.automata.sequential import is_sequential
        from repro.automata.va import is_deterministic

        first, second = to_containment_instance(random_dnf(2, 3, 0))
        assert is_deterministic(first)
        assert is_sequential(first)
        assert is_sequential(second)

    def test_instances_are_not_point_disjoint(self):
        # All spans share position 1 — exactly why Theorem 6.7's polynomial
        # algorithm does not apply to this family.
        from repro.automata.simulate import evaluate_va

        first, _ = to_containment_instance(random_dnf(2, 3, 0))
        result = evaluate_va(first, "")
        assert result and all(not m.is_point_disjoint() for m in result)
