"""Randomised cross-validation: every evaluator against Table 2.

The reference evaluator (`repro.rgx.semantics`) is the ground truth; this
module drives seeded random expressions and documents through every other
evaluation path in the library and demands identical mapping sets.  The
final class property-tests the compilation planner: the planned engine at
*every* opt level must agree with the unplanned engine on random VAs and
documents.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.determinize import determinize
from repro.automata.sequential import make_sequential
from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va, to_vastk
from repro.engine.compiled import CompiledSpanner
from repro.evaluation.enumerate import enumerate_va
from repro.plan import OPT_LEVELS, plan
from repro.rgx.rewrite import simplify
from repro.rgx.semantics import mappings
from repro.workloads.expressions import random_document, random_rgx, random_va

SEEDS = range(24)


def _case(seed: int):
    expression = random_rgx(9, seed)
    document = random_document(4, seed=seed * 31 + 1)
    return expression, document


@pytest.mark.parametrize("seed", SEEDS)
def test_va_evaluator(seed):
    expression, document = _case(seed)
    assert evaluate_va(to_va(expression), document) == mappings(
        expression, document
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_vastk_evaluator(seed):
    expression, document = _case(seed)
    assert to_vastk(expression).evaluate(document) == mappings(
        expression, document
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_oracle_enumeration(seed):
    expression, document = _case(seed)
    assert set(enumerate_va(to_va(expression), document)) == mappings(
        expression, document
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_sequentialized_evaluator(seed):
    expression, document = _case(seed)
    assert evaluate_va(
        make_sequential(to_va(expression)), document
    ) == mappings(expression, document)


@pytest.mark.parametrize("seed", SEEDS)
def test_determinized_evaluator(seed):
    expression, document = _case(seed)
    assert evaluate_va(determinize(to_va(expression)), document) == mappings(
        expression, document
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_simplifier(seed):
    expression, document = _case(seed)
    assert mappings(simplify(expression), document) == mappings(
        expression, document
    )


@pytest.mark.parametrize("seed", range(12))
def test_path_union_roundtrip(seed):
    from repro.automata.path_union import vastk_to_rgx

    expression = random_rgx(7, seed)
    document = random_document(3, seed=seed * 7 + 2)
    recovered = vastk_to_rgx(to_vastk(expression))
    expected = mappings(expression, document)
    if recovered is None:
        assert expected == set()
    else:
        assert mappings(recovered, document) == expected


@pytest.mark.parametrize("seed", range(12))
def test_rgx_to_rules_roundtrip(seed):
    from repro.rules.translate import rgx_to_treelike_rules

    expression = random_rgx(7, seed + 100)
    document = random_document(3, seed=seed * 13 + 5)
    rules = rgx_to_treelike_rules(expression)
    produced = set()
    for rule in rules:
        produced |= rule.evaluate(document)
    assert produced == mappings(expression, document)


@pytest.mark.parametrize("seed", range(16))
def test_outputs_always_hierarchical(seed):
    """Corollary of Theorems 4.3/4.4: RGX outputs are hierarchical."""
    expression, document = _case(seed)
    for mapping in mappings(expression, document):
        assert mapping.is_hierarchical()


class TestPlanEquivalence:
    """The planner is invisible to semantics: planned == unplanned, always."""

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_planned_engine_matches_unplanned_on_random_vas(
        self, va_seed, doc_seed
    ):
        automaton = random_va(6, seed=va_seed)
        document = random_document(5, seed=doc_seed)
        unplanned = CompiledSpanner(automaton).mappings(document)
        for level in OPT_LEVELS:
            planned = CompiledSpanner(plan=plan(automaton, level))
            assert planned.mappings(document) == unplanned, level

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_planned_engine_matches_reference_on_random_rgx(
        self, rgx_seed, doc_seed
    ):
        expression = random_rgx(8, seed=rgx_seed)
        document = random_document(4, seed=doc_seed)
        expected = mappings(expression, document)
        for level in OPT_LEVELS:
            planned = CompiledSpanner(plan=plan(expression, level))
            assert planned.mappings(document) == expected, level

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_planned_enumeration_order_matches_unplanned(
        self, va_seed, doc_seed
    ):
        automaton = random_va(6, seed=va_seed)
        document = random_document(4, seed=doc_seed)
        unplanned = list(CompiledSpanner(automaton).enumerate(document))
        for level in OPT_LEVELS:
            planned = CompiledSpanner(plan=plan(automaton, level))
            assert list(planned.enumerate(document)) == unplanned, level
