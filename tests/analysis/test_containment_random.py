"""Randomised cross-validation of the Theorem 6.4 containment search.

The subset-pair algorithm is compared against brute-force containment
over all documents up to a small bound, on random RGX pairs.  (A genuine
counterexample may be longer than the bound, so brute force can only
*refute* a negative verdict when its witness is short — we compare in the
direction that is sound: if the algorithm says "contained", brute force
must find no counterexample; if it says "not contained", the returned
witness must check out exactly.)
"""

import pytest

from repro.analysis.containment import (
    contained_bounded,
    containment_counterexample,
)
from repro.automata.thompson import to_va
from repro.workloads.expressions import random_rgx


@pytest.mark.parametrize("seed", range(30))
def test_containment_agrees_with_bounded_bruteforce(seed):
    first = to_va(random_rgx(6, seed=seed))
    second = to_va(random_rgx(6, seed=seed + 1000))
    witness = containment_counterexample(first, second)
    if witness is None:
        assert contained_bounded(first, second, max_length=4)
    else:
        document, mapping = witness
        from repro.automata.simulate import evaluate_va

        assert mapping in evaluate_va(first, document)
        assert mapping not in evaluate_va(second, document)


@pytest.mark.parametrize("seed", range(12))
def test_self_containment_always_holds(seed):
    automaton = to_va(random_rgx(7, seed=seed))
    assert containment_counterexample(automaton, automaton) is None


@pytest.mark.parametrize("seed", range(12))
def test_union_dominates_parts(seed):
    from repro.automata.algebra import union_va

    first = to_va(random_rgx(5, seed=seed))
    second = to_va(random_rgx(5, seed=seed + 500))
    combined = union_va(first, second)
    assert containment_counterexample(first, combined) is None
    assert containment_counterexample(second, combined) is None


@pytest.mark.parametrize("seed", range(8))
def test_projection_weakens_containment_direction(seed):
    """π_∅(A) accepts iff A accepts — boolean containment both ways."""
    from repro.automata.algebra import project_va
    from repro.automata.simulate import evaluate_va

    automaton = to_va(random_rgx(5, seed=seed))
    boolean = project_va(automaton, set())
    for document in ["", "a", "b", "ab", "ba"]:
        assert bool(evaluate_va(boolean, document)) == bool(
            evaluate_va(automaton, document)
        )
