"""Satisfiability (Theorems 6.1–6.3 and Lemma D.1)."""

import pytest

from repro.analysis.satisfiability import (
    satisfiable_rgx,
    satisfiable_rule,
    satisfiable_rule_bounded,
    satisfying_document,
    witness_length_bound,
)
from repro.automata.thompson import to_va
from repro.rgx.ast import ANY_STAR, char, concat
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.rules.cycles import unsatisfiable_daglike_rule
from repro.rules.rule import Rule, bare, rule
from repro.util.errors import NotSupportedError


class TestVaSatisfiability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a*", True),
            ("x{a*}y{b*}", True),
            ("x{a}x{b}", False),       # variable reuse
            ("x{x{a}}", False),        # self-nesting
            ("(x{a})*", True),         # one iteration works
            ("x{[^a]}a", True),
            ("x{εε}", True),
        ],
    )
    def test_satisfiability(self, text, expected):
        assert satisfiable_rgx(parse(text)) == expected

    @pytest.mark.parametrize(
        "text", ["a*", "x{a*}y{b*}", "(x{a})*", "x{[^a]}a", ".*x{ab}.*"]
    )
    def test_witness_actually_satisfies(self, text):
        expression = parse(text)
        witness = satisfying_document(to_va(expression))
        assert witness is not None
        assert mappings(expression, witness)

    @pytest.mark.parametrize("text", ["a*", "x{a*}y{b*}", "(x{a})*", ".*x{ab}.*"])
    def test_witness_within_pumping_bound(self, text):
        # Lemma D.1: a witness of length ≤ (2|V|+1)·|Q| exists; ours is a
        # shortest-path witness, so certainly within the bound.
        automaton = to_va(parse(text))
        witness = satisfying_document(automaton)
        assert witness is not None
        assert len(witness) <= witness_length_bound(automaton)

    def test_unsatisfiable_has_no_witness(self):
        assert satisfying_document(to_va(parse("x{a}x{b}"))) is None

    def test_functional_rgx_always_satisfiable(self):
        # Section 4.3's observation, exercised on a few instances.
        from repro.rgx.properties import is_functional

        for text in ["x{a}", "x{a*}y{b*}", "x{y{a}b}", "x{a}|x{b}"]:
            expression = parse(text)
            assert is_functional(expression)
            assert satisfiable_rgx(expression)


class TestRuleSatisfiability:
    def test_sequential_treelike_always_satisfiable(self):
        # Theorem 6.3's positive half.
        r = rule(bare("x"), ("x", concat(char("a"), bare("y"))), ("y", ANY_STAR))
        assert satisfiable_rule(r)

    def test_unsatisfiable_daglike_detected(self):
        assert not satisfiable_rule(unsatisfiable_daglike_rule())

    def test_cyclic_unsatisfiable_rule(self):
        # x ∧ x.y ∧ y.(a·x): the paper's unsatisfiable example.
        r = rule(bare("x"), ("x", bare("y")), ("y", concat(char("a"), bare("x"))))
        assert not satisfiable_rule(r)

    def test_cyclic_satisfiable_rule(self):
        r = rule(bare("x"), ("x", bare("y")), ("y", bare("x")))
        assert satisfiable_rule(r)

    def test_non_simple_unsupported(self):
        r = Rule(bare("x"), (("x", ANY_STAR), ("x", char("a"))))
        with pytest.raises(NotSupportedError):
            satisfiable_rule(r)

    @pytest.mark.parametrize(
        "conjuncts,expected",
        [
            (((("x", char("a"))),), True),
            ((("x", concat(char("a"), bare("y"))), ("y", char("b"))), True),
        ],
    )
    def test_against_bounded_brute_force(self, conjuncts, expected):
        r = Rule(concat(ANY_STAR, bare("x"), ANY_STAR), tuple(conjuncts))
        assert satisfiable_rule(r) == expected
        assert satisfiable_rule_bounded(r, max_length=3) == expected

    def test_reduction_instances_cross_checked(self):
        from repro.reductions.one_in_three_sat import (
            brute_force_one_in_three,
            random_instance,
            to_daglike_rule,
        )

        for seed in range(6):
            instance = random_instance(2, 4, seed)
            r = to_daglike_rule(instance)
            assert satisfiable_rule(r) == brute_force_one_in_three(instance)
