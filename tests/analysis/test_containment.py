"""Containment (Theorems 6.4, 6.6, 6.7)."""

import pytest

from repro.analysis.containment import (
    contained_det_sequential_point_disjoint,
    contained_va,
    containment_counterexample,
    equivalent_va,
    is_point_disjoint_va,
)
from repro.automata.determinize import determinize
from repro.automata.sequential import make_sequential
from repro.automata.thompson import to_va
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings


def va(text):
    return to_va(parse(text))


class TestGeneralContainment:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("a*", "(a|b)*", True),
            ("(a|b)*", "a*", False),
            ("x{a}b", "x{a}.", True),
            ("x{a}b", "y{a}b", False),
            ("x{a}|x{b}", "x{a|b}", True),
            ("x{a|b}", "x{a}", False),
            ("x{a*}y{b*}", "x{.*}y{.*}", True),
            ("x{.*}y{.*}", "x{a*}y{b*}", False),
            ("x{ab}", "x{a.}", True),
            ("(x{a}|y{b})*", "x{a}y{b}|y{b}x{a}|x{a}|y{b}|ε", True),
        ],
    )
    def test_containment(self, left, right, expected):
        assert contained_va(va(left), va(right)) == expected

    def test_counterexample_is_genuine(self):
        witness = containment_counterexample(va("x{a|b}"), va("x{a}"))
        assert witness is not None
        document, mapping = witness
        assert mapping in mappings(parse("x{a|b}"), document)
        assert mapping not in mappings(parse("x{a}"), document)

    def test_contained_pair_has_no_counterexample(self):
        assert containment_counterexample(va("x{a}b"), va("x{a}.")) is None

    def test_unused_open_does_not_confuse(self):
        # An automaton that opens x and never closes it is equivalent to
        # one without the open (sequentialisation handles this).
        from repro.automata.labels import Open, sym
        from repro.automata.va import VABuilder

        builder = VABuilder()
        q0, q1, q2 = builder.add_states(3)
        builder.add(q0, Open("x"), q1)
        builder.add(q1, sym("a"), q2)
        opener = builder.build(initial=q0, final=q2)
        assert equivalent_va(opener, va("a"))

    def test_equivalence_of_translations(self):
        # x{a*}y{b*} survives a round trip through VAstk and back.
        from repro.automata.path_union import vastk_to_rgx
        from repro.automata.thompson import to_vastk

        expression = parse("x{a*}y{b*}")
        recovered = vastk_to_rgx(to_vastk(expression))
        assert equivalent_va(to_va(expression), to_va(recovered))

    def test_empty_spanner_contained_in_everything(self):
        assert contained_va(va("x{a}x{b}"), va("c"))


class TestPointDisjointPolynomial:
    def mk(self, text):
        return determinize(make_sequential(va(text)))

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("x{ab}c", "x{ab}.", True),
            ("x{a}bc", "x{a}bd", False),
            ("ax{b}c", "ax{b}c|ax{b}d", True),
            ("ax{b}c|ax{b}d", "ax{b}c", False),
            ("ax{bb}cc", "ax{bb}c.", True),
        ],
    )
    def test_matches_general_algorithm(self, left, right, expected):
        first, second = self.mk(left), self.mk(right)
        assert is_point_disjoint_va(first, ["abc", "abcd", "abbcc"])
        assert (
            contained_det_sequential_point_disjoint(first, second) == expected
        )
        assert contained_va(first, second) == expected

    def test_rejects_non_sequential(self):
        from repro.util.errors import AutomatonError

        non_sequential = va("(x{a})*")
        with pytest.raises(AutomatonError):
            contained_det_sequential_point_disjoint(non_sequential, non_sequential)


class TestDnfReduction:
    """Theorem 6.6: the coNP-hardness family solved by the general
    algorithm; brute force agrees."""

    def test_valid_and_invalid_formulas(self):
        from repro.reductions.dnf_validity import (
            DnfFormula,
            brute_force_valid,
            containment_holds,
        )

        tautology = DnfFormula(
            (
                (("p0", True), ("p1", True), ("p2", True)),
                (("p0", False), ("p1", True), ("p2", True)),
                (("p0", True), ("p1", False), ("p2", True)),
                (("p0", True), ("p1", True), ("p2", False)),
                (("p0", False), ("p1", False), ("p2", True)),
                (("p0", False), ("p1", True), ("p2", False)),
                (("p0", True), ("p1", False), ("p2", False)),
                (("p0", False), ("p1", False), ("p2", False)),
            )
        )
        assert brute_force_valid(tautology)
        assert containment_holds(tautology)

        single = DnfFormula(((("p0", True), ("p1", True), ("p2", True)),))
        assert not brute_force_valid(single)
        assert not containment_holds(single)

    def test_random_instances(self):
        from repro.reductions.dnf_validity import (
            brute_force_valid,
            containment_holds,
            random_dnf,
        )

        for seed in range(5):
            formula = random_dnf(2, 3, seed)
            assert containment_holds(formula) == brute_force_valid(formula)
