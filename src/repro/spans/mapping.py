"""Mappings — partial functions from variables to spans (paper, Section 2).

The paper's central move is to let spanners output *mappings* (partial
functions ``V ⇀ span(d)``) instead of relations, so that documents with
missing or optional parts still produce maximal output.  This module
implements:

* :class:`Mapping` — immutable, hashable partial functions with the paper's
  operations: compatibility ``µ1 ~ µ2``, union ``µ1 ∪ µ2``, the singleton
  ``[x → s]`` and the empty mapping;
* the join ``M1 ⋈ M2`` of two *sets* of mappings;
* the *hierarchical* and *point-disjoint* predicates used in Sections 4
  and 6;
* :data:`NULL` — the ``⊥`` marker of Section 5.1's extended mappings, which
  asserts a variable is *not* assigned (as opposed to "unconstrained").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping as AbstractMapping
from typing import Union

from repro.spans.span import Span
from repro.util.errors import MappingError

Variable = str
"""Variables are plain strings, disjoint from the alphabet by convention."""


class _Null:
    """The ``⊥`` marker for extended mappings (Section 5.1).

    ``NULL`` in an *extended* mapping says the variable must remain
    unassigned in any completion, whereas absence from the domain says the
    variable is still free to take any value.
    """

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()

SpanOrNull = Union[Span, _Null]


class Mapping:
    """An immutable partial function from variables to spans.

    >>> from repro.spans import Span, Mapping
    >>> mu = Mapping({"x": Span(1, 12)})
    >>> mu["x"]
    Span(begin=1, end=12)
    >>> mu.domain
    frozenset({'x'})

    Mappings are hashable, so the semantics ``⟦γ⟧_d`` is a plain ``set`` of
    mappings and the paper's join is literal code (see :func:`join`).
    """

    __slots__ = ("_assignments", "_hash")

    def __init__(
        self,
        assignments: AbstractMapping[Variable, Span] | Iterable[tuple[Variable, Span]] = (),
    ) -> None:
        items = dict(assignments)
        for variable, span in items.items():
            if not isinstance(span, Span):
                raise MappingError(
                    f"variable {variable!r} must map to a Span, got {span!r}"
                )
        self._assignments: dict[Variable, Span] = items
        self._hash: int | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def empty(cls) -> "Mapping":
        """The empty mapping ``∅`` (defined on no variable)."""
        return _EMPTY

    @classmethod
    def singleton(cls, variable: Variable, span: Span) -> "Mapping":
        """The mapping ``[x → s]`` defined only on ``variable``."""
        return cls({variable: span})

    # -- mapping protocol ----------------------------------------------------

    @property
    def domain(self) -> frozenset[Variable]:
        """``dom(µ)`` — the variables on which the mapping is defined."""
        return frozenset(self._assignments)

    def __getitem__(self, variable: Variable) -> Span:
        try:
            return self._assignments[variable]
        except KeyError:
            raise MappingError(f"mapping undefined on variable {variable!r}") from None

    def get(self, variable: Variable) -> Span | None:
        """The span assigned to ``variable``, or ``None`` if undefined."""
        return self._assignments.get(variable)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._assignments

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def items(self) -> Iterator[tuple[Variable, Span]]:
        return iter(self._assignments.items())

    def as_dict(self) -> dict[Variable, Span]:
        """A fresh mutable ``dict`` copy of the assignments."""
        return dict(self._assignments)

    # -- equality / hashing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._assignments.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._assignments:
            return "Mapping.empty()"
        inner = ", ".join(
            f"{var} -> {span}" for var, span in sorted(self._assignments.items())
        )
        return f"Mapping({{{inner}}})"

    # -- paper operations ----------------------------------------------------

    def compatible(self, other: "Mapping") -> bool:
        """``µ1 ~ µ2``: agreement on every shared variable."""
        small, large = self._assignments, other._assignments
        if len(small) > len(large):
            small, large = large, small
        for variable, span in small.items():
            if variable in large and large[variable] != span:
                return False
        return True

    def union(self, other: "Mapping") -> "Mapping":
        """``µ1 ∪ µ2`` — extend ``self`` with ``other`` (requires ``µ1 ~ µ2``)."""
        if not self.compatible(other):
            raise MappingError(f"incompatible mappings {self} and {other}")
        merged = dict(self._assignments)
        merged.update(other._assignments)
        return Mapping(merged)

    def disjoint_union(self, other: "Mapping") -> "Mapping":
        """Union requiring *disjoint* domains (concatenation semantics).

        Table 2's rule for ``R1 . R2`` demands ``dom(µ1) ∩ dom(µ2) = ∅``;
        this helper raises :class:`MappingError` when the domains intersect.
        """
        if self._assignments.keys() & other._assignments.keys():
            raise MappingError(
                f"domains of {self} and {other} are not disjoint"
            )
        merged = dict(self._assignments)
        merged.update(other._assignments)
        return Mapping(merged)

    def extend(self, variable: Variable, span: Span) -> "Mapping":
        """``µ[x → s]`` — a copy with one additional/overridden assignment."""
        merged = dict(self._assignments)
        merged[variable] = span
        return Mapping(merged)

    def project(self, variables: Iterable[Variable]) -> "Mapping":
        """Restriction of the mapping to the given variables."""
        keep = set(variables)
        return Mapping(
            {v: s for v, s in self._assignments.items() if v in keep}
        )

    def drop(self, variables: Iterable[Variable]) -> "Mapping":
        """A copy with the given variables removed from the domain."""
        remove = set(variables)
        return Mapping(
            {v: s for v, s in self._assignments.items() if v not in remove}
        )

    def rename(self, renaming: AbstractMapping[Variable, Variable]) -> "Mapping":
        """A copy with variables renamed (identity on unmentioned ones)."""
        return Mapping(
            {renaming.get(v, v): s for v, s in self._assignments.items()}
        )

    def shift(self, offset: int) -> "Mapping":
        """All spans translated by ``offset`` (rule evaluation re-rooting)."""
        return Mapping(
            {v: s.shift(offset) for v, s in self._assignments.items()}
        )

    def extends(self, other: "Mapping") -> bool:
        """True when ``other ⊆ self`` as partial functions."""
        for variable, span in other._assignments.items():
            if self._assignments.get(variable) != span:
                return False
        return True

    # -- structural predicates (Sections 2 and 6) ------------------------------

    def is_hierarchical(self) -> bool:
        """Paper, Section 2: every pair of assigned spans nests or is disjoint."""
        spans = list(self._assignments.values())
        for i, first in enumerate(spans):
            for second in spans[i + 1 :]:
                if not first.overlaps_hierarchically(second):
                    return False
        return True

    def is_point_disjoint(self) -> bool:
        """Paper, Section 6: images of *different* variables share no endpoints."""
        entries = list(self._assignments.values())
        for i, first in enumerate(entries):
            for second in entries[i + 1 :]:
                if not first.point_disjoint(second):
                    return False
        return True

    def is_total_on(self, variables: Iterable[Variable]) -> bool:
        """True when the mapping assigns every variable in ``variables``."""
        return set(variables) <= self._assignments.keys()


_EMPTY = Mapping()


class ExtendedMapping:
    """An *extended* mapping — variables map to spans or ``⊥`` (Section 5.1).

    Used as the third input of the ``Eval[L]`` decision problem:
    ``µ(x) = ⊥`` pins ``x`` to be unassigned, a variable outside the domain
    is unconstrained, and a span value pins the assignment.
    """

    __slots__ = ("_assignments",)

    def __init__(
        self,
        assignments: AbstractMapping[Variable, SpanOrNull] | Iterable[tuple[Variable, SpanOrNull]] = (),
    ) -> None:
        items = dict(assignments)
        for variable, value in items.items():
            if not (isinstance(value, Span) or value is NULL):
                raise MappingError(
                    f"variable {variable!r} must map to a Span or NULL, got {value!r}"
                )
        self._assignments: dict[Variable, SpanOrNull] = items

    @classmethod
    def empty(cls) -> "ExtendedMapping":
        return cls()

    @classmethod
    def from_mapping(
        cls, mapping: Mapping, null_variables: Iterable[Variable] = ()
    ) -> "ExtendedMapping":
        """Lift a plain mapping, pinning ``null_variables`` to ``⊥``."""
        items: dict[Variable, SpanOrNull] = dict(mapping.items())
        for variable in null_variables:
            if variable in items:
                raise MappingError(
                    f"variable {variable!r} cannot be both assigned and NULL"
                )
            items[variable] = NULL
        return cls(items)

    @classmethod
    def total_for(cls, mapping: Mapping, variables: Iterable[Variable]) -> "ExtendedMapping":
        """The extended mapping that *is exactly* ``mapping`` on ``variables``.

        Every variable of ``variables`` not assigned by ``mapping`` is pinned
        to ``⊥``; this turns ``Eval`` into ``ModelCheck`` (Section 5.1).
        """
        items: dict[Variable, SpanOrNull] = dict(mapping.items())
        for variable in variables:
            items.setdefault(variable, NULL)
        return cls(items)

    @property
    def domain(self) -> frozenset[Variable]:
        return frozenset(self._assignments)

    def value(self, variable: Variable) -> SpanOrNull | None:
        """Span, ``NULL``, or ``None`` when the variable is unconstrained."""
        return self._assignments.get(variable)

    def __getitem__(self, variable: Variable) -> SpanOrNull:
        try:
            return self._assignments[variable]
        except KeyError:
            raise MappingError(f"extended mapping undefined on {variable!r}") from None

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def items(self) -> Iterator[tuple[Variable, SpanOrNull]]:
        return iter(self._assignments.items())

    def assigned(self) -> Mapping:
        """The plain mapping formed by the span-valued entries."""
        return Mapping(
            {v: s for v, s in self._assignments.items() if isinstance(s, Span)}
        )

    def nulled(self) -> frozenset[Variable]:
        """The variables pinned to ``⊥``."""
        return frozenset(
            v for v, s in self._assignments.items() if s is NULL
        )

    def pin(self, variable: Variable, value: SpanOrNull) -> "ExtendedMapping":
        """``µ[x → s]`` for extended mappings (Algorithm 2's refinement step)."""
        items = dict(self._assignments)
        items[variable] = value
        return ExtendedMapping(items)

    def admits(self, mapping: Mapping) -> bool:
        """True when ``mapping`` is a completion: ``self ⊆ mapping`` as in §5.1.

        Span-valued entries must match exactly and ``⊥`` entries must be
        absent from ``mapping``'s domain.
        """
        for variable, value in self._assignments.items():
            if value is NULL:
                if variable in mapping:
                    return False
            elif mapping.get(variable) != value:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedMapping):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        return hash(frozenset(self._assignments.items()))

    def __repr__(self) -> str:
        if not self._assignments:
            return "ExtendedMapping.empty()"
        inner = ", ".join(
            f"{var} -> {value}"
            for var, value in sorted(self._assignments.items(), key=lambda kv: kv[0])
        )
        return f"ExtendedMapping({{{inner}}})"


def join(first: Iterable[Mapping], second: Iterable[Mapping]) -> set[Mapping]:
    """The join ``M1 ⋈ M2`` of two sets of mappings (paper, Section 2).

    ``M1 ⋈ M2 = {µ1 ∪ µ2 | µ1 ∈ M1, µ2 ∈ M2, µ1 ~ µ2}``.
    """
    left = list(first)
    right = list(second)
    result: set[Mapping] = set()
    for mu1 in left:
        for mu2 in right:
            if mu1.compatible(mu2):
                result.add(mu1.union(mu2))
    return result


def join_all(mapping_sets: Iterable[Iterable[Mapping]]) -> set[Mapping]:
    """Iterated join ``M1 ⋈ M2 ⋈ ... ⋈ Mk`` (empty product is ``{∅}``)."""
    result: set[Mapping] = {Mapping.empty()}
    for mapping_set in mapping_sets:
        result = join(result, mapping_set)
        if not result:
            return result
    return result


def is_hierarchical_set(mappings: Iterable[Mapping]) -> bool:
    """A set of mappings is hierarchical iff all its members are."""
    return all(mapping.is_hierarchical() for mapping in mappings)


def all_total_mappings(
    variables: Iterable[Variable], document_length: int
) -> set[Mapping]:
    """All *total* functions from ``variables`` to ``span(d)`` (Theorem 4.2).

    Used to recover the semantics of [2]'s span regular expressions, where
    unmatched variables take arbitrary values: ``⟦γ⟧'_d = M ⋈ ⟦γ⟧_d``.
    Exponential in the number of variables — intended for small inputs.
    """
    from repro.spans.span import all_spans

    variables = sorted(set(variables))
    spans = all_spans(document_length)
    result: set[Mapping] = {Mapping.empty()}
    for variable in variables:
        result = {
            mapping.extend(variable, span)
            for mapping in result
            for span in spans
        }
    return result
