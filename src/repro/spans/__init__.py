"""Spans, documents and mappings — the substrate of Section 2 of the paper."""

from repro.spans.document import Document, as_text
from repro.spans.mapping import (
    NULL,
    ExtendedMapping,
    Mapping,
    Variable,
    all_total_mappings,
    is_hierarchical_set,
    join,
    join_all,
)
from repro.spans.span import Span, all_spans, spans_with_content

__all__ = [
    "Document",
    "ExtendedMapping",
    "Mapping",
    "NULL",
    "Span",
    "Variable",
    "all_spans",
    "all_total_mappings",
    "as_text",
    "is_hierarchical_set",
    "join",
    "join_all",
    "spans_with_content",
]
