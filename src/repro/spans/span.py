"""Spans — intervals inside a document (paper, Section 2).

A *span* of a document ``d`` is a pair ``(i, j)`` with
``1 <= i <= j <= |d| + 1``.  It denotes the continuous region of ``d`` whose
content is the infix between positions ``i`` and ``j - 1`` (1-based, as in
the paper).  When ``i == j`` the content is the empty string.

The 1-based convention is kept deliberately so that every worked example in
the paper holds verbatim::

    >>> from repro.spans import Span
    >>> d0 = "Information extraction"
    >>> Span(1, 12).content(d0)
    'Information'
    >>> Span(13, 23).content(d0)
    'extraction'
"""

from __future__ import annotations

from typing import NamedTuple

from repro.util.errors import SpanError


class Span(NamedTuple):
    """A span ``(begin, end)`` with the paper's 1-based, end-exclusive style.

    ``begin`` and ``end`` are positions *between* characters: position 1 is
    before the first character and position ``|d| + 1`` after the last.  The
    content of ``(i, j)`` is ``d[i-1 : j-1]`` in Python indexing.
    """

    begin: int
    end: int

    def __str__(self) -> str:
        return f"({self.begin}, {self.end})"

    @property
    def length(self) -> int:
        """Number of characters covered by the span."""
        return self.end - self.begin

    def is_empty(self) -> bool:
        """True when the span covers no characters (``i == j``)."""
        return self.begin == self.end

    def validate(self, document_length: int | None = None) -> "Span":
        """Check well-formedness; return ``self`` for chaining.

        Raises :class:`SpanError` if ``begin``/``end`` do not satisfy
        ``1 <= begin <= end`` (and ``end <= document_length + 1`` when a
        document length is given).
        """
        if self.begin < 1 or self.end < self.begin:
            raise SpanError(f"ill-formed span {self}")
        if document_length is not None and self.end > document_length + 1:
            raise SpanError(
                f"span {self} exceeds document of length {document_length}"
            )
        return self

    def content(self, document: str) -> str:
        """The substring of ``document`` selected by this span."""
        self.validate(len(document))
        return document[self.begin - 1 : self.end - 1]

    def contains(self, other: "Span") -> bool:
        """True when ``other`` lies fully inside this span (paper's ⊇)."""
        return self.begin <= other.begin and other.end <= self.end

    def disjoint(self, other: "Span") -> bool:
        """True when the two spans share no positions strictly inside both.

        Following the standard convention for spans, two spans are disjoint
        when their character ranges do not overlap; touching at a boundary
        (``self.end == other.begin``) still counts as disjoint.
        """
        return self.end <= other.begin or other.end <= self.begin

    def point_disjoint(self, other: "Span") -> bool:
        """Section 6's stronger notion: endpoint sets do not intersect.

        Two spans ``(i1, j1)`` and ``(i2, j2)`` are *point-disjoint* if
        ``{i1, j1} ∩ {i2, j2} = ∅``.
        """
        return not ({self.begin, self.end} & {other.begin, other.end})

    def overlaps_hierarchically(self, other: "Span") -> bool:
        """True when the spans nest or are disjoint (never partially overlap).

        This is the pairwise condition underlying *hierarchical* mappings:
        either one span contains the other, or they are disjoint.
        """
        return (
            self.contains(other)
            or other.contains(self)
            or self.disjoint(other)
        )

    def concatenate(self, other: "Span") -> "Span":
        """Concatenation ``s1 . s2``, defined when ``self.end == other.begin``."""
        if self.end != other.begin:
            raise SpanError(f"cannot concatenate {self} with {other}")
        return Span(self.begin, other.end)

    def shift(self, offset: int) -> "Span":
        """The span translated by ``offset`` positions (used by rule evaluation

        to re-root a sub-document span into document coordinates).
        """
        return Span(self.begin + offset, self.end + offset)


def all_spans(document_length: int) -> list[Span]:
    """``span(d)``: every span of a document of the given length.

    The paper defines ``span(d) = {(i, j) | 1 <= i <= j <= |d| + 1}``; there
    are ``(n + 1)(n + 2) / 2`` of them for ``|d| = n``.
    """
    limit = document_length + 1
    return [
        Span(i, j) for i in range(1, limit + 1) for j in range(i, limit + 1)
    ]


def spans_with_content(document: str, content: str) -> list[Span]:
    """All spans of ``document`` whose content equals ``content``.

    Convenience used heavily in tests; mirrors how the paper picks out the
    pairs in ``[a]_d`` for a letter ``a``.
    """
    if content == "":
        return [Span(i, i) for i in range(1, len(document) + 2)]
    found: list[Span] = []
    start = document.find(content)
    while start != -1:
        found.append(Span(start + 1, start + 1 + len(content)))
        start = document.find(content, start + 1)
    return found
