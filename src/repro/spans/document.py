"""Documents — the strings information is extracted from (paper, Section 2).

A document is just a string over a finite alphabet.  :class:`Document` is a
thin immutable wrapper that carries span helpers and an explicit alphabet so
that expressions using the ``Σ`` wildcard can be evaluated against it.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.spans.span import Span, all_spans
from repro.util.errors import SpanError


class Document:
    """An immutable document with 1-based span accessors.

    >>> d0 = Document("Information extraction")
    >>> len(d0)
    22
    >>> d0[Span(1, 12)]
    'Information'
    """

    __slots__ = ("_text",)

    def __init__(self, text: str) -> None:
        self._text = text

    @property
    def text(self) -> str:
        """The underlying string."""
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Document):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._text)

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 40 else self._text[:37] + "..."
        return f"Document({preview!r})"

    def __str__(self) -> str:
        return self._text

    def __getitem__(self, span: Span) -> str:
        """Content of a span: ``d[(i, j)]`` is the infix from ``i`` to ``j-1``."""
        return span.content(self._text)

    def letter(self, position: int) -> str:
        """The letter at 1-based ``position`` (``a_position`` in the paper)."""
        if not 1 <= position <= len(self._text):
            raise SpanError(
                f"position {position} outside document of length {len(self._text)}"
            )
        return self._text[position - 1]

    @property
    def positions(self) -> range:
        """All positions ``1 .. |d| + 1`` (the places a span may begin/end)."""
        return range(1, len(self._text) + 2)

    def spans(self) -> list[Span]:
        """``span(d)`` — every span of this document."""
        return all_spans(len(self._text))

    def iter_spans(self) -> Iterator[Span]:
        """Lazily iterate over ``span(d)`` in lexicographic order."""
        limit = len(self._text) + 1
        for i in range(1, limit + 1):
            for j in range(i, limit + 1):
                yield Span(i, j)

    def whole(self) -> Span:
        """The span ``(1, |d| + 1)`` covering the entire document."""
        return Span(1, len(self._text) + 1)

    def alphabet(self) -> frozenset[str]:
        """The set of letters occurring in the document."""
        return frozenset(self._text)


def as_text(document: "Document | str") -> str:
    """Accept either a :class:`Document` or a plain string (public-API sugar)."""
    if isinstance(document, Document):
        return document.text
    return document
