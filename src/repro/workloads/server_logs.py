"""Synthetic web-server logs with optional fields.

A second incomplete-information workload (complementing the land
registry): access-log lines where the authenticated user and the referrer
are optional::

    GET /index.html 200\\n
    GET /admin 403 user=root\\n
    GET /img/a.png 200 user=ana ref=/index.html\\n

The extraction task — path, status, and whichever of user/referrer are
present — exercises partial mappings with *two* independent optional
fields (four distinct mapping domains).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rgx.ast import (
    EPSILON,
    Rgx,
    VarBind,
    concat,
    not_chars,
    star,
    string,
    union,
)

_PATHS = ["/index.html", "/admin", "/img/a.png", "/api/v1/items", "/login"]
_USERS = ["root", "ana", "bruno", "guest"]
_STATUS = ["200", "403", "404", "500"]


@dataclass(frozen=True)
class LogLine:
    path: str
    status: str
    user: str | None
    referrer: str | None

    def render(self) -> str:
        line = f"GET {self.path} {self.status}"
        if self.user is not None:
            line += f" user={self.user}"
        if self.referrer is not None:
            line += f" ref={self.referrer}"
        return line + "\n"


def generate_lines(
    line_count: int,
    user_probability: float = 0.5,
    referrer_probability: float = 0.3,
    seed: int = 0,
) -> list[LogLine]:
    rng = random.Random(seed)
    lines = []
    for _ in range(line_count):
        lines.append(
            LogLine(
                path=rng.choice(_PATHS),
                status=rng.choice(_STATUS),
                user=rng.choice(_USERS) if rng.random() < user_probability else None,
                referrer=rng.choice(_PATHS) if rng.random() < referrer_probability else None,
            )
        )
    return lines


def render(lines: list[LogLine]) -> str:
    return "".join(line.render() for line in lines)


def generate_document(line_count: int, seed: int = 0) -> str:
    return render(generate_lines(line_count, seed=seed))


def access_expression() -> Rgx:
    """Extract path/status/user/ref with both optional fields as RGX."""
    sigma_star = star(not_chars(""))
    token = star(not_chars(" \n"))
    optional_user = union(
        concat(string(" user="), VarBind("user", token)), EPSILON
    )
    optional_ref = union(
        concat(string(" ref="), VarBind("ref", token)), EPSILON
    )
    return concat(
        sigma_star,
        string("GET "),
        VarBind("path", token),
        string(" "),
        VarBind("status", token),
        optional_user,
        optional_ref,
        string("\n"),
        sigma_star,
    )


def compiled_spanner():
    """The access-log extraction compiled once for repeated serving."""
    from repro.engine.compiled import compile_spanner

    return compile_spanner(access_expression())


def corpus(
    document_count: int, lines_per_document: int = 12, seed: int = 0
):
    """A log *corpus*: many access-log documents with stable ids.

    Ids are ``access-00000.log``, ``access-00001.log``, …; each document
    draws from its own derived seed.

    >>> corpus(2, lines_per_document=1).doc_ids()
    ['access-00000.log', 'access-00001.log']
    """
    from repro.service.corpus import InMemoryCorpus

    return InMemoryCorpus(
        {
            f"access-{index:05d}.log": generate_document(
                lines_per_document, seed=seed + index
            )
            for index in range(document_count)
        }
    )


def extract_corpus_tuples(
    source, workers: int = 1
) -> dict[str, set[tuple[str, str, str | None, str | None]]]:
    """Corpus-level driver: access tuples per document id, optionally sharded.

    >>> tuples = extract_corpus_tuples(corpus(1, lines_per_document=1))
    >>> list(tuples) == ['access-00000.log']
    True
    """
    from repro.service.evaluate import extract_corpus
    from repro.util.errors import CorpusError

    tuples: dict[str, set[tuple[str, str, str | None, str | None]]] = {}
    for result in extract_corpus(access_expression(), source, workers=workers):
        if not result.ok:
            raise CorpusError(
                f"document {result.doc_id!r} failed: {result.error}"
            )
        tuples[result.doc_id] = {
            (
                record["path"],
                record["status"],
                record.get("user"),
                record.get("ref"),
            )
            for record in result.mappings
        }
    return tuples


def extract_batch(documents) -> list[set[tuple[str, str, str | None, str | None]]]:
    """Batch extraction of access tuples per document, compiling once."""
    from repro.workloads.expressions import batch_workload

    materialised = list(documents)
    _, batches = batch_workload(access_expression(), materialised)
    return [
        extraction_tuples(document, mappings)
        for document, mappings in zip(materialised, batches)
    ]


def expected_tuples(lines: list[LogLine]) -> set[tuple[str, str, str | None, str | None]]:
    return {(l.path, l.status, l.user, l.referrer) for l in lines}


def extraction_tuples(document: str, mappings) -> set[tuple[str, str, str | None, str | None]]:
    tuples = set()
    for mapping in mappings:
        path = mapping["path"].content(document)
        status = mapping["status"].content(document)
        user_span = mapping.get("user")
        ref_span = mapping.get("ref")
        tuples.add(
            (
                path,
                status,
                user_span.content(document) if user_span else None,
                ref_span.content(document) if ref_span else None,
            )
        )
    return tuples
