"""Synthetic workload generators (Table 1's CSV scenario and friends)."""

from repro.workloads import expressions, land_registry, server_logs
from repro.workloads.expressions import (
    batch_workload,
    corpus_workload,
    field_document,
    random_document,
    random_rgx,
    random_sequential_rgx,
    random_va,
    seller_like_sequential_rgx,
)

__all__ = [
    "batch_workload",
    "corpus_workload",
    "expressions",
    "field_document",
    "land_registry",
    "random_document",
    "random_rgx",
    "random_sequential_rgx",
    "random_va",
    "seller_like_sequential_rgx",
    "server_logs",
]
