"""Random expression and automaton generators for tests and benchmarks.

Seeded, size-bounded samplers over the RGX grammar, with knobs for the
fragments the paper distinguishes (sequential, functional, spanRGX).
Hypothesis strategies for property-based tests are built on top of these
in ``tests/strategies.py``.
"""

from __future__ import annotations

import random

from repro.automata.labels import EPS, Close, Open, Sym
from repro.automata.va import VA, VABuilder
from repro.alphabet import CharSet
from repro.rgx.ast import (
    EPSILON,
    Rgx,
    Star,
    VarBind,
    char,
    concat,
    union,
)


def random_rgx(
    size: int,
    seed: int = 0,
    alphabet: str = "ab",
    variables: tuple[str, ...] = ("x", "y", "z"),
    sequential: bool = False,
) -> Rgx:
    """A random RGX of roughly ``size`` AST nodes.

    ``sequential=True`` restricts generation so concatenations never share
    variables and stars stay variable-free (the seqRGX fragment).
    """
    rng = random.Random(seed)

    def build(budget: int, allowed: tuple[str, ...]) -> Rgx:
        if budget <= 1 or not alphabet:
            if rng.random() < 0.15:
                return EPSILON
            return char(rng.choice(alphabet))
        choice = rng.random()
        if choice < 0.35:
            left_budget = rng.randint(1, budget - 1)
            if sequential and allowed:
                split = rng.randint(0, len(allowed))
                left_vars = allowed[:split]
                right_vars = allowed[split:]
            else:
                left_vars = right_vars = allowed
            return concat(
                build(left_budget, left_vars),
                build(budget - left_budget, right_vars),
            )
        if choice < 0.6:
            left_budget = rng.randint(1, budget - 1)
            return union(
                build(left_budget, allowed), build(budget - left_budget, allowed)
            )
        if choice < 0.75:
            body_vars = () if sequential else allowed
            return Star(build(budget - 1, body_vars))
        if choice < 0.9 and allowed:
            variable = rng.choice(allowed)
            remaining = tuple(v for v in allowed if v != variable)
            return VarBind(variable, build(budget - 1, remaining))
        return char(rng.choice(alphabet))

    return build(max(size, 1), variables)


def random_sequential_rgx(size: int, seed: int = 0, **kwargs) -> Rgx:
    return random_rgx(size, seed, sequential=True, **kwargs)


def random_va(
    state_count: int,
    seed: int = 0,
    alphabet: str = "ab",
    variables: tuple[str, ...] = ("x", "y"),
    edge_factor: float = 1.8,
) -> VA:
    """A random variable-set automaton (not necessarily sequential)."""
    rng = random.Random(seed)
    builder = VABuilder()
    states = builder.add_states(max(state_count, 2))
    edge_count = int(edge_factor * state_count) + 2
    for _ in range(edge_count):
        source = rng.choice(states)
        target = rng.choice(states)
        kind = rng.random()
        if kind < 0.55:
            builder.add(source, Sym(CharSet.single(rng.choice(alphabet))), target)
        elif kind < 0.7:
            builder.add(source, EPS, target)
        elif kind < 0.85 and variables:
            builder.add(source, Open(rng.choice(variables)), target)
        elif variables:
            builder.add(source, Close(rng.choice(variables)), target)
        else:
            builder.add(source, EPS, target)
    # Guarantee some connectivity from the initial state.
    for index in range(len(states) - 1):
        if rng.random() < 0.5:
            builder.add(
                states[index],
                Sym(CharSet.single(rng.choice(alphabet))),
                states[index + 1],
            )
    return builder.build(initial=states[0], final=states[-1])


def seller_like_sequential_rgx(field_count: int) -> Rgx:
    """A CSV-style sequential expression with ``field_count`` captures.

    Used by the scaling benchmarks: the number of variables grows with
    ``field_count`` while staying sequential.
    """
    from repro.rgx.ast import not_chars, star, string

    parts: list[Rgx] = [star(not_chars(""))]
    for index in range(field_count):
        parts.append(string(f"f{index}="))
        parts.append(VarBind(f"v{index}", star(not_chars(";\n"))))
        parts.append(string(";"))
    parts.append(star(not_chars("")))
    return concat(*parts)


def batch_workload(
    expression: Rgx, documents
) -> tuple["object", list[set]]:
    """Compile ``expression`` once and evaluate every document through it.

    The batch entry point the benchmarks and scaling tests use: returns the
    :class:`~repro.engine.compiled.CompiledSpanner` (for reuse/inspection)
    together with one mapping set per document.
    """
    from repro.engine.compiled import compile_spanner

    engine = compile_spanner(expression)
    materialised = list(documents)
    return engine, engine.evaluate_many(materialised)


def corpus_workload(
    expression: Rgx, documents, workers: int = 1
) -> tuple["object", list]:
    """The corpus-parallel analog of :func:`batch_workload`.

    Routes the documents through the service layer
    (:func:`repro.service.evaluate.evaluate_corpus`), sharding across
    ``workers`` processes, and returns the cached engine together with one
    mapping set per document *in corpus order* — so its outputs are
    directly comparable with :func:`batch_workload`'s.
    """
    from repro.service.cache import cached_spanner
    from repro.service.evaluate import corpus_outputs

    engine = cached_spanner(expression)
    return engine, corpus_outputs(engine, documents, workers=workers)


def random_document(length: int, seed: int = 0, alphabet: str = "ab") -> str:
    rng = random.Random(seed)
    return "".join(rng.choice(alphabet) for _ in range(length))


def field_document(field_count: int, value_length: int = 4, seed: int = 0) -> str:
    """A document matching :func:`seller_like_sequential_rgx`."""
    rng = random.Random(seed)
    pieces = []
    for index in range(field_count):
        value = "".join(
            rng.choice("abcdefgh") for _ in range(value_length)
        )
        pieces.append(f"f{index}={value};")
    return "".join(pieces)
