"""The paper's motivating scenario: a land-registry CSV (Table 1).

The paper opens with a CSV file of property transactions::

    Seller: John, ID75↵
    Buyer: Marcelo, ID832, P78↵
    Seller: Mark, ID7, $35,000↵

where *some* seller rows carry an additional tax field — the prototypical
incomplete-information workload.  This module generates such documents
and builds the Section 3.1 expressions that extract seller names and,
when present, the tax amount, as partial mappings.

The exact RGX from the paper (Section 3.1)::

    Σ* · Seller:␣ · x{R1} · , · R1 · (,␣ · y{(Σ - {↵})*} | ε) · ↵ · Σ*

with ``R1 = (Σ - {,, ↵})*``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rgx.ast import (
    Rgx,
    VarBind,
    concat,
    not_chars,
    star,
    string,
    union,
    EPSILON,
)
from repro.rules.rule import Rule
from repro.spans.span import Span

_FIRST_NAMES = [
    "John", "Marcelo", "Mark", "Ana", "Lucia", "Pedro", "Ivana", "Tomas",
    "Elena", "Diego", "Marta", "Nikola", "Sofia", "Bruno", "Petra", "Luka",
]


@dataclass(frozen=True)
class RegistryRow:
    """One CSV row plus its expected extraction (the benchmark oracle)."""

    kind: str  # "Seller" or "Buyer"
    name: str
    identifier: str
    tax: str | None


def generate_rows(row_count: int, tax_probability: float = 0.5, seed: int = 0) -> list[RegistryRow]:
    rng = random.Random(seed)
    rows = []
    for index in range(row_count):
        name = rng.choice(_FIRST_NAMES)
        identifier = f"ID{rng.randrange(1, 999)}"
        if rng.random() < 0.5:
            rows.append(RegistryRow("Buyer", name, identifier, None))
        else:
            tax = None
            if rng.random() < tax_probability:
                tax = f"${rng.randrange(1, 99)},{rng.randrange(100, 999)}"
            rows.append(RegistryRow("Seller", name, identifier, tax))
    return rows


def render(rows: list[RegistryRow]) -> str:
    """The CSV document for a list of rows (the paper's ↵ is ``\\n``)."""
    lines = []
    for row in rows:
        if row.kind == "Buyer":
            lines.append(f"Buyer: {row.name}, {row.identifier}, P{len(row.name)}")
        elif row.tax is None:
            lines.append(f"Seller: {row.name}, {row.identifier}")
        else:
            lines.append(f"Seller: {row.name}, {row.identifier}, {row.tax}")
    return "".join(line + "\n" for line in lines)


def generate_document(row_count: int, tax_probability: float = 0.5, seed: int = 0) -> str:
    return render(generate_rows(row_count, tax_probability, seed))


def seller_name_expression() -> Rgx:
    """Section 3.1's first example: extract seller names only.

    ``Σ* · Seller:␣ · x{(Σ - {,})*} · , · Σ*``
    """
    sigma_star = star(not_chars(""))
    return concat(
        sigma_star,
        string("Seller: "),
        VarBind("x", star(not_chars(",\n"))),
        string(","),
        star(not_chars("")),
    )


def seller_tax_expression() -> Rgx:
    """Section 3.1's incomplete-information example: name + optional tax.

    Produces mappings defined on ``x`` only (no tax field) or on both
    ``x`` and ``y``.
    """
    sigma_star = star(not_chars(""))
    field = star(not_chars(",\n"))  # the paper's R1
    optional_tax = union(
        concat(string(", "), VarBind("y", star(not_chars("\n")))),
        EPSILON,
    )
    return concat(
        sigma_star,
        string("Seller: "),
        VarBind("x", field),
        string(", "),
        field,
        optional_tax,
        string("\n"),
        sigma_star,
    )


def seller_rule() -> Rule:
    """The same extraction as a sequential tree-like rule (Section 3.3).

    The row is captured into ``r``, whose shape is constrained by a
    conjunct — mirroring how [2] would express the task.
    """
    sigma_star = star(not_chars(""))
    field = star(not_chars(",\n"))
    row_shape = concat(
        string("Seller: "),
        VarBind("x", star(not_chars(""))),
        string(", "),
        field,
        union(concat(string(", "), VarBind("y", star(not_chars("")))), EPSILON),
    )
    root = concat(
        sigma_star,
        VarBind("r", star(not_chars(""))),
        string("\n"),
        sigma_star,
    )
    name_shape = field
    tax_shape = star(not_chars("\n"))
    return Rule(
        root,
        (
            ("r", row_shape),
            ("x", name_shape),
            ("y", tax_shape),
        ),
        check_span_rgx=False,
    )


def compiled_spanner():
    """The seller/tax extraction compiled once for repeated serving.

    Returns a :class:`~repro.engine.compiled.CompiledSpanner`; the tables
    are cached per automaton, so repeated calls share all compiled state.
    """
    from repro.engine.compiled import compile_spanner

    return compile_spanner(seller_tax_expression())


def corpus(
    document_count: int,
    rows_per_document: int = 8,
    tax_probability: float = 0.5,
    seed: int = 0,
):
    """A registry *corpus*: many CSV documents with stable ids.

    Document ids are ``registry-00000.csv``, ``registry-00001.csv``, … and
    each document gets its own derived seed, so the corpus is reproducible
    document-by-document.  Feed it to
    :func:`repro.service.evaluate.evaluate_corpus` (or the corpus driver
    below) for the corpus-scale serving workload.

    >>> corpus(2, rows_per_document=1).doc_ids()
    ['registry-00000.csv', 'registry-00001.csv']
    """
    from repro.service.corpus import InMemoryCorpus

    return InMemoryCorpus(
        {
            f"registry-{index:05d}.csv": generate_document(
                rows_per_document, tax_probability, seed=seed + index
            )
            for index in range(document_count)
        }
    )


def extract_corpus_pairs(
    source, workers: int = 1
) -> dict[str, set[tuple[str, str | None]]]:
    """Corpus-level driver: ``(name, tax)`` pairs per document id.

    Shards the corpus across ``workers`` processes through the service
    layer; decoding happens inside the workers, so only the pairs travel
    back.  Raises on any per-document failure (this workload's documents
    are trusted).

    >>> pairs = extract_corpus_pairs(corpus(2, rows_per_document=2, seed=3))
    >>> sorted(pairs) == corpus(2, rows_per_document=2, seed=3).doc_ids()
    True
    """
    from repro.service.evaluate import extract_corpus
    from repro.util.errors import CorpusError

    pairs: dict[str, set[tuple[str, str | None]]] = {}
    for result in extract_corpus(
        seller_tax_expression(), source, workers=workers
    ):
        if not result.ok:
            raise CorpusError(
                f"document {result.doc_id!r} failed: {result.error}"
            )
        pairs[result.doc_id] = {
            (record["x"], record.get("y")) for record in result.mappings
        }
    return pairs


def extract_batch(documents) -> list[set[tuple[str, str | None]]]:
    """Batch extraction: ``(name, tax)`` pairs per document, compiling once."""
    from repro.workloads.expressions import batch_workload

    materialised = list(documents)
    _, batches = batch_workload(seller_tax_expression(), materialised)
    return [
        extraction_pairs(document, mappings)
        for document, mappings in zip(materialised, batches)
    ]


def expected_extraction(rows: list[RegistryRow]) -> set[tuple[str, str | None]]:
    """Ground truth ``(name, tax)`` pairs for generated rows."""
    return {
        (row.name, row.tax) for row in rows if row.kind == "Seller"
    }


def extraction_pairs(document: str, mappings) -> set[tuple[str, str | None]]:
    """Decode mappings into ``(name, tax)`` pairs for comparison."""
    pairs = set()
    for mapping in mappings:
        name_span: Span = mapping["x"]
        tax_span: Span | None = mapping.get("y")
        pairs.add(
            (
                name_span.content(document),
                tax_span.content(document) if tax_span else None,
            )
        )
    return pairs
