"""The pass-based compilation planner (any formalism → optimised engine).

Every entry point — :func:`repro.engine.compiled.compile_spanner`,
:meth:`repro.spanner.Spanner.compile`, the service cache, the CLI —
routes compilation through :func:`plan`: front-ends normalise RGX text,
ASTs, extraction rules (§4.3 translation), VAs and spanners to one
automaton, then an ordered pass pipeline (ε-elimination, trimming,
predicate fusion, sequentialisation, budgeted determinisation) optimises
it with per-pass recorded metrics.  See :mod:`repro.plan.planner` for
the pipeline and :mod:`repro.plan.passes` for the individual passes.

>>> from repro.plan import plan
>>> plan(".*x{a+}.*").opt_level
1
"""

from repro.plan.planner import (
    DEFAULT_DETERMINIZE_BUDGET,
    DEFAULT_OPT_LEVEL,
    DEFAULT_SEQUENTIALIZE_BUDGET,
    OPT_LEVELS,
    Plan,
    PassRecord,
    plan,
)

__all__ = [
    "DEFAULT_DETERMINIZE_BUDGET",
    "DEFAULT_OPT_LEVEL",
    "DEFAULT_SEQUENTIALIZE_BUDGET",
    "OPT_LEVELS",
    "Plan",
    "PassRecord",
    "plan",
]
