"""The pass-based compilation planner — any formalism to one optimised VA.

The paper's tractability results are compile-time facts: sequentiality
makes ``Eval`` polynomial (Theorem 5.7), determinisation enables
containment (Theorem 6.7), and rules/RGX/VA are inter-translatable
(§4.3).  :func:`plan` is where the library applies that machinery.  A
:class:`Plan` wraps a *source* — RGX text, an AST, an extraction
:class:`~repro.rules.rule.Rule`, a :class:`~repro.automata.va.VA`, or a
:class:`~repro.spanner.Spanner` — normalises it to a VA through the
appropriate front-end (rules go through the §4.3 translation with its
budget), and runs an ordered pass pipeline over it, recording per-pass
metrics:

====  =======================================================
opt   passes
====  =======================================================
0     none — the straight front-end translation
1     ``simplify-rgx``, ``eliminate-epsilon``, ``trim``,
      ``fuse-predicates``, ``sequentialize``
2     opt 1 + budgeted ``determinize`` + final ``trim``
====  =======================================================

Every pass preserves ``⟦·⟧_d`` exactly (property-tested against the
unplanned engine at every opt level), so downstream consumers — the
compiled engine, the corpus service, the cache — treat
:attr:`Plan.automaton` as a drop-in replacement whose
:attr:`Plan.fingerprint` is the canonical cache key.

>>> p = plan(".*x{a+}.*")
>>> [record.name for record in p.passes]
['simplify-rgx', 'eliminate-epsilon', 'trim', 'fuse-predicates', 'sequentialize']
>>> p.automaton.num_states < p.raw_automaton.num_states
True
>>> plan("x{a}|x{a}").fingerprint == plan("x{a}").fingerprint
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import cached_property

from repro.algebra import (
    Atom,
    JoinExpr,
    ProjectExpr,
    QueryExpr,
    Ref,
    UnionExpr,
)
from repro.automata.fingerprint import va_fingerprint
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.plan.passes import (
    determinize_budgeted_verbose,
    eliminate_epsilon_verbose,
    fuse_predicates,
    sequentialize_verbose,
    trim,
)
from repro.rgx.ast import Rgx
from repro.rgx.parser import parse
from repro.rgx.rewrite import simplify
from repro.rules.rule import Rule
from repro.rules.translate import DEFAULT_RULE_BUDGET, union_of_rules_to_rgx
from repro.util.errors import BudgetExceededError, SpannerError

#: The opt level entry points use when none is requested.
DEFAULT_OPT_LEVEL = 1

OPT_LEVELS = (0, 1, 2)

#: Default state budget for the sequentialisation product (|Q|·4^k worst
#: case) — generous, since sequentiality is the big asymptotic win.
DEFAULT_SEQUENTIALIZE_BUDGET = 20_000

#: Default subset budget for opt-level-2 determinisation (worst-case
#: exponential; strictly best-effort).
DEFAULT_DETERMINIZE_BUDGET = 4_096


@dataclass(frozen=True)
class PassRecord:
    """One pipeline step's recorded metrics (see :meth:`Plan.explain`)."""

    name: str
    states_before: int
    states_after: int
    transitions_before: int
    transitions_after: int
    elapsed: float
    changed: bool
    unit: str = "states"
    note: str = ""

    def describe(self) -> str:
        size = (
            f"{self.states_before} -> {self.states_after} {self.unit}"
        )
        if self.unit == "states":
            size += (
                f", {self.transitions_before} -> "
                f"{self.transitions_after} transitions"
            )
        detail = f" [{self.note}]" if self.note else ""
        change = "" if self.changed else " (no change)"
        return f"{self.name:<18} {size}{change}  {self.elapsed * 1000:.2f} ms{detail}"


class Plan:
    """A compiled plan: source, normalised automaton, and the pass log.

    Instances are produced by :func:`plan` and are immutable in spirit:
    everything interesting is exposed as read-only attributes.
    """

    def __init__(
        self,
        *,
        source,
        source_kind: str,
        opt_level: int,
        source_expression: Rgx | None,
        expression: Rgx | None,
        raw_automaton: VA,
        automaton: VA,
        passes: tuple[PassRecord, ...],
    ) -> None:
        self.source = source
        self.source_kind = source_kind
        self.opt_level = opt_level
        #: The source RGX exactly as written (``None`` for VA/rule sources).
        self.source_expression = source_expression
        #: The normalised expression the pipeline compiled (simplified at
        #: opt >= 1; the §4.3 translation for rule sources).
        self.expression = expression
        #: The straight front-end translation, before any pass.
        self.raw_automaton = raw_automaton
        #: The post-pipeline automaton the engine runs on.
        self.automaton = automaton
        self.passes = passes

    @cached_property
    def fingerprint(self) -> str:
        """Structural digest of the *post-optimisation* automaton.

        The service cache keys compiled engines on this, so structurally
        different sources that plan to the same automaton share one
        engine.
        """
        return va_fingerprint(self.automaton)

    @cached_property
    def source_sequential(self) -> bool:
        """Fragment membership of the *source* (Theorem 5.7's condition).

        Planning may sequentialise the automaton the engine sweeps, but
        classification questions ("is this pattern in the tractable
        fragment?") are about the source, so this is computed on
        :attr:`raw_automaton`.
        """
        return is_sequential(self.raw_automaton)

    @property
    def total_time(self) -> float:
        """Wall-clock seconds spent inside the recorded passes."""
        return sum(record.elapsed for record in self.passes)

    def describe_source(self) -> str:
        if self.source_kind in ("rgx-text", "algebra"):
            text = str(self.source)
        elif self.source_expression is not None:
            text = str(self.source_expression)
        else:
            return self.source_kind
        if len(text) > 40:
            text = text[:37] + "..."
        return f"{text!r}"

    def explain(self) -> str:
        """The pretty-printed pass log (the CLI's ``--explain`` output).

        One line per pass with before/after state counts, transition
        counts, and timings, bracketed by the source and result shapes.
        """
        lines = [
            f"plan {self.describe_source()} "
            f"({self.source_kind}, opt level {self.opt_level})"
        ]
        lines.append(
            f"  source: {self.raw_automaton.num_states} states, "
            f"{len(self.raw_automaton.transitions)} transitions, "
            f"sequential={self.source_sequential}"
        )
        if not self.passes:
            lines.append("  passes: none (opt level 0)")
        for number, record in enumerate(self.passes, start=1):
            lines.append(f"  {number}. {record.describe()}")
        lines.append(
            f"  result: {self.automaton.num_states} states, "
            f"{len(self.automaton.transitions)} transitions, "
            f"sequential sweep={is_sequential(self.automaton)}, "
            f"fingerprint {self.fingerprint[:12]}"
        )
        return "\n".join(lines)

    def compile(self):
        """The :class:`~repro.engine.compiled.CompiledSpanner` for this plan."""
        from repro.engine.compiled import compile_spanner

        return compile_spanner(self)

    def __repr__(self) -> str:
        return (
            f"Plan({self.describe_source()}, opt {self.opt_level}, "
            f"{self.raw_automaton.num_states} -> "
            f"{self.automaton.num_states} states, "
            f"{len(self.passes)} passes)"
        )


def _record(
    name: str, action, before: VA, records: list[PassRecord], note: str = ""
) -> VA:
    started = time.perf_counter()
    outcome = action(before)
    elapsed = time.perf_counter() - started
    if isinstance(outcome, tuple):
        after, pass_note = outcome
        note = pass_note or note
    else:
        after = outcome
    records.append(
        PassRecord(
            name=name,
            states_before=before.num_states,
            states_after=after.num_states,
            transitions_before=len(before.transitions),
            transitions_after=len(after.transitions),
            elapsed=elapsed,
            changed=after is not before,
            note=note,
        )
    )
    return after


def _translate_rule(rule: Rule, budget: int) -> tuple[Rgx | None, frozenset]:
    """§4.3 front-end: rule → RGX (``None`` = unsatisfiable) + auxiliaries."""
    translated = union_of_rules_to_rgx([rule], budget)
    if translated is None:
        return None, frozenset()
    auxiliary = translated.variables() - rule.variables()
    return translated, frozenset(auxiliary)


def _rule_to_va(expression: Rgx | None, auxiliary: frozenset) -> VA:
    from repro.automata.algebra import project_va

    if expression is None:
        return VA(2, 0, 1, ())  # the empty-language automaton
    automaton = to_va(expression)
    if auxiliary:
        automaton = project_va(
            automaton, automaton.variables - auxiliary
        )
    return automaton


def plan(
    source,
    opt_level: int | None = None,
    *,
    rule_budget: int = DEFAULT_RULE_BUDGET,
    sequentialize_budget: int = DEFAULT_SEQUENTIALIZE_BUDGET,
    determinize_budget: int = DEFAULT_DETERMINIZE_BUDGET,
) -> Plan:
    """Plan the compilation of any formalism down to one optimised VA.

    ``source`` may be RGX text, a parsed :class:`~repro.rgx.ast.Rgx`, an
    extraction :class:`~repro.rules.rule.Rule` (translated through §4.3
    under ``rule_budget``, auxiliary variables projected away), a
    :class:`~repro.automata.va.VA`, a :class:`~repro.spanner.Spanner`, a
    :class:`~repro.engine.compiled.CompiledSpanner`, or an existing
    :class:`Plan` (re-planned only when the requested level differs).

    >>> plan("x{a}b", opt_level=0).passes
    ()
    >>> p = plan("x{a}b")
    >>> p.opt_level, len(p.passes) >= 4
    (1, True)
    >>> plan(p) is p
    True
    """
    level = DEFAULT_OPT_LEVEL if opt_level is None else opt_level
    if level not in OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {OPT_LEVELS}, got {level}")

    if isinstance(source, Plan):
        if source.opt_level == level:
            return source
        return plan(
            source.source,
            level,
            rule_budget=rule_budget,
            sequentialize_budget=sequentialize_budget,
            determinize_budget=determinize_budget,
        )

    records: list[PassRecord] = []
    kind, source_expression, working_expression, raw, working = _front_end(
        source, level, rule_budget, sequentialize_budget, records
    )

    if level >= 1:
        working = _record(
            "eliminate-epsilon", eliminate_epsilon_verbose, working, records
        )
        working = _record("trim", trim, working, records)
        working = _record("fuse-predicates", fuse_predicates, working, records)
        working = _record(
            "sequentialize",
            lambda va: sequentialize_verbose(va, max_states=sequentialize_budget),
            working,
            records,
        )
    if level >= 2:
        working = _record(
            "determinize",
            lambda va: determinize_budgeted_verbose(
                va, max_states=determinize_budget
            ),
            working,
            records,
        )
        working = _record("trim", trim, working, records)

    return Plan(
        source=source,
        source_kind=kind,
        opt_level=level,
        source_expression=source_expression,
        expression=working_expression,
        raw_automaton=raw,
        automaton=working,
        passes=tuple(records),
    )


def _front_end(
    source,
    level: int,
    rule_budget: int,
    sequentialize_budget: int,
    records: list[PassRecord],
):
    """Normalise a source to ``(kind, source_rgx, rgx, raw_va, working_va)``.

    The returned ``working_va`` is where the VA pass pipeline starts: the
    translation of the (opt >= 1: simplified) expression, or the source
    automaton itself.  ``raw_va`` is always the straight, unoptimised
    translation — the baseline the benchmarks compare against and the
    automaton used for source classification.
    """
    from repro.engine.compiled import CompiledSpanner
    from repro.spanner import Spanner

    if isinstance(source, str):
        return _expression_front_end(
            "rgx-text", source, parse(source), level, records
        )
    if isinstance(source, Rgx):
        return _expression_front_end("rgx-ast", source, source, level, records)
    if isinstance(source, Rule):
        return _rule_front_end(source, level, rule_budget, records)
    if isinstance(source, VA):
        return "va", None, None, source, source
    if isinstance(source, QueryExpr):
        return _query_front_end(
            source, rule_budget, sequentialize_budget, records
        )
    if isinstance(source, Spanner):
        if source.expression is not None:
            return _expression_front_end(
                "spanner", source, source.expression, level, records
            )
        return "spanner", None, None, source.automaton, source.automaton
    if isinstance(source, CompiledSpanner):
        return "compiled", None, None, source.automaton, source.automaton
    raise TypeError(f"cannot plan {type(source).__name__} into a spanner")


def _query_front_end(
    expression: QueryExpr,
    rule_budget: int,
    sequentialize_budget: int,
    records: list[PassRecord],
):
    """Lower an algebra query expression through Theorem 4.5's constructions.

    Leaves reuse the single-source front-ends; union/projection/join
    combine the leaf automata at the raw level, and the ordinary pass
    pipeline then runs over the combined automaton.  Join operands are
    sequentialised up front under the planner's budget (Proposition 5.6
    is a semantic precondition of the join product, not an optimisation),
    so a non-sequential operand whose product would explode raises a
    :class:`~repro.util.errors.SpannerError` instead of exhausting memory.
    """
    started = time.perf_counter()
    counts = {"atoms": 0, "union": 0, "project": 0, "join": 0}
    notes: list[str] = []
    raw = _query_to_va(
        expression, rule_budget, sequentialize_budget, counts, notes
    )
    elapsed = time.perf_counter() - started
    note = " ".join(f"{name}={count}" for name, count in counts.items() if count)
    if notes:
        note += "; " + "; ".join(notes)
    records.append(
        PassRecord(
            name="algebra",
            states_before=raw.num_states,
            states_after=raw.num_states,
            transitions_before=len(raw.transitions),
            transitions_after=len(raw.transitions),
            elapsed=elapsed,
            changed=True,
            note=note,
        )
    )
    return "algebra", None, None, raw, raw


def _query_leaf_va(source, rule_budget: int) -> VA:
    """The straight translation of one algebra atom."""
    if isinstance(source, str):
        return to_va(parse(source))
    if isinstance(source, Rgx):
        return to_va(source)
    if isinstance(source, Rule):
        translated, auxiliary = _translate_rule(source, rule_budget)
        return _rule_to_va(translated, auxiliary)
    if isinstance(source, VA):
        return source
    automaton = getattr(source, "automaton", None)
    if isinstance(automaton, VA):  # Spanner / CompiledSpanner
        return automaton
    raise TypeError(
        f"cannot use a {type(source).__name__} as a query atom"
    )


def _sequential_join_operand(
    va: VA, sequentialize_budget: int, notes: list[str]
) -> VA:
    if is_sequential(va):
        return va
    try:
        rewritten = make_sequential(va, max_states=sequentialize_budget)
    except BudgetExceededError:
        raise SpannerError(
            f"join operand is not sequential and its Proposition 5.6 "
            f"product exceeds the budget of {sequentialize_budget} states; "
            f"raise sequentialize_budget or rewrite the operand"
        ) from None
    notes.append(
        f"sequentialised join operand "
        f"({va.num_states} -> {rewritten.num_states} states, "
        f"budget {sequentialize_budget})"
    )
    return rewritten


def _query_to_va(
    expression: QueryExpr,
    rule_budget: int,
    sequentialize_budget: int,
    counts: dict[str, int],
    notes: list[str],
) -> VA:
    from repro.automata.algebra import join_va, project_va, union_va

    if isinstance(expression, Atom):
        counts["atoms"] += 1
        return _query_leaf_va(expression.source, rule_budget)
    if isinstance(expression, Ref):
        raise SpannerError(
            f"unresolved query reference {expression.name!r}; plan this "
            f"expression through a QuerySet (or call .resolve() first)"
        )
    parts = [
        _query_to_va(child, rule_budget, sequentialize_budget, counts, notes)
        for child in expression.children()
    ]
    if isinstance(expression, UnionExpr):
        counts["union"] += 1
        combined = parts[0]
        for part in parts[1:]:
            combined = union_va(combined, part)
        return combined
    if isinstance(expression, ProjectExpr):
        counts["project"] += 1
        return project_va(parts[0], expression.keep)
    if isinstance(expression, JoinExpr):
        counts["join"] += 1
        combined = _sequential_join_operand(
            parts[0], sequentialize_budget, notes
        )
        for part in parts[1:]:
            combined = join_va(
                combined,
                _sequential_join_operand(part, sequentialize_budget, notes),
            )
        return combined
    raise TypeError(
        f"cannot lower {type(expression).__name__} into an automaton"
    )


def _expression_front_end(kind, source, expression, level, records):
    raw = to_va(expression)
    if level < 1:
        return kind, expression, expression, raw, raw
    started = time.perf_counter()
    simplified = simplify(expression)
    elapsed = time.perf_counter() - started
    records.append(
        PassRecord(
            name="simplify-rgx",
            states_before=expression.size(),
            states_after=simplified.size(),
            transitions_before=0,
            transitions_after=0,
            elapsed=elapsed,
            changed=simplified != expression,
            unit="nodes",
        )
    )
    working = raw if simplified == expression else to_va(simplified)
    return kind, expression, simplified, raw, working


def _rule_front_end(rule, level, rule_budget, records):
    started = time.perf_counter()
    translated, auxiliary = _translate_rule(rule, rule_budget)
    raw = _rule_to_va(translated, auxiliary)
    elapsed = time.perf_counter() - started
    note = "unsatisfiable rule" if translated is None else (
        f"projected {len(auxiliary)} auxiliary variable(s)"
        if auxiliary
        else "no auxiliary variables"
    )
    records.append(
        PassRecord(
            name="translate-rule",
            states_before=raw.num_states,
            states_after=raw.num_states,
            transitions_before=len(raw.transitions),
            transitions_after=len(raw.transitions),
            elapsed=elapsed,
            changed=True,
            note=note,
        )
    )
    working_expression = translated
    working = raw
    if level >= 1 and translated is not None:
        started = time.perf_counter()
        simplified = simplify(translated)
        elapsed = time.perf_counter() - started
        records.append(
            PassRecord(
                name="simplify-rgx",
                states_before=translated.size(),
                states_after=simplified.size(),
                transitions_before=0,
                transitions_after=0,
                elapsed=elapsed,
                changed=simplified != translated,
                unit="nodes",
            )
        )
        working_expression = simplified
        if simplified != translated:
            working = _rule_to_va(simplified, auxiliary)
    return "rule", None, working_expression, raw, working
