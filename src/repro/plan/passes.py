"""The planner's automaton-level passes.

Every pass is a pure function ``VA -> VA`` that preserves the mapping
semantics ``⟦A⟧_d`` exactly (cross-validated by the plan equivalence
tests) and is *idempotent up to fingerprint*: running a pass on its own
output returns a structurally identical automaton.  Idempotence is what
lets the service cache re-plan an already-optimised automaton and still
land on the same :func:`~repro.automata.fingerprint.va_fingerprint`.

Passes either return the input object unchanged (no-op, recorded as such
in the plan log) or a new :class:`~repro.automata.va.VA`:

* :func:`eliminate_epsilon` — classical ε-removal over the label alphabet
  ``Sym ∪ Open ∪ Close`` (variable operations are *not* ε: a run's
  validity is a property of its label sequence, which the pass preserves
  exactly — the same argument that justifies determinisation);
* :func:`trim` — drop states not on any initial-to-final path;
* :func:`fuse_predicates` — merge parallel letter transitions between the
  same state pair into one :class:`~repro.alphabet.CharSet` predicate and
  deduplicate transitions;
* :func:`sequentialize` — Proposition 5.6's product, budgeted, so the
  engine can run the polynomial Theorem-5.7 sweep instead of the
  ``O(2^{2k}·3^k)`` general sweep;
* :func:`determinize_budgeted` — Proposition 6.5's subset construction,
  budgeted, behind opt level 2.
"""

from __future__ import annotations

from repro.alphabet import CharSet
from repro.automata.determinize import determinize, is_complete_deterministic
from repro.automata.labels import EPS, Eps, Sym
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.va import VA
from repro.util.errors import BudgetExceededError

#: ε-elimination copies each non-ε edge once per ε-predecessor; on dense
#: automata that can be quadratic, which would trade states for a much
#: larger transition table.  Beyond this growth factor the pass backs off.
_EPSILON_TRANSITION_GROWTH = 3


def _epsilon_closures(va: VA) -> list[set[int]]:
    closures: list[set[int]] = []
    for start in range(va.num_states):
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for label, target in va.out_edges(state):
                if isinstance(label, Eps) and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        closures.append(seen)
    return closures


def _only_final_glue(va: VA) -> bool:
    """True when the only ε-edges are glue into a dead-end final state.

    This is exactly the shape :func:`eliminate_epsilon` itself produces,
    so treating it as already-eliminated makes the pass idempotent.
    """
    if va.out_edges(va.final):
        return not any(isinstance(label, Eps) for _, label, _ in va.transitions)
    return all(
        target == va.final
        for _, label, target in va.transitions
        if isinstance(label, Eps)
    )


def eliminate_epsilon(va: VA) -> VA:
    """An equivalent VA whose only ε-edges (if any) glue accepting states.

    For every state ``q`` and every non-ε edge ``p --l--> r`` with ``p``
    in the ε-closure of ``q``, the result has ``q --l--> r``; a state
    accepts when its closure contains the final state.  Multiple
    accepting states are folded into a fresh final through ε-glue (the
    same harmless trailing ε :func:`~repro.automata.determinize.determinize`
    uses).  Pure-ε through-states lose all non-ε in-edges and are removed
    by the following :func:`trim`.

    Returns the input unchanged when it is already in eliminated shape or
    when elimination would grow the transition table past the back-off
    factor (:func:`eliminate_epsilon_verbose` reports which).
    """
    return eliminate_epsilon_verbose(va)[0]


def eliminate_epsilon_verbose(va: VA) -> tuple[VA, str]:
    """:func:`eliminate_epsilon` plus a note for the plan's pass log.

    The note distinguishes the two no-op cases — "already eliminated" and
    "growth limit hit" (the back-off) — so ``Plan.explain()`` never shows
    a silent skip.
    """
    if _only_final_glue(va):
        return va, "already eliminated"
    closures = _epsilon_closures(va)
    transitions: list[tuple] = []
    seen: set[tuple] = set()
    for state in range(va.num_states):
        for member in sorted(closures[state]):
            for label, target in va.out_edges(member):
                if isinstance(label, Eps):
                    continue
                edge = (state, label, target)
                if edge not in seen:
                    seen.add(edge)
                    transitions.append(edge)
    limit = max(
        _EPSILON_TRANSITION_GROWTH * len(va.transitions),
        len(va.transitions) + 16,
    )
    if len(transitions) > limit:
        return va, f"growth limit hit ({len(transitions)} > {limit} transitions)"
    accepting = [
        state for state in range(va.num_states) if va.final in closures[state]
    ]
    if len(accepting) == 1:
        return VA(va.num_states, va.initial, accepting[0], tuple(transitions)), ""
    fresh_final = va.num_states
    for state in accepting:
        transitions.append((state, EPS, fresh_final))
    return VA(va.num_states + 1, va.initial, fresh_final, tuple(transitions)), ""


def trim(va: VA) -> VA:
    """Remove states not on any initial-to-final path (dead/unreachable)."""
    trimmed = va.trimmed()
    # Preserve object identity on no-ops so the plan log records them.
    return va if trimmed == va else trimmed


def _charset_union(first: CharSet, second: CharSet) -> CharSet:
    if not first.negated and not second.negated:
        return CharSet(first.chars | second.chars)
    if first.negated and second.negated:
        # (Σ - S1) ∪ (Σ - S2) = Σ - (S1 ∩ S2)
        return CharSet(first.chars & second.chars, negated=True)
    positive, negative = (
        (first, second) if not first.negated else (second, first)
    )
    # P ∪ (Σ - S) = Σ - (S - P)
    return CharSet(negative.chars - positive.chars, negated=True)


def fuse_predicates(va: VA) -> VA:
    """Compress parallel letter edges into one character-class predicate.

    Thompson construction and the rule translations emit one singleton
    transition per union branch; after ε-elimination many of them connect
    the same state pair.  Fusing them into a single
    :class:`~repro.alphabet.CharSet` (and deduplicating all edges) shrinks
    the transition table the engine sweeps — without changing the accepted
    label sequences, since a fused predicate matches exactly the union of
    the originals.
    """
    fused: dict[tuple[int, int], CharSet] = {}
    order: list[tuple] = []
    seen: set[tuple] = set()
    for source, label, target in va.transitions:
        if isinstance(label, Sym):
            pair = (source, target)
            if pair in fused:
                fused[pair] = _charset_union(fused[pair], label.charset)
            else:
                fused[pair] = label.charset
                order.append((source, None, target))
        else:
            edge = (source, label, target)
            if edge not in seen:
                seen.add(edge)
                order.append(edge)
    transitions = tuple(
        (source, Sym(fused[(source, target)]), target)
        if label is None
        else (source, label, target)
        for source, label, target in order
    )
    if transitions == va.transitions:
        return va
    return VA(va.num_states, va.initial, va.final, transitions)


def sequentialize(va: VA, max_states: int | None = None) -> VA:
    """An equivalent *sequential* VA (Proposition 5.6), budget permitting.

    Sequentiality is the paper's tractability switch: the engine's sweep
    drops from the ``O(2^{2k}·3^k)``-state general algorithm (Theorem
    5.10) to the polynomial counter sweep of Theorem 5.7.  Already
    sequential automata pass through untouched; a blown budget keeps the
    input (the plan records the back-off).
    """
    return sequentialize_verbose(va, max_states)[0]


def sequentialize_verbose(
    va: VA, max_states: int | None = None
) -> tuple[VA, str]:
    """:func:`sequentialize` plus a note for the plan's pass log."""
    if is_sequential(va):
        return va, "already sequential"
    try:
        rewritten = make_sequential(va, prune=True, max_states=max_states)
    except BudgetExceededError:
        return va, (
            f"budget {max_states} exceeded; keeping the general sweep"
        )
    return rewritten, f"Proposition 5.6 product (budget {max_states})"


def determinize_budgeted(va: VA, max_states: int | None = None) -> VA:
    """Subset-construction determinisation, budget permitting (opt level 2).

    Skips automata that are already deterministic (up to final ε-glue) —
    which both avoids pointless renumbering and makes the pass idempotent
    — and keeps the input when the subset exploration exceeds the budget.
    """
    return determinize_budgeted_verbose(va, max_states)[0]


def determinize_budgeted_verbose(
    va: VA, max_states: int | None = None
) -> tuple[VA, str]:
    """:func:`determinize_budgeted` plus a note for the plan's pass log."""
    if is_complete_deterministic(va):
        return va, "already deterministic"
    try:
        rewritten = determinize(va, max_states=max_states)
    except BudgetExceededError:
        return va, f"budget {max_states} exceeded; keeping nondeterminism"
    return rewritten, f"subset construction (budget {max_states})"
