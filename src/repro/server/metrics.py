"""Live serving metrics: counters and gauges with Prometheus exposition.

A deliberately small metrics registry (stdlib only) shared by the
dispatcher and the HTTP app.  Counters only go up, gauges are set or
adjusted, and both take optional labels.  :meth:`Metrics.render` emits
the Prometheus text format served at ``GET /metrics``;
:meth:`Metrics.snapshot` returns the same numbers as a plain dictionary
for tests and the ``/healthz`` payload.

Thread-safe: the server mutates metrics from the event loop *and* from
executor threads (compile timings), so every operation takes one lock.

>>> metrics = Metrics()
>>> metrics.inc("repro_requests_total", endpoint="evaluate")
>>> metrics.inc("repro_requests_total", endpoint="evaluate")
>>> metrics.gauge("repro_queue_depth", 3)
>>> metrics.snapshot()["repro_requests_total"]
{'endpoint="evaluate"': 2}
>>> print(metrics.render())
# TYPE repro_queue_depth gauge
repro_queue_depth 3
# TYPE repro_requests_total counter
repro_requests_total{endpoint="evaluate"} 2
<BLANKLINE>
"""

from __future__ import annotations

import threading

__all__ = ["Metrics"]


def _escape(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_key(labels: dict[str, str]) -> str:
    """The canonical ``k="v",…`` rendering (sorted, stable, escaped)."""
    return ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    )


class Metrics:
    """A registry of named counters and gauges, optionally labelled."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> label_key -> value; counters and gauges kept apart so
        # the exposition can emit the right # TYPE line for each.
        self._counters: dict[str, dict[str, float]] = {}
        self._gauges: dict[str, dict[str, float]] = {}

    # -- writing ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: str) -> None:
        """Add ``amount`` (default 1) to a counter."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge to ``value``."""
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def adjust(self, name: str, delta: float, **labels: str) -> None:
        """Add ``delta`` (may be negative) to a gauge."""
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0) + delta

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation as ``<name>_sum`` / ``<name>_count``.

        The summary-lite shape: enough to derive a live average (request
        latency, batch size) without histogram buckets.
        """
        self.inc(f"{name}_sum", value, **labels)
        self.inc(f"{name}_count", 1, **labels)

    # -- reading ---------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """One series' current value (0 when never written)."""
        key = _label_key(labels)
        with self._lock:
            for table in (self._counters, self._gauges):
                if name in table and key in table[name]:
                    return table[name][key]
        return 0

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Every series, as ``{name: {label_key: value}}``."""
        with self._lock:
            merged: dict[str, dict[str, float]] = {}
            for table in (self._counters, self._gauges):
                for name, series in table.items():
                    merged[name] = dict(series)
            return merged

    def render(self) -> str:
        """The Prometheus text exposition (sorted for stable scrapes)."""
        with self._lock:
            lines = []
            typed = [("counter", self._counters), ("gauge", self._gauges)]
            for kind, table in typed:
                for name in table:
                    lines.append((name, f"# TYPE {name} {kind}", table[name]))
            out: list[str] = []
            for name, type_line, series in sorted(lines):
                out.append(type_line)
                for key, value in sorted(series.items()):
                    rendered = (
                        str(int(value)) if value == int(value) else repr(value)
                    )
                    suffix = f"{{{key}}}" if key else ""
                    out.append(f"{name}{suffix} {rendered}")
            return "\n".join(out) + "\n"
