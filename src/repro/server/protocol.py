"""The server's wire protocol: request parsing and response encoding.

Pure functions between bytes and typed records — no sockets, no asyncio —
so the whole protocol is unit-testable without a running server.

Two request encodings for ``POST /evaluate`` and ``POST /enumerate``:

* **JSON** (default): one object carrying ``pattern`` plus a single
  ``document`` or a ``documents`` collection (a list of texts, a list of
  ``{"id", "text"}`` objects, or an ``{id: text}`` mapping);
* **NDJSON** (``Content-Type: application/x-ndjson``): the first line is
  the header object (``pattern``, options), every following line one
  document — a bare JSON string or an ``{"id", "text"}`` object.

Responses mirror the corpus service's per-document error isolation: each
document yields a result *or* an error entry, and a bad document never
poisons its batch.

>>> request = parse_request(
...     b'{"pattern": "x{a}", "documents": ["ab", "ba"]}', "evaluate", ""
... )
>>> request.pattern, [doc_id for doc_id, _ in request.documents]
('x{a}', ['doc-00000', 'doc-00001'])
>>> parse_request(b'{"documents": ["ab"]}', "evaluate", "")
Traceback (most recent call last):
    ...
repro.server.protocol.ProtocolError: request needs a "pattern" string
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "EVALUATE",
    "ENUMERATE",
    "NDJSON_CONTENT_TYPE",
    "QUERY",
    "ProtocolError",
    "QueryRequest",
    "SpanRequest",
    "encode_query_results",
    "encode_result_line",
    "encode_results",
    "parse_query_request",
    "parse_request",
]

#: Request modes (the POST endpoints).
EVALUATE = "evaluate"
ENUMERATE = "enumerate"
QUERY = "query"

NDJSON_CONTENT_TYPE = "application/x-ndjson"

_OPT_LEVELS = (0, 1, 2)
_HEADER_KEYS = frozenset({"pattern", "opt_level", "spans"})


class ProtocolError(Exception):
    """A malformed request; the HTTP layer answers 400 with the message."""


@dataclass(frozen=True)
class SpanRequest:
    """One parsed POST request: a pattern and the documents to run it on."""

    mode: str
    pattern: str
    documents: tuple[tuple[str, str], ...]
    opt_level: int | None = None
    spans: bool = False
    ndjson: bool = False
    #: Coalescing identity: requests with equal keys share one compile.
    key: tuple[str, int | None] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", (self.pattern, self.opt_level))


def _generated_id(position: int) -> str:
    return f"doc-{position:05d}"


def _parse_json(raw: bytes, what: str):
    try:
        return json.loads(raw)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"invalid JSON in {what}: {error}") from None


def _document_entry(item, position: int) -> tuple[str, str]:
    """Coerce one documents[] element into an ``(id, text)`` pair."""
    if isinstance(item, str):
        return _generated_id(position), item
    if isinstance(item, dict):
        text = item.get("text")
        if not isinstance(text, str):
            raise ProtocolError(
                f'document #{position} needs a "text" string'
            )
        doc_id = item.get("id", _generated_id(position))
        if not isinstance(doc_id, str):
            raise ProtocolError(f'document #{position} "id" must be a string')
        return doc_id, text
    raise ProtocolError(
        f"document #{position} must be a string or an object, "
        f"not {type(item).__name__}"
    )


def _documents(body: dict) -> tuple[tuple[str, str], ...]:
    single = body.get("document")
    collection = body.get("documents")
    if (single is None) == (collection is None):
        raise ProtocolError(
            'request needs exactly one of "document" or "documents"'
        )
    if single is not None:
        if not isinstance(single, str):
            raise ProtocolError('"document" must be a string')
        return ((_generated_id(0), single),)
    if isinstance(collection, dict):
        entries = [
            _document_entry({"id": doc_id, "text": text}, position)
            for position, (doc_id, text) in enumerate(collection.items())
        ]
    elif isinstance(collection, list):
        entries = [
            _document_entry(item, position)
            for position, item in enumerate(collection)
        ]
    else:
        raise ProtocolError('"documents" must be a list or an object')
    if not entries:
        raise ProtocolError('"documents" is empty')
    seen: set[str] = set()
    for doc_id, _ in entries:
        if doc_id in seen:
            raise ProtocolError(f"duplicate document id {doc_id!r}")
        seen.add(doc_id)
    return tuple(entries)


def _header_options(body: dict) -> tuple[str, int | None, bool]:
    pattern = body.get("pattern")
    if not isinstance(pattern, str) or not pattern:
        raise ProtocolError('request needs a "pattern" string')
    opt_level = body.get("opt_level")
    if opt_level is not None and opt_level not in _OPT_LEVELS:
        raise ProtocolError(
            f'"opt_level" must be one of {list(_OPT_LEVELS)}, '
            f"got {opt_level!r}"
        )
    spans = body.get("spans", False)
    if not isinstance(spans, bool):
        raise ProtocolError('"spans" must be a boolean')
    return pattern, opt_level, spans


def _parse_ndjson(raw: bytes, mode: str) -> SpanRequest:
    lines = [line for line in raw.split(b"\n") if line.strip()]
    if not lines:
        raise ProtocolError("NDJSON request is empty")
    header = _parse_json(lines[0], "NDJSON header line")
    if not isinstance(header, dict):
        raise ProtocolError("NDJSON header line must be an object")
    unknown = set(header) - _HEADER_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown NDJSON header key(s): {sorted(unknown)} "
            f"(documents go on the following lines)"
        )
    pattern, opt_level, spans = _header_options(header)
    documents = []
    seen: set[str] = set()
    for position, line in enumerate(lines[1:]):
        item = _parse_json(line, f"NDJSON document line {position + 1}")
        doc_id, text = _document_entry(item, position)
        if doc_id in seen:
            raise ProtocolError(f"duplicate document id {doc_id!r}")
        seen.add(doc_id)
        documents.append((doc_id, text))
    if not documents:
        raise ProtocolError("NDJSON request carries no document lines")
    return SpanRequest(
        mode=mode,
        pattern=pattern,
        documents=tuple(documents),
        opt_level=opt_level,
        spans=spans,
        ndjson=True,
    )


def parse_request(raw: bytes, mode: str, content_type: str) -> SpanRequest:
    """Parse one POST body (JSON or NDJSON) into a :class:`SpanRequest`."""
    if NDJSON_CONTENT_TYPE in (content_type or "").lower():
        return _parse_ndjson(raw, mode)
    body = _parse_json(raw, "request body")
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    pattern, opt_level, spans = _header_options(body)
    return SpanRequest(
        mode=mode,
        pattern=pattern,
        documents=_documents(body),
        opt_level=opt_level,
        spans=spans,
    )


# -- query sets --------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One parsed ``POST /query`` body.

    ``register`` carries ``(name, spec)`` pairs to add to the server's
    query set (specs in the :mod:`repro.algebra` JSON wire form);
    ``names`` selects which registered queries to answer (``None`` = all);
    ``documents`` may be empty for a registration-only request.
    """

    register: tuple[tuple[str, object], ...]
    names: tuple[str, ...] | None
    documents: tuple[tuple[str, str], ...]
    spans: bool = False


def parse_query_request(raw: bytes, content_type: str) -> QueryRequest:
    """Parse one ``POST /query`` body into a :class:`QueryRequest`.

    >>> request = parse_query_request(
    ...     b'{"register": {"q": "x{a}"}, "documents": ["ab"]}', ""
    ... )
    >>> request.register, request.names
    ((('q', 'x{a}'),), None)
    """
    if NDJSON_CONTENT_TYPE in (content_type or "").lower():
        raise ProtocolError("/query only accepts JSON bodies")
    body = _parse_json(raw, "request body")
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    register_spec = body.get("register")
    register: tuple[tuple[str, object], ...] = ()
    if register_spec is not None:
        if not isinstance(register_spec, dict) or not register_spec:
            raise ProtocolError(
                '"register" must be a non-empty object of name -> query spec'
            )
        for name in register_spec:
            if not isinstance(name, str) or not name:
                raise ProtocolError(
                    "query names must be non-empty strings"
                )
        register = tuple(register_spec.items())
    evaluate = body.get("evaluate")
    if evaluate is None or evaluate is True:
        names = None
    elif isinstance(evaluate, list) and all(
        isinstance(name, str) for name in evaluate
    ):
        names = tuple(evaluate)
    else:
        raise ProtocolError(
            '"evaluate" must be true or a list of query names'
        )
    if body.get("document") is None and body.get("documents") is None:
        documents: tuple[tuple[str, str], ...] = ()
        if not register:
            raise ProtocolError(
                'request needs "register" and/or "document"/"documents"'
            )
    else:
        documents = _documents(body)
    spans = body.get("spans", False)
    if not isinstance(spans, bool):
        raise ProtocolError('"spans" must be a boolean')
    return QueryRequest(
        register=register, names=names, documents=documents, spans=spans
    )


# -- responses ---------------------------------------------------------------


def _decoded(record: dict, spans: bool) -> dict:
    if spans:
        return {
            variable: [span.begin, span.end]
            for variable, span in record.items()
        }
    return dict(record)


def result_entry(
    request: SpanRequest, doc_id: str, payload, error: str | None
) -> dict:
    """One document's response object (shared by JSON and NDJSON modes)."""
    entry: dict[str, object] = {"doc": doc_id, "error": error}
    if request.mode == EVALUATE:
        entry["matches"] = None if error is not None else bool(payload)
    else:
        entry["mappings"] = (
            None
            if error is not None
            else [_decoded(record, request.spans) for record in payload]
        )
    return entry


def _dump(payload) -> str:
    return json.dumps(payload, sort_keys=True, ensure_ascii=False)


def encode_result_line(
    request: SpanRequest, doc_id: str, payload, error: str | None
) -> bytes:
    """One NDJSON response line (newline-terminated)."""
    entry = result_entry(request, doc_id, payload, error)
    return (_dump(entry) + "\n").encode("utf-8")


def encode_results(
    request: SpanRequest, entries: list[dict]
) -> bytes:
    """The aggregate JSON response body for a non-NDJSON request."""
    payload = {"pattern": request.pattern, "results": entries}
    return _dump(payload).encode("utf-8")


def query_result_entry(
    doc_id: str,
    queries: "dict[str, list[dict]] | None",
    error: str | None,
    spans: bool,
) -> dict:
    """One document's ``/query`` response object."""
    decoded = None
    if error is None:
        decoded = {
            name: [_decoded(record, spans) for record in records]
            for name, records in queries.items()
        }
    return {"doc": doc_id, "error": error, "queries": decoded}


def encode_query_results(
    registered: list[str], names: list[str], entries: list[dict]
) -> bytes:
    """The aggregate JSON response body for a ``/query`` request."""
    payload: dict[str, object] = {
        "registered": registered,
        "queries": names,
        "results": entries,
    }
    return _dump(payload).encode("utf-8")


def encode_error(message: str) -> bytes:
    """A JSON error body (400/404/429/503 responses)."""
    return _dump({"error": message}).encode("utf-8")
