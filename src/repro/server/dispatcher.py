"""The coalescing dispatcher: shared compiles, micro-batches, backpressure.

The heart of the serving subsystem.  Three mechanisms turn many small
concurrent requests into the large warm batches the engine is built for:

* **request coalescing** — concurrent requests for the same
  ``(pattern, opt_level)`` share one compile: the first request plans and
  compiles through the thread-safe
  :class:`~repro.service.cache.SpannerCache` in an executor thread, every
  other request awaits the same future, and later requests resolve via
  the cache's ``(pattern, opt level)`` memo — the one bounded store of
  compiled engines, so its stats describe what is actually served;
* **micro-batching** — documents are appended to a per-``(engine, kind)``
  batch that flushes when it reaches ``batch_max_size`` documents *or*
  ``batch_max_delay`` seconds after its first document (size/latency
  watermarks), so one flush serves documents from many requests and each
  executor round-trip amortises over the whole batch;
* **bounded queues** — at most ``max_pending`` documents may be queued or
  in flight; past the watermark new work is shed with :class:`Overloaded`
  (the HTTP layer answers 429) instead of growing the queue without
  bound.

Batches execute on an :class:`~repro.service.backend.ExecutorBackend`:
a :class:`~repro.service.backend.ProcessBackend` over the
:class:`~repro.service.evaluate.WorkerPool` (``workers >= 1`` — each
worker's kernel memo stays warm across batches, and hence across
requests), a :class:`~repro.service.backend.ThreadBackend`
(``workers = 0`` — no pickling, engines shared across threads, which is
what the engine's cache locks exist for), or any injected backend
(``DispatcherConfig.backend`` — the cluster coordinator injects its
node-routing backend here).  A backend that reports itself broken
(:class:`~repro.service.resilience.PoolBroken`) degrades the dispatcher
onto an in-process ThreadBackend until the reset window passes.

``naive=True`` is the ablation baseline the serving benchmark (E23)
compares against: no cache, no coalescing, no batching — every request
compiles its own engine and every document runs alone, the
one-request-one-eval server someone would write first.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.engine.compiled import CompiledSpanner, compile_spanner
from repro.server.metrics import Metrics
from repro.server.protocol import EVALUATE, SpanRequest
from repro.service import faults
from repro.service.backend import (
    ExecutorBackend,
    ProcessBackend,
    ThreadBackend,
)
from repro.service.cache import SpannerCache
from repro.service.evaluate import DEFAULT_MAX_REBUILDS
from repro.service.resilience import BreakerOpen, CircuitBreaker, PoolBroken

__all__ = [
    "BreakerOpen",
    "Dispatcher",
    "DispatcherConfig",
    "Overloaded",
    "RequestTooLarge",
]

_LOGGER = logging.getLogger("repro.server")

#: Distinct (pattern, opt_level) circuit breakers kept live (FIFO bound —
#: an unbounded dict would grow with every pattern ever requested).
_BREAKER_LIMIT = 256


class Overloaded(Exception):
    """The pending-document queue is full; shed the request (HTTP 429)."""


class RequestTooLarge(Exception):
    """More documents than ``max_pending`` in one request: retrying can
    never succeed, so the HTTP layer answers 413, not 429."""


@dataclass
class DispatcherConfig:
    """Tuning knobs for the dispatcher (see the module docstring)."""

    #: Worker processes for batch evaluation; 0 evaluates in-process on a
    #: thread pool (no pickling, engines shared across threads).
    workers: int = 0
    #: Flush a batch at this many documents …
    batch_max_size: int = 16
    #: … or this many seconds after its first document, whichever first.
    batch_max_delay: float = 0.002
    #: Queued + in-flight documents beyond which submissions are shed.
    max_pending: int = 1024
    #: Threads for the in-process executor (``workers == 0``); None picks
    #: a small multiple of the CPU count.
    inline_threads: int | None = None
    #: Disable cache, coalescing, and batching (the E23 baseline).
    naive: bool = False
    #: Directory of durable engine artifacts; None leaves the cache purely
    #: in-memory (see repro.service.artifact_store).
    artifact_dir: str | None = None
    #: Publish engines to worker processes through shared-memory segments
    #: (see repro.service.shm_store).  None auto-detects; False forces the
    #: pickled/artifact path.  Only meaningful with ``workers >= 1``.
    shared_memory: bool | None = None
    #: Per-batch deadline on the worker pool, seconds; None disables
    #: (falls back to ``REPRO_TASK_TIMEOUT``).
    task_timeout: float | None = None
    #: Consecutive pool rebuilds tolerated before degrading to threads.
    max_rebuilds: int = DEFAULT_MAX_REBUILDS
    #: Consecutive compile failures that open a pattern's breaker …
    breaker_threshold: int = 5
    #: … and how long the breaker stays open before a half-open probe.
    breaker_reset: float = 30.0
    #: How long degraded mode lasts before the pool is revived and probed.
    degraded_reset: float = 30.0
    #: An injected :class:`~repro.service.backend.ExecutorBackend` that
    #: overrides the workers-derived choice (the cluster coordinator
    #: injects its node-routing backend here).  The dispatcher does not
    #: own an injected backend: ``close()`` leaves it running.
    backend: "ExecutorBackend | None" = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        if self.batch_max_delay < 0:
            raise ValueError("batch_max_delay must be >= 0")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.max_rebuilds < 0:
            raise ValueError("max_rebuilds must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset <= 0:
            raise ValueError("breaker_reset must be positive")
        if self.degraded_reset <= 0:
            raise ValueError("degraded_reset must be positive")


class _Batch:
    """One open micro-batch: items plus the pending flush timer."""

    __slots__ = ("engine", "kind", "spans", "items", "timer")

    def __init__(self, engine: CompiledSpanner, kind: str, spans: bool) -> None:
        self.engine = engine
        self.kind = kind
        self.spans = spans
        # (doc_id, text, future) per document, in arrival order.
        self.items: list[tuple[str, str, asyncio.Future]] = []
        self.timer: asyncio.TimerHandle | None = None


def _request_kind(request: SpanRequest) -> str:
    return "matches" if request.mode == EVALUATE else "extract"


class Dispatcher:
    """Routes parsed requests onto shared engines and batched executors."""

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        metrics: Metrics | None = None,
        cache: SpannerCache | None = None,
    ) -> None:
        self.config = config if config is not None else DispatcherConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        # NB: `cache or SpannerCache()` would silently replace an *empty*
        # cache — SpannerCache defines __len__, so empty means falsy.
        self.cache = cache if cache is not None else SpannerCache()
        self.artifacts = None
        if self.config.artifact_dir:
            from repro.service.artifact_store import ArtifactStore

            self.artifacts = ArtifactStore(self.config.artifact_dir)
            self.cache.attach_artifacts(self.artifacts)
        elif getattr(self.cache, "artifacts", None) is not None:
            self.artifacts = self.cache.artifacts
        self._loop: asyncio.AbstractEventLoop | None = None
        self._compile_pool: ThreadPoolExecutor | None = None
        # The execution seam: the primary backend serves batches, the
        # fallback (an in-process ThreadBackend, created lazily) takes
        # over while the primary is degraded.  An injected backend is
        # borrowed, never owned.
        self._backend: ExecutorBackend | None = None
        self._fallback: ThreadBackend | None = None
        self._backend_owned = True
        # In-flight compiles, keyed by (pattern, opt_level).  Resolved
        # engines live only in the SpannerCache — a loop-local mirror
        # would dodge the cache's capacity bound and make its stats (and
        # /healthz) lie about what is actually being served.
        self._compiles: dict[tuple[str, int | None], asyncio.Future] = {}
        self._batches: dict[tuple, _Batch] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._pending = 0
        self._flush_immediately = False
        self._closed = False
        # Resilience: one compile breaker per (pattern, opt_level), the
        # degraded flag set when the worker pool exhausts its rebuild
        # budget, and the last-published counter totals (pool counters
        # are cumulative; /metrics counters only take deltas).
        self._breakers: "OrderedDict[tuple, CircuitBreaker]" = OrderedDict()
        self._degraded = False
        self._degraded_at: float | None = None
        self._published: dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._compile_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-compile"
        )
        if self.config.backend is not None:
            self._backend = self.config.backend
            self._backend_owned = False
        elif self.config.workers >= 1:
            self._backend = ProcessBackend(
                self.config.workers,
                artifact_dir=self.config.artifact_dir,
                shared_memory=self.config.shared_memory,
                task_timeout=self.config.task_timeout,
                max_rebuilds=self.config.max_rebuilds,
            )
        else:
            # In-process serving: the primary backend *is* the fallback,
            # so degraded mode can never trigger (nothing to degrade to).
            self._fallback = ThreadBackend(self.config.inline_threads)
            self._backend = self._fallback

    @property
    def backend(self) -> "ExecutorBackend | None":
        """The primary execution backend (None before ``start()``)."""
        return self._backend

    @property
    def worker_pool(self):
        """The primary backend's WorkerPool, when it has one."""
        return getattr(self._backend, "pool", None)

    def _fallback_backend(self) -> ThreadBackend:
        """The in-process fallback — the degraded-mode target, created
        lazily when a non-thread server first needs it."""
        if self._fallback is None:
            self._fallback = ThreadBackend(self.config.inline_threads)
        return self._fallback

    def flush_all(self) -> None:
        """Flush every open batch now and every future batch on arrival.

        The first step of a graceful drain: request handlers still
        running may submit more documents, and those must not wait out a
        latency watermark the server no longer intends to honour.
        """
        self._flush_immediately = True
        for key in list(self._batches):
            self._flush(key)

    async def close(self) -> None:
        """Flush, wait for every in-flight batch, release the executors."""
        self.flush_all()
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        self._closed = True
        if self._compile_pool is not None:
            self._compile_pool.shutdown(wait=False)
        if self._fallback is not None:
            self._fallback.close(wait=True)
        if (
            self._backend is not None
            and self._backend is not self._fallback
            and self._backend_owned
        ):
            self._backend.close(wait=True)

    # -- compilation (coalesced) ------------------------------------------------

    async def _coalesced(self, key: tuple, build):
        """Run ``build`` in the compile pool, coalescing concurrent callers.

        Every concurrent caller with the same ``key`` awaits one executor
        round-trip; the winner's result (or exception) fans out to all of
        them.  Resolved values are never memoised here — ``build`` is
        expected to consult its own bounded store (the
        :class:`~repro.service.cache.SpannerCache`, a query set's version
        memo), so the dispatcher cannot make that store's stats lie.
        """
        assert self._loop is not None, "Dispatcher.start() was never awaited"
        self.metrics.inc("repro_compile_requests_total")
        in_flight = self._compiles.get(key)
        if in_flight is not None:
            self.metrics.inc("repro_compiles_coalesced_total")
            return await asyncio.shield(in_flight)
        future: asyncio.Future = self._loop.create_future()
        self._compiles[key] = future
        started = time.perf_counter()
        try:
            result = await self._loop.run_in_executor(
                self._compile_pool, build
            )
        except BaseException as error:
            self._compiles.pop(key, None)
            future.set_exception(error)
            future.exception()  # consumed: waiters got theirs via shield
            raise
        self.metrics.observe(
            "repro_compile_seconds", time.perf_counter() - started
        )
        self._compiles.pop(key, None)
        future.set_result(result)
        return result

    def _breaker(self, key: tuple) -> CircuitBreaker:
        """The (bounded) compile breaker for one ``(pattern, opt_level)``."""
        breaker = self._breakers.get(key)
        if breaker is None:
            while len(self._breakers) >= _BREAKER_LIMIT:
                self._breakers.popitem(last=False)
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                reset_timeout=self.config.breaker_reset,
            )
            self._breakers[key] = breaker
        return breaker

    async def engine(self, request: SpanRequest) -> CompiledSpanner:
        """The compiled engine for one request, compiling at most once.

        Raises whatever the planner raises on a bad pattern (the HTTP
        layer answers 400), or :class:`BreakerOpen` when the pattern's
        compile breaker is refusing work (the HTTP layer answers 422) —
        a pattern that keeps failing to compile under coalesced load
        fails fast instead of re-planning for every request.
        """
        assert self._loop is not None, "Dispatcher.start() was never awaited"
        if self.config.naive:
            # Ablation baseline: a fresh compile for every request.
            self.metrics.inc("repro_compile_requests_total")
            return await self._loop.run_in_executor(
                self._compile_pool,
                lambda: compile_spanner(request.pattern, request.opt_level),
            )
        breaker = self._breaker(request.key)
        if not breaker.allow():
            self.metrics.inc("repro_breaker_rejections_total")
            raise BreakerOpen(request.key, breaker.retry_after())

        def build() -> CompiledSpanner:
            faults.inject(faults.COMPILE)
            return self.cache.get(request.pattern, request.opt_level)

        try:
            engine = await self._coalesced(request.key, build)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        return engine

    async def compile_query_set(self, queryset):
        """The compiled snapshot of a query set, compiling at most once.

        The coalescing key carries the registry version, so a request that
        lands after a registration waits on (or starts) the new combined
        engine's compile while in-flight evaluations keep their snapshot.
        Even in naive mode the *compile* is coalesced — the query set's
        whole point is the shared engine — only caching/batching of the
        evaluation itself stays ablated.
        """
        return await self._coalesced(
            ("\x00queryset", id(queryset), queryset.version),
            queryset.compile,
        )

    # -- submission + batching ---------------------------------------------------

    def submit(
        self, engine: CompiledSpanner, request: SpanRequest
    ) -> list[asyncio.Future]:
        """Queue every document of a request; one future per document.

        Each future resolves to a ``(payload, error)`` pair.  Raises
        :class:`Overloaded` — queueing nothing — when the request would
        push the pending count past ``max_pending``.
        """
        return self.submit_documents(
            engine,
            request.documents,
            kind=_request_kind(request),
            spans=request.spans,
        )

    def submit_documents(
        self,
        engine: CompiledSpanner,
        documents,
        *,
        kind: str,
        spans: bool = False,
    ) -> list[asyncio.Future]:
        """Queue ``(doc_id, text)`` pairs onto ``engine``'s micro-batches.

        The endpoint-agnostic core of :meth:`submit` — ``/query`` submits
        its combined engine here with ``kind="mappings"`` so query-set
        documents share the queue accounting, shedding, and batching of
        the single-pattern endpoints.
        """
        assert self._loop is not None, "Dispatcher.start() was never awaited"
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        documents = list(documents)
        count = len(documents)
        if count > self.config.max_pending:
            # Even an empty queue could never admit this request: a 429
            # retry loop would spin forever, so reject it outright.
            raise RequestTooLarge(
                f"{count} documents in one request exceeds the server's "
                f"queue capacity ({self.config.max_pending}); split the "
                f"request or use the corpus service"
            )
        if self._pending + count > self.config.max_pending:
            self.metrics.inc("repro_shed_total", count)
            raise Overloaded(
                f"{self._pending} documents pending (limit "
                f"{self.config.max_pending}); retry later"
            )
        self._pending += count
        self.metrics.inc("repro_documents_total", count)
        self.metrics.gauge("repro_queue_depth", self._pending)
        futures = []
        for doc_id, text in documents:
            futures.append(self._enqueue(engine, kind, spans, doc_id, text))
        return futures

    def _enqueue(
        self,
        engine: CompiledSpanner,
        kind: str,
        spans: bool,
        doc_id: str,
        text: str,
    ) -> asyncio.Future:
        future: asyncio.Future = self._loop.create_future()
        if self.config.naive:
            # One document, one executor round-trip, no shared state.
            task = self._loop.create_task(
                self._run_batch(
                    _Batch(engine, kind, spans), [(doc_id, text, future)]
                )
            )
            self._track(task)
            return future
        key = (id(engine), kind, spans)
        batch = self._batches.get(key)
        if batch is None:
            batch = _Batch(engine, kind, spans)
            self._batches[key] = batch
            if not self._flush_immediately and self.config.batch_max_delay > 0:
                batch.timer = self._loop.call_later(
                    self.config.batch_max_delay, self._flush, key
                )
        batch.items.append((doc_id, text, future))
        if (
            len(batch.items) >= self.config.batch_max_size
            or self._flush_immediately
            or self.config.batch_max_delay <= 0
        ):
            self._flush(key)
        return future

    def _flush(self, key: tuple) -> None:
        batch = self._batches.pop(key, None)
        if batch is None:
            return  # already flushed by the size watermark
        if batch.timer is not None:
            batch.timer.cancel()
        self.metrics.inc("repro_batches_total")
        self.metrics.observe("repro_batch_documents", len(batch.items))
        task = self._loop.create_task(self._run_batch(batch, batch.items))
        self._track(task)

    def _track(self, task: asyncio.Task) -> None:
        self._batch_tasks.add(task)
        self.metrics.gauge("repro_inflight_batches", len(self._batch_tasks))
        task.add_done_callback(self._untrack)

    def _untrack(self, task: asyncio.Task) -> None:
        self._batch_tasks.discard(task)
        self.metrics.gauge("repro_inflight_batches", len(self._batch_tasks))

    def _ready_backend(self) -> ExecutorBackend:
        """The backend that should serve this batch; degraded-mode
        bookkeeping (including timed revival probes) lives here."""
        backend = self._backend
        assert backend is not None, "Dispatcher.start() was never awaited"
        if backend is self._fallback or not self._degraded:
            return backend
        if (
            self._degraded_at is not None
            and time.monotonic() - self._degraded_at
            >= self.config.degraded_reset
        ):
            try:
                backend.revive()
            except RuntimeError:
                return self._fallback_backend()  # already shut down
            self._degraded = False
            self._degraded_at = None
            self.metrics.gauge("repro_degraded", 0)
            _LOGGER.warning("degraded period over; probing the %s backend", backend.name)
            return backend
        return self._fallback_backend()

    def _enter_degraded(self) -> None:
        if self._degraded:
            return
        self._degraded = True
        self._degraded_at = time.monotonic()
        self.metrics.gauge("repro_degraded", 1)
        _LOGGER.warning(
            "%s backend broken; serving on in-process threads (degraded) "
            "for %.3gs",
            self._backend.name if self._backend is not None else "primary",
            self.config.degraded_reset,
        )

    async def _run_batch(self, batch: _Batch, items: list) -> None:
        records = [(doc_id, text) for doc_id, text, _ in items]
        try:
            backend = self._ready_backend()
            try:
                triples = await asyncio.wrap_future(
                    backend.submit(
                        batch.engine,
                        records,
                        kind=batch.kind,
                        spans=batch.spans,
                    )
                )
            except PoolBroken:
                # Graceful degradation: answer this batch (and the
                # next ones, until the reset window passes) on the
                # in-process thread executor instead of failing it.
                if backend is self._fallback:
                    raise
                self._enter_degraded()
                triples = await asyncio.wrap_future(
                    self._fallback_backend().submit(
                        batch.engine,
                        records,
                        kind=batch.kind,
                        spans=batch.spans,
                    )
                )
            # Results come back in submission order.  Document ids are
            # only unique *within* one request — a batch spans many — so
            # matching must be positional, never by id.
            if len(triples) != len(items):
                raise RuntimeError(
                    f"batch returned {len(triples)} results for "
                    f"{len(items)} documents"
                )
            outcomes = [(payload, error) for _, payload, error in triples]
        except Exception as error:
            # The whole batch failed (e.g. a broken pool): report every
            # document rather than losing the requests.
            described = f"{type(error).__name__}: {error}"
            outcomes = [(None, described)] * len(items)
        finally:
            self._pending -= len(items)
            self.metrics.gauge("repro_queue_depth", self._pending)
        for (_, _, future), outcome in zip(items, outcomes):
            if not future.done():
                future.set_result(outcome)

    # -- introspection -----------------------------------------------------------

    def artifact_counters(self) -> dict[str, int]:
        """Dispatcher-side plus worker-side artifact hit/miss/save/error sums."""
        totals: dict[str, int] = {}
        if self.artifacts is not None:
            totals.update(self.artifacts.counters())
        pool = self.worker_pool
        if pool is not None:
            for key, value in pool.stats()["artifacts"].items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def shm_counters(self) -> dict[str, int]:
        """The pool's shared-memory counters (publish and attach side)."""
        pool = self.worker_pool
        if pool is None:
            return {}
        return dict(pool.stats().get("shm", {}))

    def publish_artifact_metrics(self) -> None:
        """Refresh the ``repro_artifact_*`` / ``repro_shm_*`` gauges."""
        for key, value in self.artifact_counters().items():
            self.metrics.gauge(f"repro_artifact_{key}", value)
        for key, value in self.shm_counters().items():
            self.metrics.gauge(f"repro_shm_{key}", value)

    @property
    def degraded(self) -> bool:
        """Whether batches are being served on the in-process fallback."""
        return self._degraded

    def breaker_states(self) -> dict[str, int]:
        """How many compile breakers sit in each state right now."""
        counts = {
            CircuitBreaker.CLOSED: 0,
            CircuitBreaker.OPEN: 0,
            CircuitBreaker.HALF_OPEN: 0,
        }
        for breaker in list(self._breakers.values()):
            counts[breaker.state] += 1
        return counts

    def resilience_stats(self) -> dict[str, object]:
        """Pool liveness + breaker summary for ``/healthz`` and tests."""
        stats: dict[str, object] = {
            "degraded": self._degraded,
            "breakers": self.breaker_states(),
        }
        pool = self.worker_pool
        if pool is not None:
            stats["pool"] = pool.resilience()
        return stats

    def publish_resilience_metrics(self) -> None:
        """Refresh the resilience counters and gauges on ``/metrics``.

        The pool's counters are cumulative, Prometheus counters only go
        up by deltas — so each publication increments by the growth
        since the last one.
        """
        pool = self.worker_pool
        if pool is not None:
            resilience = pool.resilience()
            for metric, key in (
                ("repro_worker_restarts_total", "restarts"),
                ("repro_task_retries_total", "retries"),
                ("repro_tasks_timeout_total", "timeouts"),
            ):
                total = int(resilience[key])
                published = self._published.get(metric, 0)
                if total > published:
                    self.metrics.inc(metric, total - published)
                self._published[metric] = max(total, published)
        for state, count in self.breaker_states().items():
            self.metrics.gauge("repro_breaker_state", count, state=state)
        self.metrics.gauge("repro_degraded", 1 if self._degraded else 0)

    def stats(self) -> dict[str, object]:
        """A live snapshot for ``/healthz`` and tests."""
        snapshot: dict[str, object] = {
            "pending_documents": self._pending,
            "inflight_batches": len(self._batch_tasks),
            "open_batches": len(self._batches),
            "cache": self.cache.stats(),
            "workers": self.config.workers,
            "naive": self.config.naive,
            "resilience": self.resilience_stats(),
        }
        if self._backend is not None:
            snapshot["backend"] = self._backend.name
        pool = self.worker_pool
        if self.artifacts is not None or pool is not None:
            snapshot["artifacts"] = self.artifact_counters()
        if pool is not None:
            snapshot["shm"] = self.shm_counters()
            snapshot["worker_stats"] = pool.stats()
        return snapshot
