"""The asyncio HTTP server: routing, streaming, graceful drain.

Stdlib only: :func:`asyncio.start_server` connections with hand-rolled
HTTP/1.1 framing (request line + headers + ``Content-Length`` bodies,
keep-alive, chunked NDJSON responses).  Endpoints:

* ``POST /evaluate`` — the paper's NonEmp verdict per document;
* ``POST /enumerate`` — decoded mappings per document (``spans`` option);
* ``GET /healthz`` — liveness plus live queue numbers;
* ``GET /metrics`` — Prometheus text exposition.

Graceful drain (SIGTERM/SIGINT, or :meth:`SpannerServer.drain`):

1. stop accepting connections and mark the server draining;
2. flush every open micro-batch immediately (and every batch formed
   after this point) — queued documents must not wait out a latency
   watermark the server no longer intends to honour;
3. close idle keep-alive connections; busy ones finish their in-flight
   response (with ``Connection: close``) — accepted requests are never
   dropped or answered twice;
4. wait for in-flight handlers (bounded by ``drain_grace``), then close
   the dispatcher's executors.

:class:`ServerThread` runs the whole server on a private event loop in a
daemon thread — the harness used by the tests, the docs examples, and
benchmark E23.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass

from repro.server.dispatcher import (
    BreakerOpen,
    Dispatcher,
    DispatcherConfig,
    Overloaded,
    RequestTooLarge,
)
from repro.server.metrics import Metrics
from repro.server.protocol import (
    ENUMERATE,
    EVALUATE,
    ProtocolError,
    SpanRequest,
    encode_error,
    encode_query_results,
    encode_result_line,
    encode_results,
    parse_query_request,
    parse_request,
    query_result_entry,
    result_entry,
)
from repro.service.cache import SpannerCache
from repro.service.queryset import QuerySet
from repro.util.errors import SpannerError

__all__ = ["ServerConfig", "ServerThread", "SpannerServer", "serve"]

#: Largest accepted request body (the corpus service is the bulk path).
_MAX_BODY = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Worker processes (0 = in-process thread pool; see DispatcherConfig).
    workers: int = 0
    batch_max_size: int = 16
    batch_max_delay: float = 0.002
    max_pending: int = 1024
    inline_threads: int | None = None
    #: Seconds granted to in-flight requests during drain.
    drain_grace: float = 10.0
    #: The E23 ablation baseline: no cache, no coalescing, no batching.
    naive: bool = False
    #: Durable engine-artifact cache directory (None: in-memory only).
    artifact_dir: str | None = None
    #: Shared-memory engine segments for worker processes (None:
    #: auto-detect; False: pickled/artifact path only).
    shared_memory: bool | None = None
    #: Per-batch worker deadline, seconds (None: REPRO_TASK_TIMEOUT).
    task_timeout: float | None = None
    #: Consecutive pool rebuilds tolerated before degrading to threads.
    max_rebuilds: int = 5
    #: Compile failures that open a pattern's circuit breaker …
    breaker_threshold: int = 5
    #: … and seconds it stays open before a half-open probe.
    breaker_reset: float = 30.0
    #: Seconds a degraded server waits before reviving its worker pool.
    degraded_reset: float = 30.0
    #: An injected :class:`~repro.service.backend.ExecutorBackend` that
    #: overrides the workers-derived executor choice.  Programmatic only
    #: (no CLI flag): the cluster coordinator routes its dispatcher onto
    #: the registered worker nodes through this seam.
    backend: object | None = None

    def __post_init__(self) -> None:
        # Timeout-ish knobs where zero or a negative would misbehave
        # far downstream (a drain that never waits, a batch window that
        # never flushes by time, a deadline that fires immediately) are
        # rejected here, at construction.
        if self.drain_grace <= 0:
            raise ValueError("drain_grace must be positive")
        if self.batch_max_delay < 0:
            raise ValueError("batch_max_delay must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.max_rebuilds < 0:
            raise ValueError("max_rebuilds must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset <= 0:
            raise ValueError("breaker_reset must be positive")
        if self.degraded_reset <= 0:
            raise ValueError("degraded_reset must be positive")

    def dispatcher_config(self) -> DispatcherConfig:
        return DispatcherConfig(
            workers=self.workers,
            batch_max_size=self.batch_max_size,
            batch_max_delay=self.batch_max_delay,
            max_pending=self.max_pending,
            inline_threads=self.inline_threads,
            naive=self.naive,
            artifact_dir=self.artifact_dir,
            shared_memory=self.shared_memory,
            task_timeout=self.task_timeout,
            max_rebuilds=self.max_rebuilds,
            breaker_threshold=self.breaker_threshold,
            breaker_reset=self.breaker_reset,
            degraded_reset=self.degraded_reset,
            backend=self.backend,
        )


class _Connection:
    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class SpannerServer:
    """One serving process: dispatcher + HTTP front-end + drain logic."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        cache: SpannerCache | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        self.dispatcher = Dispatcher(
            self.config.dispatcher_config(), self.metrics, cache
        )
        # The server-wide query set behind POST /query; its combined
        # engine compiles through the dispatcher's SpannerCache, so
        # /healthz and /metrics account for it like any other engine.
        self.queryset = QuerySet(cache=self.dispatcher.cache)
        self._started = time.time()
        self._server: asyncio.base_events.Server | None = None
        self._connections: dict[asyncio.Task, _Connection] = {}
        self._draining = False
        self._drained: asyncio.Event | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (``config.port == 0`` picks a free port)."""
        self._drained = asyncio.Event()
        await self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.metrics.gauge("repro_draining", 0)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — the real port when 0 was asked."""
        assert self._server is not None, "server not started"
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def drain(self) -> None:
        """Graceful shutdown; idempotent, returns when fully drained."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.metrics.gauge("repro_draining", 1)
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self.dispatcher.flush_all()
        for connection in self._connections.values():
            if not connection.busy:
                connection.writer.close()
        handlers = set(self._connections)
        if handlers:
            _, stragglers = await asyncio.wait(
                handlers, timeout=self.config.drain_grace
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        await self.dispatcher.close()
        self._drained.set()

    async def wait_drained(self) -> None:
        assert self._drained is not None
        await self._drained.wait()

    # -- connection handling -----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connection = _Connection(writer)
        self._connections[task] = connection
        try:
            while not self._draining:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                connection.busy = True
                started = time.perf_counter()
                keep_alive = await self._respond(writer, *request)
                self.metrics.observe(
                    "repro_request_seconds", time.perf_counter() - started
                )
                connection.busy = False
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # peer went away (or was closed by drain) mid-read
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        """One parsed request, or None on clean EOF/oversize."""
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if error.partial:
                raise ConnectionError("truncated request") from None
            return None  # clean EOF between requests
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split()
        if len(parts) != 3:
            await self._write_response(
                writer, 400, encode_error("malformed request line"), close=True
            )
            return None
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            await self._write_response(
                writer, 400, encode_error("bad Content-Length"), close=True
            )
            return None
        if length > _MAX_BODY:
            await self._write_response(
                writer, 413, encode_error("request body too large"), close=True
            )
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    # -- responses ---------------------------------------------------------------

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        close: bool = False,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.metrics.inc("repro_responses_total", status=str(status))
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    async def _respond(self, writer, method, path, headers, body) -> bool:
        """Route one request; True to keep the connection alive."""
        # A draining server closes each connection after its in-flight
        # response, and says so.
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and not self._draining
        )
        # Only known routes become label values: a client looping over
        # random paths must not grow the metrics registry (nor inject
        # exposition-breaking characters).
        known = {"/healthz", "/metrics", "/evaluate", "/enumerate", "/query"}
        endpoint = path.strip("/") if path in known else "other"
        self.metrics.inc("repro_requests_total", endpoint=endpoint)
        try:
            if path == "/healthz":
                return await self._healthz(writer, keep_alive)
            if path == "/metrics":
                self.dispatcher.publish_artifact_metrics()
                self.dispatcher.publish_resilience_metrics()
                await self._write_response(
                    writer,
                    200,
                    self.metrics.render().encode("utf-8"),
                    content_type="text/plain; version=0.0.4",
                    close=not keep_alive,
                )
                return keep_alive
            if path in ("/evaluate", "/enumerate"):
                if method != "POST":
                    await self._write_response(
                        writer,
                        405,
                        encode_error(f"{path} takes POST"),
                        close=not keep_alive,
                        extra_headers=(("Allow", "POST"),),
                    )
                    return keep_alive
                mode = EVALUATE if path == "/evaluate" else ENUMERATE
                return await self._extraction(
                    writer, mode, headers, body, keep_alive
                )
            if path == "/query":
                if method != "POST":
                    await self._write_response(
                        writer,
                        405,
                        encode_error("/query takes POST"),
                        close=not keep_alive,
                        extra_headers=(("Allow", "POST"),),
                    )
                    return keep_alive
                return await self._query(writer, headers, body, keep_alive)
            await self._write_response(
                writer, 404, encode_error(f"no route {path}"), close=not keep_alive
            )
            return keep_alive
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as error:  # a handler bug must not kill the server
            self.metrics.inc("repro_errors_total")
            try:
                await self._write_response(
                    writer,
                    500,
                    encode_error(f"{type(error).__name__}: {error}"),
                    close=True,
                )
            except ConnectionError:
                pass
            return False

    def _health_payload(self) -> dict:
        """The ``/healthz`` body; subclasses extend (the coordinator adds
        its cluster topology)."""
        from repro import __version__

        stats = self.dispatcher.stats()
        resilience = stats["resilience"]
        if self._draining:
            status = "draining"
        elif resilience["degraded"]:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "version": __version__,
            "uptime_seconds": round(time.time() - self._started, 3),
            "pending_documents": stats["pending_documents"],
            "inflight_batches": stats["inflight_batches"],
            "spanners_cached": stats["cache"]["size"],
            "workers": stats["workers"],
            "degraded": resilience["degraded"],
            "breakers": resilience["breakers"],
        }
        pool = resilience.get("pool")
        if pool is not None:
            payload["pool"] = {
                "alive": not pool["failed"],
                "worker_restarts": pool["restarts"],
                "task_retries": pool["retries"],
                "task_timeouts": pool["timeouts"],
                "last_restart": pool["last_restart"],
            }
        return payload

    async def _healthz(self, writer, keep_alive: bool) -> bool:
        payload = self._health_payload()
        await self._write_response(
            writer,
            200,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            close=not keep_alive,
        )
        return keep_alive

    async def _extraction(
        self, writer, mode: str, headers, body: bytes, keep_alive: bool
    ) -> bool:
        try:
            request = parse_request(
                body, mode, headers.get("content-type", "")
            )
        except ProtocolError as error:
            await self._write_response(
                writer, 400, encode_error(str(error)), close=not keep_alive
            )
            return keep_alive
        try:
            engine = await self.dispatcher.engine(request)
        except SpannerError as error:
            await self._write_response(
                writer,
                400,
                encode_error(f"bad pattern: {error}"),
                close=not keep_alive,
            )
            return keep_alive
        except BreakerOpen as error:
            # This pattern keeps failing to compile: fail fast instead
            # of re-planning it under coalesced load.
            await self._write_response(
                writer,
                422,
                encode_error(str(error)),
                close=not keep_alive,
                extra_headers=(
                    ("Retry-After", str(max(1, int(error.retry_after)))),
                ),
            )
            return keep_alive
        try:
            futures = self.dispatcher.submit(engine, request)
        except RequestTooLarge as error:
            await self._write_response(
                writer, 413, encode_error(str(error)), close=not keep_alive
            )
            return keep_alive
        except Overloaded as error:
            await self._write_response(
                writer,
                429,
                encode_error(str(error)),
                close=not keep_alive,
                extra_headers=(("Retry-After", "1"),),
            )
            return keep_alive
        if request.ndjson:
            return await self._stream_ndjson(
                writer, request, futures, keep_alive
            )
        entries = []
        for (doc_id, _), future in zip(request.documents, futures):
            payload, error = await future
            entries.append(result_entry(request, doc_id, payload, error))
        await self._write_response(
            writer, 200, encode_results(request, entries), close=not keep_alive
        )
        return keep_alive

    async def _query(self, writer, headers, body: bytes, keep_alive: bool) -> bool:
        """``POST /query``: register named queries and/or evaluate them.

        Registrations land in the server-wide query set; evaluation runs
        every document once through the set's combined engine, submitted
        via the dispatcher so query documents share the micro-batches,
        queue accounting, and shedding of the single-pattern endpoints.
        """
        try:
            request = parse_query_request(body, headers.get("content-type", ""))
        except ProtocolError as error:
            await self._write_response(
                writer, 400, encode_error(str(error)), close=not keep_alive
            )
            return keep_alive
        try:
            for name, spec in request.register:
                self.queryset.register(name, spec)
        except SpannerError as error:
            await self._write_response(
                writer,
                400,
                encode_error(f"bad query: {error}"),
                close=not keep_alive,
            )
            return keep_alive
        added = [name for name, _ in request.register]
        registered = self.queryset.names()
        if not request.documents:
            payload = {"registered": added, "queries": registered}
            await self._write_response(
                writer,
                200,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                close=not keep_alive,
            )
            return keep_alive
        unknown = (
            [] if request.names is None
            else [name for name in request.names if name not in registered]
        )
        if unknown or not registered:
            message = (
                "no queries registered"
                if not registered
                else f"unknown quer{'y' if len(unknown) == 1 else 'ies'}: "
                f"{', '.join(unknown)}"
            )
            await self._write_response(
                writer, 400, encode_error(message), close=not keep_alive
            )
            return keep_alive
        try:
            compiled = await self.dispatcher.compile_query_set(self.queryset)
        except SpannerError as error:
            await self._write_response(
                writer,
                400,
                encode_error(f"bad query: {error}"),
                close=not keep_alive,
            )
            return keep_alive
        self.metrics.gauge("repro_queryset_queries", len(compiled.queries))
        self.metrics.gauge("repro_queryset_cores", len(compiled.cores))
        try:
            futures = self.dispatcher.submit_documents(
                compiled.engine, request.documents, kind="mappings"
            )
        except RequestTooLarge as error:
            await self._write_response(
                writer, 413, encode_error(str(error)), close=not keep_alive
            )
            return keep_alive
        except Overloaded as error:
            await self._write_response(
                writer,
                429,
                encode_error(str(error)),
                close=not keep_alive,
                extra_headers=(("Retry-After", "1"),),
            )
            return keep_alive
        names = (
            compiled.names() if request.names is None else list(request.names)
        )
        entries = []
        for (doc_id, text), future in zip(request.documents, futures):
            payload, error = await future
            queries = None
            if error is None:
                queries = compiled.decode(
                    payload, text, names, spans=request.spans
                )
            entries.append(
                query_result_entry(doc_id, queries, error, request.spans)
            )
        await self._write_response(
            writer,
            200,
            encode_query_results(added, names, entries),
            close=not keep_alive,
        )
        return keep_alive

    async def _stream_ndjson(
        self, writer, request: SpanRequest, futures, keep_alive: bool
    ) -> bool:
        """Chunked NDJSON: each document's line ships as soon as it's done."""
        self.metrics.inc("repro_responses_total", status="200")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        for (doc_id, _), future in zip(request.documents, futures):
            payload, error = await future
            line = encode_result_line(request, doc_id, payload, error)
            writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return keep_alive


# -- entry points ---------------------------------------------------------------


async def _serve_until_signalled(config: ServerConfig) -> None:
    server = SpannerServer(config)
    await server.start()
    host, port = server.address
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signal_number in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signal_number, stop.set)
            installed.append(signal_number)
        except NotImplementedError:  # non-Unix event loop
            pass
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(workers={config.workers}, batch={config.batch_max_size}"
        f"/{config.batch_max_delay * 1000:g}ms, "
        f"max-pending={config.max_pending})",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for signal_number in installed:
            loop.remove_signal_handler(signal_number)
    print("repro serve: draining…", file=sys.stderr, flush=True)
    await server.drain()
    print("repro serve: drained, bye", file=sys.stderr, flush=True)


def serve(config: ServerConfig | None = None) -> int:
    """Run the server until SIGTERM/SIGINT, then drain; the CLI entry."""
    try:
        asyncio.run(_serve_until_signalled(config or ServerConfig()))
    except KeyboardInterrupt:  # loops without add_signal_handler support
        pass
    return 0


class ServerThread:
    """A server on a private event loop in a daemon thread.

    The in-process harness for tests, docs examples, and benchmark E23:
    enter the context manager, talk to ``address`` over real sockets,
    and exiting drains gracefully.

    >>> from repro.server import ServerClient, ServerConfig, ServerThread
    >>> with ServerThread(ServerConfig(port=0)) as server:
    ...     client = ServerClient(*server.address)
    ...     verdict = client.evaluate("x{a}b", ["ab"])
    ...     client.close()
    >>> verdict["results"][0]["matches"]
    True
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        cache: SpannerCache | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig(port=0)
        self._cache = cache
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: SpannerServer | None = None
        self._failure: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise self._failure
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    def _build(self) -> SpannerServer:
        """Construct the server instance; the cluster's CoordinatorThread
        overrides this to run a ClusterCoordinator on the same harness."""
        return SpannerServer(self.config, cache=self._cache)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = self._build()
        try:
            await server.start()
        except BaseException as error:
            self._failure = error
            self._ready.set()
            return
        self._server = server
        self._ready.set()
        await server.wait_drained()

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server thread not started"
        return self._server.address

    @property
    def server(self) -> SpannerServer:
        assert self._server is not None, "server thread not started"
        return self._server

    def drain(self, timeout: float = 30.0) -> None:
        """Drain from the calling thread (idempotent, blocks until done)."""
        server, loop = self._server, self._loop
        if server is None or loop is None or loop.is_closed():
            return
        if server._drained is not None and server._drained.is_set():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(server.drain(), loop)
            future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            # Drain overran its budget (e.g. a wedged in-flight handler).
            # The caller wanted the server *stopped*, not an exception:
            # log it and let __exit__ still join the (daemon) thread.
            print(
                f"repro server: drain did not finish within {timeout:g}s; "
                f"abandoning the wait",
                file=sys.stderr,
                flush=True,
            )
        except (RuntimeError, concurrent.futures.CancelledError):
            # The loop finished (or cancelled the duplicate coroutine)
            # because an earlier drain already completed; only a failure
            # on a live, undrained server is worth raising.
            drained = server._drained is not None and server._drained.is_set()
            if not loop.is_closed() and not drained:
                raise

    def __exit__(self, *exc_info) -> None:
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
