"""A small blocking client for the spanner server (stdlib ``http.client``).

One :class:`ServerClient` wraps one keep-alive connection — not
thread-safe, so a load generator gives each of its threads its own
client (benchmark E23 does exactly that).

>>> from repro.server import ServerClient, ServerConfig, ServerThread
>>> with ServerThread(ServerConfig(port=0)) as server:
...     client = ServerClient(*server.address)
...     reply = client.enumerate(".*x{a+}.*", ["baa"])
...     health = client.healthz()
...     client.close()
>>> reply["results"][0]["mappings"]
[{'x': 'a'}, {'x': 'aa'}, {'x': 'a'}]
>>> health["status"]
'ok'
"""

from __future__ import annotations

import http.client
import json
import time

from repro.server.protocol import NDJSON_CONTENT_TYPE

__all__ = ["RetryLaterError", "ServerClient", "ServerResponseError"]

#: Connect-retry backoff: first delay, growth factor, per-wait cap.
_RETRY_BASE = 0.05
_RETRY_FACTOR = 2.0
_RETRY_CAP = 1.0
#: Longest single wait when honouring a server-advertised ``Retry-After``
#: (a breaker can quote tens of seconds; a blocking client should not
#: sleep that long between attempts).
_RETRY_AFTER_CAP = 5.0


class ServerResponseError(Exception):
    """A non-2xx response; carries the HTTP status and the server's message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class RetryLaterError(ServerResponseError):
    """A 422/429 refusal that carried a ``Retry-After`` header.

    The server is shedding load (429: queue full) or failing fast
    (422: circuit breaker open) and told us when to come back;
    ``retry_after`` is that hint in seconds.  A client constructed with
    ``retries=N`` honours the hint automatically before re-sending.
    """

    def __init__(self, status: int, message: str, retry_after: float) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class ServerClient:
    """A persistent connection to one server, JSON in / JSON out.

    ``retries`` (opt-in, default 0: exactly the old behaviour) retries a
    *failed connect* up to that many times with capped exponential
    backoff — for harnesses and cold coordinators that race the
    listener's bind.  Only ``ConnectionError``/``OSError`` while
    establishing the TCP connection is retried; once a request has been
    written, errors propagate untouched (the request may have executed).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._retries = retries
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    # -- plumbing --------------------------------------------------------------

    def _connect_with_retries(self) -> None:
        """Establish the TCP connection, retrying refused/unreachable."""
        attempts = self._retries + 1
        delay = _RETRY_BASE
        for attempt in range(attempts):
            try:
                self._connection.connect()
                return
            except (ConnectionError, OSError):
                if attempt == attempts - 1:
                    raise
                time.sleep(delay)
                delay = min(_RETRY_CAP, delay * _RETRY_FACTOR)

    def request_raw(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, bytes]:
        """One round-trip; returns ``(status, body)`` without decoding."""
        status, _headers, raw = self._round_trip(method, path, body, content_type)
        return status, raw

    def _round_trip(
        self,
        method: str,
        path: str,
        body: bytes | None,
        content_type: str,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round-trip, keeping the response headers (for Retry-After)."""
        headers = {"Content-Type": content_type} if body is not None else {}
        if self._retries and self._connection.sock is None:
            self._connect_with_retries()
        self._connection.request(method, path, body=body, headers=headers)
        response = self._connection.getresponse()
        lowered = {name.lower(): value for name, value in response.getheaders()}
        return response.status, lowered, response.read()

    @staticmethod
    def _error_for(
        status: int, message: str, headers: dict[str, str]
    ) -> ServerResponseError:
        """The typed error for a non-2xx reply (RetryLaterError when hinted)."""
        hint = headers.get("retry-after")
        if status in (422, 429) and hint is not None:
            try:
                seconds = float(hint)
            except ValueError:
                seconds = 1.0
            return RetryLaterError(status, message, max(0.0, seconds))
        return ServerResponseError(status, message)

    def _with_retries(self, send):
        """Run ``send``, re-sending on :class:`RetryLaterError` within budget.

        Only 422/429-with-hint refusals are retried here — the server
        explicitly refused *before* doing any work, so re-sending is
        safe.  The advertised wait is honoured (floored at the connect
        backoff base, capped at ``_RETRY_AFTER_CAP``).
        """
        attempts = self._retries + 1
        for attempt in range(attempts):
            try:
                return send()
            except RetryLaterError as error:
                if attempt == attempts - 1:
                    raise
                time.sleep(
                    min(_RETRY_AFTER_CAP, max(_RETRY_BASE, error.retry_after))
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_json(self, method: str, path: str, payload=None) -> dict:
        body = (
            None
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )

        def send() -> dict:
            status, headers, raw = self._round_trip(
                method, path, body, "application/json"
            )
            try:
                decoded = json.loads(raw)
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            if status >= 400:
                raise self._error_for(
                    status, decoded.get("error", "<no message>"), headers
                )
            return decoded

        return self._with_retries(send)

    @staticmethod
    def _payload(pattern: str, documents, opt_level, spans=None) -> dict:
        payload: dict[str, object] = {"pattern": pattern}
        if isinstance(documents, str):
            payload["document"] = documents
        else:
            payload["documents"] = documents
        if opt_level is not None:
            payload["opt_level"] = opt_level
        if spans:
            payload["spans"] = True
        return payload

    # -- endpoints --------------------------------------------------------------

    def evaluate(
        self, pattern: str, documents, opt_level: int | None = None
    ) -> dict:
        """``POST /evaluate`` — NonEmp verdicts per document."""
        return self._request_json(
            "POST", "/evaluate", self._payload(pattern, documents, opt_level)
        )

    def enumerate(
        self,
        pattern: str,
        documents,
        opt_level: int | None = None,
        spans: bool = False,
    ) -> dict:
        """``POST /enumerate`` — decoded mappings per document."""
        return self._request_json(
            "POST",
            "/enumerate",
            self._payload(pattern, documents, opt_level, spans),
        )

    def enumerate_ndjson(
        self,
        pattern: str,
        documents,
        opt_level: int | None = None,
        spans: bool = False,
    ) -> list[dict]:
        """``POST /enumerate`` with an NDJSON body; one dict per line back.

        ``documents`` is an iterable of texts or ``(id, text)`` pairs.
        """
        header: dict[str, object] = {"pattern": pattern}
        if opt_level is not None:
            header["opt_level"] = opt_level
        if spans:
            header["spans"] = True
        lines = [json.dumps(header)]
        for item in documents:
            if isinstance(item, str):
                lines.append(json.dumps(item))
            else:
                doc_id, text = item
                lines.append(json.dumps({"id": doc_id, "text": text}))
        body = ("\n".join(lines) + "\n").encode("utf-8")

        def send() -> list[dict]:
            status, headers, raw = self._round_trip(
                "POST", "/enumerate", body, NDJSON_CONTENT_TYPE
            )
            if status >= 400:
                message = json.loads(raw).get("error", "<no message>")
                raise self._error_for(status, message, headers)
            return [
                json.loads(line)
                for line in raw.decode("utf-8").splitlines()
                if line.strip()
            ]

        return self._with_retries(send)

    def post_json(self, path: str, payload=None) -> dict:
        """``POST`` an arbitrary JSON body and decode the JSON reply.

        The cluster control plane (``/register``, ``/heartbeat``,
        ``/leave``) rides on this; it raises the same typed errors as
        the data-plane helpers.
        """
        return self._request_json("POST", path, payload)

    def query(
        self,
        register: dict | None = None,
        documents=None,
        *,
        evaluate=None,
        spans: bool = False,
    ) -> dict:
        """``POST /query`` — register and/or evaluate named algebra queries.

        ``register`` maps names to query specs (RGX text or the
        :mod:`repro.algebra` JSON wire form); ``documents`` is a single
        text or a collection; ``evaluate`` selects a subset of registered
        query names (default: all).  Omit ``documents`` to only register.
        Keyword names match the HTTP protocol fields one-to-one.

        >>> from repro.server import ServerClient, ServerConfig, ServerThread
        >>> with ServerThread(ServerConfig(port=0)) as server:
        ...     client = ServerClient(*server.address)
        ...     _ = client.query(register={"vowels": ".*x{a+}.*"})
        ...     reply = client.query(documents=["baa"])
        ...     client.close()
        >>> reply["results"][0]["queries"]["vowels"]
        [{'x': 'a'}, {'x': 'aa'}, {'x': 'a'}]
        """
        payload: dict[str, object] = {}
        if register is not None:
            payload["register"] = register
        if documents is not None:
            if isinstance(documents, str):
                payload["document"] = documents
            else:
                payload["documents"] = documents
        if evaluate is not None:
            payload["evaluate"] = evaluate
        if spans:
            payload["spans"] = True
        return self._request_json("POST", "/query", payload)

    def healthz(self) -> dict:
        return self._request_json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, raw = self.request_raw("GET", "/metrics")
        if status != 200:
            raise ServerResponseError(status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
