"""The online serving subsystem (the layer above :mod:`repro.service`).

A long-running asyncio HTTP server answering the paper's evaluation
problems per request: ``POST /evaluate`` (the NonEmp verdict),
``POST /enumerate`` (the output set, decoded), ``GET /healthz`` and
``GET /metrics``.  Concurrent requests for one pattern share a single
compile through the thread-safe :class:`~repro.service.cache.SpannerCache`
(request coalescing), documents from many requests are micro-batched onto
shared executors with size/latency watermarks, queues are bounded with
429 load-shedding past the watermark, and SIGTERM drains gracefully —
see :mod:`repro.server.dispatcher` and :mod:`repro.server.app`, and
``docs/server.md`` for the operational story.
"""

from repro.server.app import ServerConfig, ServerThread, SpannerServer, serve
from repro.server.client import (
    RetryLaterError,
    ServerClient,
    ServerResponseError,
)
from repro.server.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    Overloaded,
    RequestTooLarge,
)
from repro.server.metrics import Metrics
from repro.server.protocol import ProtocolError, SpanRequest, parse_request

__all__ = [
    "Dispatcher",
    "DispatcherConfig",
    "Metrics",
    "Overloaded",
    "ProtocolError",
    "RequestTooLarge",
    "RetryLaterError",
    "ServerClient",
    "ServerConfig",
    "ServerResponseError",
    "ServerThread",
    "SpanRequest",
    "SpannerServer",
    "parse_request",
    "serve",
]
