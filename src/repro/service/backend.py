"""Executor backends: one submit/stats/close seam over every execution tier.

The server dispatcher and :func:`~repro.service.evaluate.evaluate_corpus`
used to hard-code *where* a batch of ``(doc_id, text)`` records runs —
an in-process thread pool or the :class:`~repro.service.evaluate.WorkerPool`
process pool.  The distributed tier (:mod:`repro.cluster`) adds a third
place: worker *nodes* on other hosts.  :class:`ExecutorBackend` is the
seam all three share:

* :meth:`ExecutorBackend.submit` ships one ``evaluate_records``-shaped
  batch and returns a :class:`concurrent.futures.Future` resolving to the
  usual ``(doc_id, payload, error)`` triples, in submission order;
* :meth:`ExecutorBackend.stats` reports the executor-side counters
  (worker kernel/cache sums for processes, node topology for a cluster);
* :meth:`ExecutorBackend.close` releases the executor.

:class:`ThreadBackend` runs batches on in-process threads (no pickling,
engines shared across threads — the ``workers=0`` server path and the
degraded-mode fallback).  :class:`ProcessBackend` wraps a
:class:`~repro.service.evaluate.WorkerPool` and inherits its whole fault
story (rebuild + requeue, quarantine bisection,
:class:`~repro.service.resilience.PoolBroken` when the rebuild budget is
exhausted).  The remote backends live in :mod:`repro.cluster` — the
service layer never imports the cluster package.

>>> from repro.engine.compiled import compile_spanner
>>> with ThreadBackend() as backend:
...     backend.submit(
...         compile_spanner("x{a}"), [("d0", "a")], kind="matches"
...     ).result()
[('d0', True, None)]
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor

from repro.engine.compiled import CompiledSpanner
from repro.service.evaluate import WorkerPool, evaluate_records

__all__ = ["ExecutorBackend", "ProcessBackend", "ThreadBackend"]

_KINDS = ("mappings", "extract", "matches")


class ExecutorBackend:
    """The abstract executor seam (see the module docstring).

    Concrete backends are duck-typed — anything with this surface works —
    but subclassing documents intent and inherits the context-manager
    plumbing.  ``parallelism`` is the backend's useful concurrency width
    (callers size their in-flight backlog from it).
    """

    name = "abstract"

    @property
    def parallelism(self) -> int:
        return 1

    def submit(
        self,
        engine: CompiledSpanner,
        records,
        *,
        kind: str = "mappings",
        spans: bool = False,
    ) -> Future:
        raise NotImplementedError

    def stats(self, fingerprint: str | None = None) -> dict:
        """Executor-side counters; shape varies per backend."""
        return {"backend": self.name, "workers": 0}

    def revive(self) -> None:
        """Reset a failed backend (no-op where failure cannot happen)."""

    def close(self, wait: bool = True) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_kind(kind: str) -> None:
    if kind not in _KINDS:
        raise ValueError(f"unknown batch kind {kind!r}")


class ThreadBackend(ExecutorBackend):
    """Batches on an in-process thread pool, engines shared across threads.

    The executor is created lazily on first submit, so a ThreadBackend
    held only as a fallback (the worker-pool server's degraded target)
    costs nothing until the day it is needed.
    """

    name = "threads"

    def __init__(self, threads: int | None = None) -> None:
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None to auto-size)")
        self._threads = threads or min(32, (os.cpu_count() or 1) + 4)
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False

    @property
    def parallelism(self) -> int:
        return self._threads

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("cannot submit to a closed ThreadBackend")
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._threads, thread_name_prefix="repro-eval"
            )
        return self._executor

    def submit(
        self,
        engine: CompiledSpanner,
        records,
        *,
        kind: str = "mappings",
        spans: bool = False,
    ) -> Future:
        _check_kind(kind)
        batch = list(records)
        return self._ensure_executor().submit(
            evaluate_records, engine, batch, kind, spans
        )

    def stats(self, fingerprint: str | None = None) -> dict:
        # Counters accrue on the caller's own engine — there is no
        # executor-side engine copy to report on.
        return {"backend": self.name, "workers": 0}

    def close(self, wait: bool = True) -> None:
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait)


class ProcessBackend(ExecutorBackend):
    """Batches on a :class:`~repro.service.evaluate.WorkerPool`.

    Either wraps a caller-owned pool (``pool=...`` — ``close`` leaves it
    alone) or spawns and owns one (``workers=N`` plus the pool's keyword
    arguments).  Submit-time failure semantics are the pool's own:
    worker death rebuilds and requeues, and only
    :class:`~repro.service.resilience.PoolBroken` reaches the caller.
    """

    name = "processes"

    def __init__(
        self,
        workers: int | None = None,
        *,
        pool: WorkerPool | None = None,
        **pool_kwargs,
    ) -> None:
        if (workers is None) == (pool is None):
            raise ValueError("pass exactly one of workers= or pool=")
        if pool is not None and pool_kwargs:
            raise ValueError("pool keyword arguments need workers=")
        self._owned = pool is None
        self.pool = pool if pool is not None else WorkerPool(workers, **pool_kwargs)

    @property
    def parallelism(self) -> int:
        return self.pool.workers

    @property
    def failed(self) -> bool:
        return self.pool.failed

    def submit(
        self,
        engine: CompiledSpanner,
        records,
        *,
        kind: str = "mappings",
        spans: bool = False,
    ) -> Future:
        return self.pool.submit(engine, records, kind=kind, spans=spans)

    def stats(self, fingerprint: str | None = None) -> dict:
        stats = self.pool.stats(fingerprint)
        stats["backend"] = self.name
        return stats

    def revive(self) -> None:
        self.pool.revive()

    def close(self, wait: bool = True) -> None:
        if self._owned:
            self.pool.shutdown(wait=wait)
