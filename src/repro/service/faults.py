"""Deterministic fault injection for the service layer's chaos tests.

The resilience layer (:mod:`repro.service.resilience`) exists to survive
worker death, hung tasks, and broken caches — failure modes that almost
never happen on a developer laptop.  This module makes them happen on
demand, so the chaos suite (``pytest -m chaos``) and the CI smoke lanes
can exercise every recovery path deterministically.

Faults are armed through ``REPRO_FAULTS``, a comma-separated list of
``point:trigger`` entries::

    REPRO_FAULTS=worker_kill:0.1,shm_attach:fail,artifact_load:2

Injection **points** name where the fault fires (each is checked by one
call site in the service layer):

===================  ==========================================================
``worker_boot``      raise in the worker-pool initializer (the pool breaks
                     before its first task)
``worker_kill``      SIGKILL the worker process at task entry (the classic
                     OOM-killer / preemption failure)
``task_error``       raise inside batch execution (a poisoned shard)
``task_slow``        sleep :data:`SLOW_SECONDS` at task entry (a hung worker,
                     for deadline tests)
``shm_attach``       fail the shared-memory attach (falls back to the
                     artifact store, then the pickled automaton)
``artifact_load``    fail the artifact-store load (falls back to the pickled
                     automaton)
``compile``          raise in the server dispatcher's compile path (trips the
                     per-pattern circuit breaker)
===================  ==========================================================

**Triggers** say when an armed point fires:

* ``fail`` — every check fires;
* ``once`` — exactly one check fires;
* an integer ``N`` — the first ``N`` checks fire;
* a float in ``(0, 1)`` — that fraction of checks fires, chosen by a
  deterministic counter hash (same ``REPRO_FAULTS_SEED``, same sequence —
  no wall-clock or global RNG involved).

Counted triggers are per process by default.  Worker processes are
separate processes, and a freshly respawned worker would re-arm its
counter from zero — so chaos runs that must *converge* (kill N times,
then heal) set ``REPRO_FAULTS_STATE`` to a directory and the registry
counts fires in an append-only file shared by every process on the host.

A separate ``REPRO_FAULT_POISON=<token>`` knob marks any document whose
text contains the token as a *poison document*: the worker SIGKILLs
itself when a batch containing one arrives, which is how the chaos suite
drives the worker pool's batch-bisection path down to a single
per-document error record.

>>> registry = FaultRegistry.parse("shm_attach:2")
>>> [registry.should_fire("shm_attach") for _ in range(4)]
[True, True, False, False]
>>> registry.counters()["shm_attach"]
2
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager

__all__ = [
    "ARTIFACT_LOAD",
    "COMPILE",
    "FaultRegistry",
    "InjectedFault",
    "SHM_ATTACH",
    "SLOW_SECONDS",
    "TASK_ERROR",
    "TASK_SLOW",
    "WORKER_BOOT",
    "WORKER_KILL",
    "active",
    "counters",
    "inject",
    "injected",
    "maybe_poison",
    "registry",
    "reload",
]

#: Environment variable arming the registry (``point:trigger,…``).
FAULTS_ENV = "REPRO_FAULTS"
#: Seed for the deterministic probability triggers.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
#: Directory for cross-process fire counting (counted/once triggers).
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"
#: Substring marking poison documents (see :func:`maybe_poison`).
POISON_ENV = "REPRO_FAULT_POISON"

WORKER_BOOT = "worker_boot"
WORKER_KILL = "worker_kill"
TASK_ERROR = "task_error"
TASK_SLOW = "task_slow"
SHM_ATTACH = "shm_attach"
ARTIFACT_LOAD = "artifact_load"
COMPILE = "compile"

#: Points whose effect is killing the current process outright.
_KILL_POINTS = frozenset({WORKER_KILL})
#: Points whose effect is sleeping (deadline tests).
_SLEEP_POINTS = frozenset({TASK_SLOW})

#: How long a fired sleep point sleeps — far past any sane task deadline.
SLOW_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """An error raised by a fired injection point (never in production:
    the registry is inert unless ``REPRO_FAULTS`` is set)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class _Trigger:
    """One armed point's firing rule plus its local counter."""

    __slots__ = ("point", "rate", "budget", "checks", "fired")

    def __init__(self, point: str, rate: float | None, budget: int | None):
        self.point = point
        self.rate = rate        # probability triggers
        self.budget = budget    # counted triggers (None: unbounded)
        self.checks = 0
        self.fired = 0


def _parse_trigger(point: str, text: str) -> _Trigger:
    text = text.strip().lower()
    if text == "fail":
        return _Trigger(point, None, None)
    if text == "once":
        return _Trigger(point, None, 1)
    try:
        count = int(text)
    except ValueError:
        pass
    else:
        if count < 0:
            raise ValueError(f"fault {point!r}: negative count {count}")
        return _Trigger(point, None, count)
    try:
        rate = float(text)
    except ValueError:
        raise ValueError(
            f"fault {point!r}: trigger must be 'fail', 'once', a count, "
            f"or a probability — got {text!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault {point!r}: probability {rate} not in [0, 1]")
    return _Trigger(point, rate, None)


class FaultRegistry:
    """The armed injection points of one process (plus shared state files).

    Thread-safe; every check is O(1) and the registry with no armed
    points short-circuits immediately, so production call sites cost one
    attribute read.
    """

    def __init__(
        self,
        triggers: dict[str, _Trigger] | None = None,
        seed: int = 0,
        state_dir: str | None = None,
    ) -> None:
        self._triggers = triggers or {}
        self._seed = seed
        self._state_dir = state_dir
        self._lock = threading.Lock()

    @classmethod
    def parse(
        cls, text: str | None, seed: int = 0, state_dir: str | None = None
    ) -> "FaultRegistry":
        """A registry from ``point:trigger,…`` text (``None``/empty: inert)."""
        triggers: dict[str, _Trigger] = {}
        for entry in (text or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            point, colon, spec = entry.partition(":")
            point = point.strip()
            if not point or not colon:
                raise ValueError(
                    f"fault entry {entry!r}: expected 'point:trigger'"
                )
            triggers[point] = _parse_trigger(point, spec)
        return cls(triggers, seed=seed, state_dir=state_dir)

    @classmethod
    def from_env(cls, environ=None) -> "FaultRegistry":
        """The registry the environment describes (inert when unset)."""
        environ = os.environ if environ is None else environ
        try:
            seed = int(environ.get(FAULTS_SEED_ENV, "0") or "0")
        except ValueError:
            seed = 0
        return cls.parse(
            environ.get(FAULTS_ENV),
            seed=seed,
            state_dir=environ.get(FAULTS_STATE_ENV) or None,
        )

    @property
    def active(self) -> bool:
        return bool(self._triggers)

    # -- firing decisions --------------------------------------------------

    def _shared_count(self, point: str) -> int:
        """Record one check in the host-wide state file; returns its index.

        The file grows by one byte per check (``O_APPEND`` writes are
        atomic at this size), so its length *is* the cross-process check
        counter — no locking protocol between processes needed.
        """
        path = os.path.join(self._state_dir, f"{point}.fired")
        descriptor = os.open(
            path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(descriptor, b".")
            return os.fstat(descriptor).st_size - 1
        finally:
            os.close(descriptor)

    def should_fire(self, point: str) -> bool:
        """Check (and count) one pass over an injection point."""
        trigger = self._triggers.get(point)
        if trigger is None:
            return False
        with self._lock:
            index = trigger.checks
            trigger.checks += 1
        if trigger.budget is not None and self._state_dir:
            try:
                index = self._shared_count(point)
            except OSError:
                pass  # state dir unusable: per-process counting
        if trigger.budget is not None:
            fire = index < trigger.budget
        elif trigger.rate is not None:
            digest = hashlib.sha256(
                f"{self._seed}:{point}:{index}".encode()
            ).digest()
            fire = int.from_bytes(digest[:4], "big") / 2**32 < trigger.rate
        else:
            fire = True
        if fire:
            with self._lock:
                trigger.fired += 1
        return fire

    def inject(self, point: str) -> None:
        """Fire ``point``'s effect if its trigger says so.

        Kill points SIGKILL the current process, sleep points block for
        :data:`SLOW_SECONDS`, everything else raises
        :class:`InjectedFault`.  A miss (or an unarmed point) returns
        immediately.
        """
        if not self._triggers or not self.should_fire(point):
            return
        if point in _KILL_POINTS:
            os.kill(os.getpid(), signal.SIGKILL)
        if point in _SLEEP_POINTS:
            time.sleep(SLOW_SECONDS)
            return
        raise InjectedFault(point)

    def counters(self) -> dict[str, int]:
        """Fired count per armed point (this process's view)."""
        with self._lock:
            return {
                point: trigger.fired
                for point, trigger in self._triggers.items()
            }


# -- the process-wide registry ------------------------------------------------

_REGISTRY: FaultRegistry | None = None
_REGISTRY_LOCK = threading.Lock()


def registry() -> FaultRegistry:
    """The process-wide registry, lazily parsed from the environment."""
    global _REGISTRY
    if _REGISTRY is None:
        with _REGISTRY_LOCK:
            if _REGISTRY is None:
                _REGISTRY = FaultRegistry.from_env()
    return _REGISTRY


def reload() -> FaultRegistry:
    """Re-read the environment (worker initializers call this: a spawned
    worker must honour faults armed after the parent first imported us)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = FaultRegistry.from_env()
    return _REGISTRY


def active() -> bool:
    return registry().active


def inject(point: str) -> None:
    """Module-level :meth:`FaultRegistry.inject` on the process registry."""
    reg = _REGISTRY
    if reg is None:
        reg = registry()
    if reg.active:
        reg.inject(point)


def counters() -> dict[str, int]:
    return registry().counters()


@contextmanager
def injected(point: str, trigger: str, state_dir: str | None = None):
    """Arm one fault for the duration of a ``with`` block (programmatic API).

    Mutates ``REPRO_FAULTS`` in :data:`os.environ` — deliberately, so
    worker processes started inside the block inherit the fault — and
    restores the previous value (and re-parses) on exit.

    >>> with injected("compile", "once"):
    ...     try:
    ...         inject("compile")
    ...     except InjectedFault as fault:
    ...         print("fired:", fault.point)
    ...     inject("compile")  # budget spent: a no-op
    fired: compile
    >>> inject("compile")      # disarmed outside the block
    """
    saved = {
        FAULTS_ENV: os.environ.get(FAULTS_ENV),
        FAULTS_STATE_ENV: os.environ.get(FAULTS_STATE_ENV),
    }
    entries = [
        entry
        for entry in (saved[FAULTS_ENV] or "").split(",")
        if entry.strip() and not entry.strip().startswith(f"{point}:")
    ]
    entries.append(f"{point}:{trigger}")
    os.environ[FAULTS_ENV] = ",".join(entries)
    if state_dir is not None:
        os.environ[FAULTS_STATE_ENV] = state_dir
    reload()
    try:
        yield registry()
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reload()


# -- poison documents ---------------------------------------------------------


def poison_token() -> str | None:
    """The poison-document token, or ``None`` when the knob is unset."""
    return os.environ.get(POISON_ENV) or None


def maybe_poison(records) -> None:
    """SIGKILL the current process when a batch carries a poison document.

    Called by the worker-side batch entry point: a batch containing a
    document whose text includes ``REPRO_FAULT_POISON`` kills the worker
    outright, every time — the deterministic stand-in for a document
    that reliably OOMs or segfaults a worker.  The pool's bisection then
    narrows the blast radius to exactly that document.
    """
    token = poison_token()
    if not token:
        return
    for _, text in records:
        if isinstance(text, str) and token in text:
            os.kill(os.getpid(), signal.SIGKILL)
