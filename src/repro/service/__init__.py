"""The corpus evaluation service (one spanner, many documents).

The layer above :mod:`repro.engine` on the production roadmap: document
*corpora* with stable ids (:mod:`repro.service.corpus`), structural
memoisation of compiled spanners (:mod:`repro.service.cache`), and
sharded, error-isolated corpus evaluation with a worker pool
(:mod:`repro.service.evaluate`).

>>> from repro.service import evaluate_corpus
>>> [r.doc_id for r in evaluate_corpus("x{a}", ["a", "b"]) if r.mappings]
['doc-00000']
"""

import warnings as _warnings

from repro.service.backend import (
    ExecutorBackend,
    ProcessBackend,
    ThreadBackend,
)
from repro.service.cache import (
    DEFAULT_CACHE,
    SpannerCache,
    va_fingerprint,
)
from repro.service.corpus import (
    Corpus,
    CorpusRecord,
    DirectoryCorpus,
    GeneratorCorpus,
    InMemoryCorpus,
    as_corpus,
)
from repro.service.evaluate import (
    CorpusResult,
    WorkerPool,
    corpus_outputs,
    evaluate_corpus,
    extract_corpus,
)
from repro.service.queryset import QuerySet, QuerySetResult
from repro.service.resilience import (
    BreakerOpen,
    CircuitBreaker,
    PoolBroken,
    RetryPolicy,
)
from repro.service.shm_store import ShmStore, shm_available
from repro.util.errors import CorpusError

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "Corpus",
    "CorpusError",
    "CorpusRecord",
    "CorpusResult",
    "DEFAULT_CACHE",
    "DirectoryCorpus",
    "ExecutorBackend",
    "GeneratorCorpus",
    "InMemoryCorpus",
    "PoolBroken",
    "ProcessBackend",
    "ThreadBackend",
    "QuerySet",
    "QuerySetResult",
    "RetryPolicy",
    "ShmStore",
    "SpannerCache",
    "WorkerPool",
    "as_corpus",
    "shm_available",
    "cached_spanner",
    "corpus_outputs",
    "evaluate_corpus",
    "extract_corpus",
    "va_fingerprint",
]


def __getattr__(name: str):
    if name == "cached_spanner":
        _warnings.warn(
            "repro.service.cached_spanner is deprecated; "
            "use repro.api.compile instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.service.cache import cached_spanner

        globals()[name] = cached_spanner  # warn exactly once per process
        return cached_spanner
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
