"""The corpus evaluation service (one spanner, many documents).

The layer above :mod:`repro.engine` on the production roadmap: document
*corpora* with stable ids (:mod:`repro.service.corpus`), structural
memoisation of compiled spanners (:mod:`repro.service.cache`), and
sharded, error-isolated corpus evaluation with a worker pool
(:mod:`repro.service.evaluate`).

>>> from repro.service import evaluate_corpus
>>> [r.doc_id for r in evaluate_corpus("x{a}", ["a", "b"]) if r.mappings]
['doc-00000']
"""

from repro.service.cache import (
    DEFAULT_CACHE,
    SpannerCache,
    cached_spanner,
    va_fingerprint,
)
from repro.service.corpus import (
    Corpus,
    CorpusRecord,
    DirectoryCorpus,
    GeneratorCorpus,
    InMemoryCorpus,
    as_corpus,
)
from repro.service.evaluate import (
    CorpusResult,
    WorkerPool,
    corpus_outputs,
    evaluate_corpus,
    extract_corpus,
)
from repro.util.errors import CorpusError

__all__ = [
    "Corpus",
    "CorpusError",
    "CorpusRecord",
    "CorpusResult",
    "DEFAULT_CACHE",
    "DirectoryCorpus",
    "GeneratorCorpus",
    "InMemoryCorpus",
    "SpannerCache",
    "WorkerPool",
    "as_corpus",
    "cached_spanner",
    "corpus_outputs",
    "evaluate_corpus",
    "extract_corpus",
    "va_fingerprint",
]
