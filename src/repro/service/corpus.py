"""Document sources for corpus-scale evaluation (the service layer's input).

A *corpus* is an ordered collection of ``(doc_id, text)`` pairs.  Document
ids are plain strings, unique within one corpus, and stable across
iterations — they are what result attribution, sharding, and the ordered
streaming mode of :func:`repro.service.evaluate.evaluate_corpus` key on.

Three concrete sources cover the serving patterns:

* :class:`InMemoryCorpus` — documents already in memory (a dict, a list of
  texts, or explicit ``(id, text)`` pairs); duplicate ids are rejected at
  construction;
* :class:`DirectoryCorpus` — one document per file under a directory,
  selected by a glob pattern, with the POSIX relative path as the id;
* :class:`GeneratorCorpus` — a lazily produced stream (a callable
  returning an iterable), for corpora too large to materialise.

:func:`as_corpus` coerces plain Python values (dicts, lists, iterables)
into a corpus, so every service entry point accepts both.

>>> corpus = InMemoryCorpus(["aa", "ab"])
>>> list(corpus)
[('doc-00000', 'aa'), ('doc-00001', 'ab')]
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from pathlib import Path

from repro.spans.document import Document, as_text
from repro.util.errors import CorpusError

#: One corpus entry: a stable document id paired with the document text.
CorpusRecord = tuple[str, str]


class Corpus:
    """Base class: an iterable of ``(doc_id, text)`` records.

    Subclasses implement :meth:`__iter__`; ids must be unique and the
    iteration order stable (it defines the ordered-mode output order).
    """

    def __iter__(self) -> Iterator[CorpusRecord]:
        raise NotImplementedError

    def doc_ids(self) -> list[str]:
        """All document ids, in corpus order."""
        return [doc_id for doc_id, _ in self]

    def __len__(self) -> int:
        return sum(1 for _ in self)


def _generated_id(position: int) -> str:
    return f"doc-{position:05d}"


class InMemoryCorpus(Corpus):
    """Documents held in memory, with stable generated or explicit ids.

    Accepts a mapping ``{doc_id: text}``, an iterable of texts (ids are
    generated as ``doc-00000``, ``doc-00001``, …), or an iterable of
    ``(doc_id, text)`` pairs.  :class:`~repro.spans.document.Document`
    instances are accepted wherever a text is.

    >>> InMemoryCorpus({"a.txt": "aa"}).doc_ids()
    ['a.txt']
    >>> InMemoryCorpus([("left", "aa"), ("right", "ab")]).doc_ids()
    ['left', 'right']
    >>> InMemoryCorpus([("dup", "aa"), ("dup", "ab")])
    Traceback (most recent call last):
        ...
    repro.util.errors.CorpusError: duplicate document id 'dup'
    """

    def __init__(
        self,
        documents: "Mapping[str, Document | str] | Iterable",
    ) -> None:
        records: list[CorpusRecord] = []
        seen: set[str] = set()
        if isinstance(documents, Mapping):
            pairs: Iterable = documents.items()
        else:
            pairs = (
                item
                if isinstance(item, tuple)
                else (_generated_id(position), item)
                for position, item in enumerate(documents)
            )
        for doc_id, text in pairs:
            doc_id = str(doc_id)
            if doc_id in seen:
                raise CorpusError(f"duplicate document id {doc_id!r}")
            seen.add(doc_id)
            records.append((doc_id, as_text(text)))
        self._records = tuple(records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"InMemoryCorpus({len(self._records)} documents)"


class DirectoryCorpus(Corpus):
    """One document per file under ``root`` matching ``pattern``.

    Ids are POSIX-style paths relative to ``root``, sorted for a stable
    order; file contents are read lazily (UTF-8) during iteration, so a
    huge directory costs nothing until evaluated.  An unreadable or
    non-UTF-8 file raises :class:`~repro.util.errors.CorpusError` naming
    the offending document.

    >>> import tempfile, pathlib
    >>> root = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (root / "a.txt").write_text("aa")
    >>> _ = (root / "b.log").write_text("ab")
    >>> DirectoryCorpus(root, "*.txt").doc_ids()
    ['a.txt']
    """

    def __init__(self, root: "Path | str", pattern: str = "**/*") -> None:
        self._root = Path(root)
        if not self._root.is_dir():
            raise CorpusError(f"corpus root {str(self._root)!r} is not a directory")
        self._pattern = pattern

    @property
    def root(self) -> Path:
        return self._root

    def paths(self) -> list[Path]:
        """The matching files, sorted by relative path."""
        return sorted(
            (path for path in self._root.glob(self._pattern) if path.is_file()),
            key=lambda path: path.relative_to(self._root).as_posix(),
        )

    def __iter__(self) -> Iterator[CorpusRecord]:
        for path in self.paths():
            doc_id = path.relative_to(self._root).as_posix()
            try:
                yield doc_id, path.read_text(encoding="utf-8")
            except UnicodeDecodeError as error:
                raise CorpusError(
                    f"{doc_id!r} is not valid UTF-8: {error}"
                ) from error
            except OSError as error:
                raise CorpusError(f"cannot read {doc_id!r}: {error}") from error

    def __len__(self) -> int:
        return len(self.paths())

    def __repr__(self) -> str:
        return f"DirectoryCorpus({str(self._root)!r}, pattern={self._pattern!r})"


class GeneratorCorpus(Corpus):
    """A lazily produced document stream.

    ``factory`` is a callable returning an iterable of texts or
    ``(doc_id, text)`` pairs — a callable (rather than a bare iterator) so
    the corpus can be iterated more than once.  Ids are generated by
    position when the factory yields bare texts.  Duplicate ids surface
    during evaluation (the stream is never materialised here).

    >>> corpus = GeneratorCorpus(lambda: (f"a{'b' * n}" for n in range(3)))
    >>> corpus.doc_ids()
    ['doc-00000', 'doc-00001', 'doc-00002']
    >>> len(corpus.doc_ids()) == len(corpus.doc_ids())  # re-iterable
    True
    """

    def __init__(self, factory: Callable[[], Iterable]) -> None:
        if not callable(factory):
            raise CorpusError(
                "GeneratorCorpus takes a callable returning an iterable "
                "(a bare iterator would be exhausted after one pass)"
            )
        self._factory = factory

    def __iter__(self) -> Iterator[CorpusRecord]:
        for position, item in enumerate(self._factory()):
            if isinstance(item, tuple):
                doc_id, text = item
                yield str(doc_id), as_text(text)
            else:
                yield _generated_id(position), as_text(item)

    def __repr__(self) -> str:
        return f"GeneratorCorpus({self._factory!r})"


def as_corpus(source) -> Corpus:
    """Coerce a plain Python value into a :class:`Corpus`.

    Accepts an existing corpus (returned unchanged), a mapping
    ``{doc_id: text}``, an iterable of texts or ``(id, text)`` pairs, a
    callable producing either (wrapped lazily), or a single document —
    a bare string or :class:`~repro.spans.document.Document` becomes a
    one-document corpus (it is *not* iterated character-by-character).

    >>> as_corpus({"d1": "aa"}).doc_ids()
    ['d1']
    >>> as_corpus(["aa", "ab"]).doc_ids()
    ['doc-00000', 'doc-00001']
    >>> as_corpus("banana").doc_ids()
    ['doc-00000']
    """
    if isinstance(source, Corpus):
        return source
    if isinstance(source, (str, Document)):
        return InMemoryCorpus([as_text(source)])
    if callable(source):
        return GeneratorCorpus(source)
    if isinstance(source, (Mapping, Iterable)):
        return InMemoryCorpus(source)
    raise CorpusError(f"cannot build a corpus from {type(source).__name__}")
