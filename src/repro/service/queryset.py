"""The query-set compiler: many named queries, one engine per document.

The multi-tenant serving scenario the ROADMAP names: many users each
register their own extraction query, and every incoming document should
be scanned *once*, not once per query.  A :class:`QuerySet` gets there in
three steps:

1. **resolve + peel** — registered expressions (:mod:`repro.algebra`)
   are resolved against their sibling queries (``Ref`` leaves), and
   top-level projections are peeled off: ``π_x(Q)`` and ``π_y(Q)`` share
   the unprojected *core* ``Q``, with the projection applied per query at
   the decode edge (``π_A(π_B(e))`` folds to ``π_{A∩B}(e)``).
2. **fingerprint + factor** — every distinct core is planned through the
   pass pipeline and deduplicated by
   :attr:`~repro.plan.Plan.fingerprint`: syntactically different queries
   that plan to the same automaton share one core.
3. **tag + combine** — each distinct core is prefixed with a private tag
   variable (``__q0``, ``__q1``, …: opened and immediately closed before
   the first character, so every output mapping carries its branch tag as
   a trivial span) and the tagged cores are unioned into **one** combined
   automaton, compiled into **one**
   :class:`~repro.engine.compiled.CompiledSpanner`.  One evaluation —
   one :class:`~repro.engine.tables.DocumentIndex`, one kernel, one sweep
   — answers every registered query; the decode edge groups mappings by
   tag, drops the tag, applies each query's edge projection, and decodes
   byte-identically to
   :meth:`~repro.engine.compiled.CompiledSpanner.extract`.

The tag variables start with an underscore so they sort before ordinary
variable names: Algorithm 2 assigns them *first*, which pins the branch
at the top of the enumeration tree and keeps per-branch work separate.

>>> queries = QuerySet()
>>> _ = queries.register("sellers", ".*Seller: x{[^,]*},.*")
>>> _ = queries.register("first", {"op": "project", "of": {"op": "ref",
...                                "name": "sellers"}, "keep": []})
>>> result = queries.extract("Seller: John, ID75")
>>> result["sellers"], result["first"]
([{'x': 'John'}], [{}])
>>> queries.stats()["queries"], queries.stats()["cores"]
(2, 1)
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from dataclasses import dataclass

from repro.algebra import Atom, QueryExpr, peel_projections, query
from repro.automata.labels import Close, Open
from repro.automata.va import VA
from repro.engine.compiled import CompiledSpanner
from repro.plan import plan as build_plan
from repro.service.corpus import as_corpus
from repro.spans.document import Document, as_text
from repro.spans.mapping import Mapping
from repro.util.errors import SpannerError

__all__ = ["QuerySet", "QuerySetResult"]


@dataclass(frozen=True)
class QuerySetResult:
    """One document's outcome: decoded results per query name, or an error."""

    doc_id: str
    queries: dict[str, list[dict]] | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error is not None:
            return f"QuerySetResult({self.doc_id!r}, error={self.error!r})"
        return f"QuerySetResult({self.doc_id!r}, {len(self.queries)} queries)"


@dataclass(frozen=True)
class _Query:
    """One registered query after compilation: its core plus edge projection."""

    name: str
    expression: QueryExpr
    core_fingerprint: str
    keep: frozenset | None  # None: no edge projection


@dataclass(frozen=True)
class _Core:
    """One distinct planned core shared by one or more queries."""

    fingerprint: str
    tag: str
    states: int


def _decode_mappings(
    mappings: "set[Mapping] | frozenset[Mapping]", text: str, spans: bool
) -> list[dict]:
    """Decode a mapping set exactly like ``CompiledSpanner.extract``."""
    results: list[dict] = []
    for mapping in sorted(
        mappings, key=lambda m: sorted((v, s) for v, s in m.items())
    ):
        if spans:
            results.append(dict(mapping.items()))
        else:
            results.append({v: s.content(text) for v, s in mapping.items()})
    return results


class _CompiledQuerySet:
    """An immutable compiled snapshot of a query set at one version.

    Holds the combined engine plus everything the decode edge needs; the
    owning :class:`QuerySet` swaps whole snapshots on re-registration, so
    in-flight evaluations keep decoding against the snapshot they were
    submitted under.
    """

    def __init__(
        self,
        version: int,
        queries: dict[str, _Query],
        cores: dict[str, _Core],
        engine: CompiledSpanner,
    ) -> None:
        self.version = version
        self.queries = queries
        self.cores = cores
        self.engine = engine
        self._tags = {core.tag: fingerprint for fingerprint, core in cores.items()}

    def names(self) -> list[str]:
        return list(self.queries)

    def split(
        self, mappings: "set[Mapping] | frozenset[Mapping]"
    ) -> dict[str, set[Mapping]]:
        """Group a combined output set into per-core sets, tags dropped."""
        by_core: dict[str, set[Mapping]] = {
            fingerprint: set() for fingerprint in self.cores
        }
        for mapping in mappings:
            for variable in mapping.domain:
                fingerprint = self._tags.get(variable)
                if fingerprint is not None:
                    by_core[fingerprint].add(mapping.drop((variable,)))
                    break
        return by_core

    def decode(
        self,
        mappings: "set[Mapping] | frozenset[Mapping]",
        text: str,
        names: "list[str] | None" = None,
        spans: bool = False,
    ) -> dict[str, list[dict]]:
        """Per-query decoded results from one combined output set.

        Byte-identical to evaluating each query on its own engine and
        calling :meth:`~repro.engine.compiled.CompiledSpanner.extract`.
        """
        selected = self.names() if names is None else list(names)
        by_core = self.split(mappings)
        results: dict[str, list[dict]] = {}
        for name in selected:
            registered = self.queries.get(name)
            if registered is None:
                raise SpannerError(
                    f"unknown query {name!r} "
                    f"(registered: {self.names() or 'none'})"
                )
            core_set = by_core[registered.core_fingerprint]
            if registered.keep is not None:
                keep = registered.keep
                final = {mapping.project(keep) for mapping in core_set}
            else:
                final = core_set
            results[name] = _decode_mappings(final, text, spans)
        return results


def _parse_string_atoms(expression: QueryExpr) -> None:
    if isinstance(expression, Atom) and isinstance(expression.source, str):
        from repro.rgx.parser import parse

        parse(expression.source)  # ParseError is a SpannerError
    for child in expression.children():
        _parse_string_atoms(child)


class QuerySet:
    """A registry of named algebra queries compiled into one shared engine.

    ``register`` accepts everything :func:`repro.algebra.query` accepts —
    RGX text, JSON wire specs, :class:`~repro.algebra.QueryExpr`
    combinators, rules, automata — plus ``Ref`` leaves naming sibling
    queries.  Compilation is lazy and cached per registry version;
    evaluation answers every (or a selected subset of) registered query
    from one engine pass per document.
    """

    def __init__(self, *, opt_level: int | None = None, cache=None) -> None:
        self.opt_level = opt_level
        #: Optional :class:`~repro.service.cache.SpannerCache` the combined
        #: engine is resolved through (the server shares its dispatcher
        #: cache here, so /query and /evaluate draw from one bounded pool).
        self.cache = cache
        self._lock = threading.RLock()
        self._registry: dict[str, QueryExpr] = {}
        self._version = 0
        self._compiled: _CompiledQuerySet | None = None

    # -- registration -----------------------------------------------------------

    def register(self, name: str, source) -> QueryExpr:
        """Register (or replace) one named query; returns its expression.

        Malformed RGX atoms raise here, at registration — a bad pattern
        must not poison every later evaluation of the whole set.
        """
        if not isinstance(name, str) or not name:
            raise SpannerError("query name must be a non-empty string")
        expression = query(source)
        _parse_string_atoms(expression)
        with self._lock:
            self._registry[name] = expression
            self._version += 1
            self._compiled = None
        return expression

    def names(self) -> list[str]:
        with self._lock:
            return list(self._registry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._registry)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._registry

    @property
    def version(self) -> int:
        """Bumped on every registration — the coalescing/compile cache key."""
        with self._lock:
            return self._version

    # -- compilation ------------------------------------------------------------

    def compile(self) -> _CompiledQuerySet:
        """The compiled snapshot for the current registry (cached).

        Planning and engine compilation happen outside the lock; a lost
        race compiles twice and keeps the first, like the spanner cache.
        """
        with self._lock:
            compiled = self._compiled
            version = self._version
            registry = dict(self._registry)
        if compiled is not None and compiled.version == version:
            return compiled
        built = self._build(version, registry)
        with self._lock:
            if self._compiled is not None and self._compiled.version == version:
                return self._compiled
            if self._version == version:
                self._compiled = built
        return built

    @property
    def engine(self) -> CompiledSpanner:
        """The one combined engine answering every registered query."""
        return self.compile().engine

    def _build(
        self, version: int, registry: dict[str, QueryExpr]
    ) -> _CompiledQuerySet:
        if not registry:
            raise SpannerError("query set is empty; register a query first")
        plans: dict[QueryExpr, object] = {}  # core expression -> Plan
        cores: dict[str, _Core] = {}
        core_automata: dict[str, VA] = {}
        queries: dict[str, _Query] = {}
        for name, expression in registry.items():
            resolved = expression.resolve(registry)
            core, keep = peel_projections(resolved)
            core_plan = plans.get(core)
            if core_plan is None:
                core_plan = build_plan(core, opt_level=self.opt_level)
                plans[core] = core_plan
            fingerprint = core_plan.fingerprint
            if fingerprint not in cores:
                cores[fingerprint] = _Core(
                    fingerprint=fingerprint,
                    tag="",  # assigned below, once all cores are known
                    states=core_plan.automaton.num_states,
                )
                core_automata[fingerprint] = core_plan.automaton
            queries[name] = _Query(
                name=name,
                expression=resolved,
                core_fingerprint=fingerprint,
                keep=keep,
            )
        cores = self._assign_tags(cores, core_automata)
        combined = self._combine(cores, core_automata)
        combined_plan = build_plan(combined, opt_level=self.opt_level)
        if self.cache is not None:
            engine = self.cache.get(combined_plan)
        else:
            engine = CompiledSpanner(plan=combined_plan)
        return _CompiledQuerySet(version, queries, cores, engine)

    @staticmethod
    def _assign_tags(
        cores: dict[str, _Core], core_automata: dict[str, VA]
    ) -> dict[str, _Core]:
        taken: set = set()
        for automaton in core_automata.values():
            taken |= automaton.mentioned_variables
        prefix = "__q"
        # A user variable could legitimately be called "__q0"; escalate
        # the prefix until the whole tag family is collision-free.
        while any(f"{prefix}{i}" in taken for i in range(len(cores))):
            prefix = "_" + prefix
        return {
            fingerprint: _Core(
                fingerprint=fingerprint,
                tag=f"{prefix}{position}",
                states=core.states,
            )
            for position, (fingerprint, core) in enumerate(cores.items())
        }

    @staticmethod
    def _combine(
        cores: dict[str, _Core], core_automata: dict[str, VA]
    ) -> VA:
        from repro.automata.algebra import union_va

        pieces = []
        for fingerprint, core in cores.items():
            automaton = core_automata[fingerprint]
            # Two fresh prefix states open and immediately close the tag
            # before the first character: every output mapping of this
            # branch carries ``tag ↦ [1,1⟩`` and nothing else changes.
            shifted = automaton.renumbered(2)
            transitions = (
                (0, Open(core.tag), 1),
                (1, Close(core.tag), shifted.initial),
                *shifted.transitions,
            )
            pieces.append(
                VA(shifted.num_states, 0, shifted.final, transitions)
            )
        combined = pieces[0]
        for piece in pieces[1:]:
            combined = union_va(combined, piece)
        return combined.trimmed()

    # -- evaluation -------------------------------------------------------------

    def mappings_by_query(
        self, document: "Document | str", names: "list[str] | None" = None
    ) -> dict[str, set[Mapping]]:
        """Raw per-query mapping sets from one engine pass."""
        compiled = self.compile()
        text = as_text(document)
        by_core = compiled.split(compiled.engine.mappings(text))
        selected = compiled.names() if names is None else list(names)
        results: dict[str, set[Mapping]] = {}
        for name in selected:
            registered = compiled.queries.get(name)
            if registered is None:
                raise SpannerError(f"unknown query {name!r}")
            core_set = by_core[registered.core_fingerprint]
            if registered.keep is not None:
                keep = registered.keep
                results[name] = {m.project(keep) for m in core_set}
            else:
                results[name] = set(core_set)
        return results

    def extract(
        self,
        document: "Document | str",
        names: "list[str] | None" = None,
        spans: bool = False,
    ) -> dict[str, list[dict]]:
        """Decoded per-query results from one engine pass over the document."""
        compiled = self.compile()
        text = as_text(document)
        return compiled.decode(
            compiled.engine.mappings(text), text, names, spans
        )

    def evaluate_corpus(
        self,
        corpus,
        *,
        names: "list[str] | None" = None,
        workers: int = 1,
        ordered: bool = True,
        batch_size: int | None = None,
        spans: bool = False,
        on_worker_stats=None,
    ) -> Iterator[QuerySetResult]:
        """Every registered query over every document, one engine pass each.

        Mirrors :func:`repro.service.evaluate.evaluate_corpus` (sharding,
        ordering, per-document error isolation) with per-query decoded
        results.  ``batch_size`` is the per-worker chunk size.
        """
        from repro.service.evaluate import evaluate_corpus as _evaluate

        compiled = self.compile()
        if names is not None:  # validate before the first document
            for name in names:
                if name not in compiled.queries:
                    raise SpannerError(f"unknown query {name!r}")
        texts: dict[str, str] = {}
        source = as_corpus(corpus)

        def feed():
            for doc_id, text in source:
                texts[doc_id] = text
                yield doc_id, text

        def stream() -> Iterator[QuerySetResult]:
            results = _evaluate(
                compiled.engine,
                feed,
                workers=workers,
                ordered=ordered,
                chunk_size=batch_size,
                on_worker_stats=on_worker_stats,
            )
            for result in results:
                text = texts.pop(result.doc_id, "")
                if not result.ok:
                    yield QuerySetResult(result.doc_id, None, result.error)
                    continue
                yield QuerySetResult(
                    result.doc_id,
                    compiled.decode(result.mappings, text, names, spans),
                    None,
                )

        return stream()

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Sharing counters: queries vs distinct compiled cores."""
        compiled = self.compile()
        return {
            "queries": len(compiled.queries),
            "cores": len(compiled.cores),
            "version": compiled.version,
            "engine_states": compiled.engine.automaton.num_states,
            "fingerprint": compiled.engine.fingerprint,
        }

    def explain(self) -> str:
        """A human-readable sharing report (the CLI's ``query --explain``)."""
        compiled = self.compile()
        by_core: dict[str, list[str]] = {
            fingerprint: [] for fingerprint in compiled.cores
        }
        for name, registered in compiled.queries.items():
            by_core[registered.core_fingerprint].append(name)
        count = len(compiled.queries)
        lines = [
            f"query set: {count} quer{'y' if count == 1 else 'ies'}, "
            f"{len(compiled.cores)} distinct core(s)"
        ]
        for fingerprint, core in compiled.cores.items():
            members = ", ".join(by_core[fingerprint])
            lines.append(
                f"  core [{core.tag}] {fingerprint[:12]} "
                f"({core.states} states): {members}"
            )
        automaton = compiled.engine.automaton
        lines.append(
            f"  combined engine: {automaton.num_states} states, "
            f"{len(automaton.transitions)} transitions, "
            f"fingerprint {compiled.engine.fingerprint[:12]}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"QuerySet({len(self._registry)} queries, "
                f"version {self._version})"
            )
