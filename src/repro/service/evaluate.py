"""Corpus evaluation: one spanner over many documents, optionally parallel.

:func:`evaluate_corpus` is the service layer's main entry point.  It
compiles the spanner once (through the process-wide
:class:`~repro.service.cache.SpannerCache`), shards the corpus into chunks,
and evaluates them either serially or across a :class:`WorkerPool` — each
worker process compiles its own engine once from the pickled automaton
(memoised by fingerprint, so one pool can serve many spanners) and keeps
it for every chunk it receives, so the per-document cost matches the
serial batch path and the dominant overhead is shipping documents and
results (the automaton rides along as a once-pickled blob that warm
workers never even unpickle).  Keeping the
engine also keeps its bitmask kernel (:mod:`repro.engine.kernel`): the
lazy-DFA ``delta`` memo and alphabet classes warm up on the first
documents and are shared across the worker's whole batch, which is where
the kernel's corpus-throughput win (benchmark E22) comes from.

Results stream back as :class:`CorpusResult` records:

* **ordered mode** (default) — results arrive in corpus order, byte-for-byte
  identical across worker counts (the contract benchmark E20 checks);
* **as-completed mode** (``ordered=False``) — results arrive as shards
  finish, minimising latency to first result on skewed corpora.

Failures are isolated per document: an evaluation error (or a poisoned
chunk) produces a :class:`CorpusResult` with ``error`` set and never
aborts the run, so one bad document in a million-document corpus costs
exactly one error record.

>>> results = list(extract_corpus(".*x{a+}.*", ["ba", "aa"]))
>>> [(r.doc_id, sorted(record["x"] for record in r.mappings))
...  for r in results]
[('doc-00000', ['a']), ('doc-00001', ['a', 'a', 'aa'])]
"""

from __future__ import annotations

import itertools
import logging
import os
import pickle
import signal
import threading
import time
import weakref
from collections import OrderedDict, deque
from collections.abc import Iterator, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait,
)
from dataclasses import dataclass

from repro.engine.compiled import CompiledSpanner
from repro.service import faults
from repro.service.cache import cached_spanner
from repro.service.corpus import Corpus, CorpusRecord, as_corpus
from repro.service.resilience import PoolBroken, RetryPolicy, task_timeout_from_env
from repro.spans.mapping import Mapping
from repro.util.errors import CorpusError

_LOGGER = logging.getLogger("repro.service")

#: Documents shipped to a worker per task.  Small enough to keep all
#: workers busy on modest corpora, large enough to amortise IPC.
DEFAULT_CHUNK_SIZE = 8

#: Chunks in flight per worker; bounds memory on unbounded corpora.
_BACKLOG_PER_WORKER = 2

#: Consecutive executor rebuilds (no successful batch in between) a pool
#: tolerates before declaring itself failed (:class:`PoolBroken`).
DEFAULT_MAX_REBUILDS = 5


@dataclass(frozen=True)
class CorpusResult:
    """The outcome of evaluating one document of a corpus.

    Exactly one of ``mappings`` / ``error`` is set: ``mappings`` is the
    document's output set ``⟦A⟧_d`` (or decoded dictionaries when produced
    by :func:`extract_corpus`), ``error`` a one-line description of why the
    document could not be evaluated.
    """

    doc_id: str
    mappings: "frozenset[Mapping] | tuple | None"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error is not None:
            return f"CorpusResult({self.doc_id!r}, error={self.error!r})"
        return f"CorpusResult({self.doc_id!r}, {len(self.mappings)} mappings)"


# -- worker-process state ---------------------------------------------------
#
# Each worker keeps a bounded table of compiled engines keyed by automaton
# fingerprint.  The first batch for a spanner compiles it (from the pickled
# VA shipped with the batch); every later batch for the same fingerprint —
# whether from the same corpus run or, under the online server, from a
# completely different request — reuses the warm engine, so document
# indexes, Eval verdicts, and the kernel's lazy-DFA memo accumulate in the
# worker exactly as they do serially.

#: Distinct engines a worker keeps warm (LRU); the online server can route
#: many patterns through one pool.
_WORKER_ENGINE_LIMIT = 32

_WORKER_ENGINES: "OrderedDict[str, CompiledSpanner]" = OrderedDict()

#: The worker's artifact store; ``False`` until first resolved from the
#: environment (``None`` when no directory is configured).
_WORKER_ARTIFACTS: object = False


def _worker_init(artifact_dir: "str | None") -> None:
    """Process-pool initializer: point workers at the parent's artifact dir."""
    if artifact_dir:
        from repro.service.artifact_store import ARTIFACT_DIR_ENV

        os.environ[ARTIFACT_DIR_ENV] = artifact_dir
    # Fork-started workers inherit the parent's counter state; their
    # snapshots must report only their own attaches.
    from repro.service.shm_store import reset_worker_counters

    reset_worker_counters()
    # Spawn-started workers parse the fault environment themselves;
    # fork-started ones re-parse so faults armed after the parent first
    # imported the registry still take effect.
    faults.reload()
    faults.inject(faults.WORKER_BOOT)


def _worker_artifacts():
    global _WORKER_ARTIFACTS
    if _WORKER_ARTIFACTS is False:
        from repro.service.artifact_store import store_from_env

        _WORKER_ARTIFACTS = store_from_env()
    return _WORKER_ARTIFACTS


def _worker_engine(
    fingerprint: str, automaton_blob: bytes, segment=None
) -> CompiledSpanner:
    engine = _WORKER_ENGINES.get(fingerprint)
    if engine is None:
        if len(_WORKER_ENGINES) >= _WORKER_ENGINE_LIMIT:
            _WORKER_ENGINES.popitem(last=False)
        if segment is not None:
            # Cheapest first: rebuild from the segment the coordinating
            # process published — shared pages, zero-copy mask views.
            from repro.service import shm_store

            engine = shm_store.attach_engine(segment, fingerprint)
            if engine is None:
                shm_store.count_fallback()
        if engine is None:
            store = _worker_artifacts()
            if store is not None:
                # Warm-load the finished engine — tables, kernel masks and
                # all — from the artifact the coordinating process saved,
                # instead of re-deriving everything from the pickled VA.
                engine = store.load(fingerprint)
        if engine is None:
            engine = CompiledSpanner(pickle.loads(automaton_blob))
        _WORKER_ENGINES[fingerprint] = engine
    else:
        _WORKER_ENGINES.move_to_end(fingerprint)
    return engine


def _describe(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _settle_result(future: Future, result) -> None:
    """``set_result`` that tolerates an already-settled/cancelled future."""
    try:
        future.set_result(result)
    except InvalidStateError:
        pass


def _settle_exception(future: Future, error: BaseException) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


def _evaluate_one(
    engine: CompiledSpanner, doc_id: str, text, decode: bool, spans: bool
):
    """One document → one ``(doc_id, payload, error)`` triple.

    The single definition of per-document evaluation and error isolation,
    shared verbatim by the serial path and the worker processes — which is
    what keeps ``workers=1`` and ``workers=N`` byte-identical.
    """
    try:
        if decode:
            payload: object = tuple(engine.extract(text, spans=spans))
        else:
            payload = frozenset(engine.mappings(text))
        return (doc_id, payload, None)
    except Exception as error:  # isolation: one bad document, one record
        return (doc_id, None, _describe(error))


def evaluate_records(
    engine: CompiledSpanner, records, kind: str = "mappings", spans: bool = False
):
    """Evaluate records on one engine; per-document errors become triples.

    ``kind`` selects the per-document payload: ``"mappings"`` (the frozen
    output set), ``"extract"`` (decoded dictionaries), or ``"matches"``
    (the boolean NonEmp verdict the server's ``/evaluate`` returns).  The
    single definition of batch semantics, shared by the worker processes
    and the online server's in-process executor.

    Batches take the vector layer when available: ``"matches"`` resolves
    verdicts through one lockstep forward sweep
    (:meth:`~repro.engine.compiled.CompiledSpanner.matches_many`), the
    other kinds pre-warm the per-document indexes in lockstep chunks
    (:meth:`~repro.engine.compiled.CompiledSpanner.prewarm`) before the
    per-document pass.  Verdicts, mappings, and error isolation are
    identical either way.

    >>> from repro.engine.compiled import compile_spanner
    >>> evaluate_records(
    ...     compile_spanner("x{a}"), [("d0", "a")], kind="matches"
    ... )
    [('d0', True, None)]
    """
    records = list(records)
    if kind == "matches":
        if all(isinstance(text, str) for _, text in records):
            try:
                verdicts = engine.matches_many([text for _, text in records])
                return [
                    (doc_id, verdict, None)
                    for (doc_id, _), verdict in zip(records, verdicts)
                ]
            except Exception:
                pass  # isolate errors per document below
        results = []
        for doc_id, text in records:
            try:
                results.append((doc_id, engine.matches(text), None))
            except Exception as error:
                results.append((doc_id, None, _describe(error)))
        return results
    # Interleave prewarm and evaluation so batches wider than the
    # engine's index cache never evict an index before it is used.
    limit = getattr(engine, "prewarm_limit", len(records)) or len(records)
    results = []
    for start in range(0, len(records), limit):
        chunk = records[start : start + limit]
        engine.prewarm(text for _, text in chunk)
        results.extend(
            _evaluate_one(engine, doc_id, text, kind == "extract", spans)
            for doc_id, text in chunk
        )
    return results


def _evaluate_batch(
    fingerprint: str,
    automaton_blob: bytes,
    records,
    kind: str,
    spans: bool,
    segment=None,
):
    """One batch inside a worker process: warm engine lookup, then records.

    ``segment`` is the published shared-memory descriptor for the
    engine, when the coordinating process has one (see
    :mod:`repro.service.shm_store`).  Returns ``(triples, (fingerprint,
    snapshot))``: alongside the result triples, each batch ships back a
    snapshot of the worker engine's cumulative kernel/cache counters, so
    the coordinating process can report merged ``--stats`` instead of
    silently showing only its own (cold) engine.  Counters are
    cumulative per worker engine, so the pool keeps only the *latest*
    snapshot per ``(pid, fingerprint)``.
    """
    from repro.service import shm_store

    faults.inject(faults.WORKER_KILL)
    faults.inject(faults.TASK_SLOW)
    faults.inject(faults.TASK_ERROR)
    faults.maybe_poison(records)
    engine = _worker_engine(fingerprint, automaton_blob, segment)
    triples = evaluate_records(engine, records, kind, spans)
    store = _worker_artifacts()
    snapshot = {
        "pid": os.getpid(),
        "kernel": engine.kernel_stats(),
        "cache": engine.cache_stats(),
        # Store-wide (per worker process), not per engine: merged by
        # elementwise max per pid on the coordinating side.
        "artifacts": store.counters() if store is not None else {},
        "shm": shm_store.worker_counters(),
    }
    return triples, (fingerprint, snapshot)


class WorkerPool:
    """A persistent process pool whose workers keep engines warm per spanner.

    The reusable substrate under both :func:`evaluate_corpus` and the
    online server (:mod:`repro.server`): batches of ``(doc_id, text)``
    records are shipped to worker processes together with the automaton
    and its fingerprint, and each worker memoises compiled engines by
    fingerprint (LRU of :data:`_WORKER_ENGINE_LIMIT`), so consecutive
    batches for the same spanner — no matter which request or corpus run
    they came from — hit a warm kernel.

    >>> from repro.engine.compiled import compile_spanner
    >>> with WorkerPool(2) as pool:
    ...     future = pool.submit(
    ...         compile_spanner(".*x{a+}.*"), [("d0", "ba")], kind="extract"
    ...     )
    ...     future.result()
    [('d0', ({'x': 'a'},), None)]
    """

    def __init__(
        self,
        workers: int,
        artifact_dir: "str | None" = None,
        shared_memory: "bool | None" = None,
        task_timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        max_rebuilds: int = DEFAULT_MAX_REBUILDS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if task_timeout is None:
            task_timeout = task_timeout_from_env()
        elif task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if max_rebuilds < 0:
            raise ValueError("max_rebuilds must be >= 0")
        self._workers = workers
        self._task_timeout = task_timeout
        self._retry = retry if retry is not None else RetryPolicy.from_env()
        self._max_rebuilds = max_rebuilds
        if artifact_dir is None:
            from repro.service.artifact_store import ARTIFACT_DIR_ENV

            artifact_dir = os.environ.get(ARTIFACT_DIR_ENV)
        self._artifact_dir = artifact_dir
        # Resilience state: the executor is *replaceable* — a broken or
        # hung pool is reaped and respawned under _pool_lock, and the
        # generation counter makes sure each broken executor is rebuilt
        # exactly once no matter how many in-flight batches observed the
        # same failure.
        self._pool_lock = threading.RLock()
        self._generation = 0
        self._restarts = 0
        self._retries = 0
        self._timeouts = 0
        self._consecutive_rebuilds = 0
        self._failed = False
        self._closed = False
        self._last_restart: float | None = None
        self._timers: "dict[threading.Timer, Future | None]" = {}
        self._pool = self._spawn_executor()
        # The automaton is serialised once per engine, not once per batch
        # (workers only unpickle it on an engine-cache miss anyway).
        self._blobs: "weakref.WeakKeyDictionary[CompiledSpanner, bytes]" = (
            weakref.WeakKeyDictionary()
        )
        # Engine segments published for this pool's workers; ``None``
        # when shared memory is off (explicitly, or unavailable).  The
        # finalizer mirrors shutdown() so abandoned pools — dropped
        # references, exceptions before shutdown, interpreter exit —
        # still unlink their segments instead of leaking /dev/shm files.
        from repro.service.shm_store import ShmStore, shm_available

        use_shm = shared_memory if shared_memory is not None else shm_available()
        self._shm = ShmStore() if use_shm else None
        if self._shm is not None:
            self._shm_finalizer = weakref.finalize(self, self._shm.close)
        # Latest cumulative counter snapshot per (pid, fingerprint); see
        # _evaluate_batch.  Guarded: done-callbacks run on executor threads.
        self._stats_lock = threading.Lock()
        self._worker_stats: dict[tuple[int, str], dict] = {}

    @property
    def workers(self) -> int:
        return self._workers

    def _automaton_blob(self, engine: CompiledSpanner) -> bytes:
        blob = self._blobs.get(engine)
        if blob is None:
            blob = pickle.dumps(
                engine.automaton, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blobs[engine] = blob
        return blob

    def _segment(self, engine: CompiledSpanner):
        """The engine's published shared-memory descriptor, or ``None``."""
        if self._shm is None:
            return None
        artifact_blob = None
        if self._artifact_dir:
            # Reuse the bytes the artifact store already serialised
            # rather than serialising the engine a second time.
            from repro.service.artifact_store import ArtifactStore

            artifact_blob = ArtifactStore(self._artifact_dir).read_blob(
                engine.fingerprint
            )
        return self._shm.publish(engine, blob=artifact_blob)

    def _spawn_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_worker_init,
            initargs=(self._artifact_dir,),
        )

    @property
    def failed(self) -> bool:
        """Whether the rebuild budget is exhausted (see :meth:`revive`)."""
        with self._pool_lock:
            return self._failed

    def worker_pids(self) -> "list[int]":
        """Pids of the live worker processes (empty before the first task)."""
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return []
        return list(getattr(pool, "_processes", None) or {})

    def submit(
        self,
        engine: CompiledSpanner,
        records: "Sequence[CorpusRecord]",
        *,
        kind: str = "mappings",
        spans: bool = False,
    ) -> Future:
        """Ship one batch; resolves to ``(doc_id, payload, error)`` triples.

        Worker death (``BrokenProcessPool``) and blown deadlines never
        surface here: the pool rebuilds its executor and requeues the
        batch with bounded, backed-off retries; a batch that breaks the
        pool twice is bisected down to per-document granularity so one
        poison document costs one error record.  Only
        :class:`~repro.service.resilience.PoolBroken` (rebuild budget
        exhausted) and deterministic task errors reach the caller.
        """
        if kind not in ("mappings", "extract", "matches"):
            raise ValueError(f"unknown batch kind {kind!r}")
        with self._pool_lock:
            if self._failed:
                raise PoolBroken("worker pool rebuild budget exhausted")
            if self._closed:
                raise RuntimeError("cannot submit to a shut-down WorkerPool")
        outer: Future = Future()
        task = {
            "records": list(records),
            "kind": kind,
            "spans": spans,
            "attempt": 0,
            "breaks": 0,
        }
        self._dispatch(engine, task, outer)
        return outer

    def _dispatch(self, engine: CompiledSpanner, task: dict, outer: Future) -> None:
        """One attempt: submit to the current executor, arm the deadline."""
        with self._pool_lock:
            if self._closed:
                _settle_exception(outer, PoolBroken("worker pool shut down"))
                return
            if self._failed or self._pool is None:
                _settle_exception(
                    outer, PoolBroken("worker pool rebuild budget exhausted")
                )
                return
            generation = self._generation
            pool = self._pool
        try:
            inner = pool.submit(
                _evaluate_batch,
                engine.fingerprint,
                self._automaton_blob(engine),
                list(task["records"]),
                task["kind"],
                task["spans"],
                self._segment(engine),
            )
        except BrokenExecutor:
            self._rebuild(generation)
            self._retry_or_fail(engine, task, outer, "worker process died")
            return
        except RuntimeError as error:  # shutdown raced the submit
            _settle_exception(outer, PoolBroken(str(error)))
            return
        # Exactly one of the deadline timer and the done-callback settles
        # this attempt; the flag is flipped under the lock so the loser
        # becomes a no-op instead of double-retrying.
        state = {"settled": False}
        attempt_lock = threading.Lock()
        timer: "threading.Timer | None" = None

        def _deadline() -> None:
            with attempt_lock:
                if state["settled"]:
                    return
                state["settled"] = True
            self._discard_timer(timer)
            with self._pool_lock:
                self._timeouts += 1
            _LOGGER.warning(
                "batch of %d documents missed its %.3gs deadline; "
                "reclaiming workers",
                len(task["records"]),
                self._task_timeout,
            )
            inner.cancel()
            self._rebuild(generation)
            self._retry_or_fail(engine, task, outer, "task deadline exceeded")

        if self._task_timeout is not None:
            timer = threading.Timer(self._task_timeout, _deadline)
            timer.daemon = True
            self._track_timer(timer)
            timer.start()

        def _on_done(done: Future) -> None:
            with attempt_lock:
                if state["settled"]:
                    return
                state["settled"] = True
            if timer is not None:
                timer.cancel()
                self._discard_timer(timer)
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is None:
                triples, (fingerprint, snapshot) = done.result()
                with self._stats_lock:
                    self._worker_stats[(snapshot["pid"], fingerprint)] = snapshot
                with self._pool_lock:
                    self._consecutive_rebuilds = 0
                _settle_result(outer, triples)
                return
            if isinstance(error, BrokenExecutor):
                self._rebuild(generation)
                self._retry_or_fail(engine, task, outer, "worker process died")
                return
            # Deterministic task failure: pass through unchanged (the
            # corpus loop turns it into per-document error records).
            _settle_exception(outer, error)

        inner.add_done_callback(_on_done)

    def _retry_or_fail(
        self, engine: CompiledSpanner, task: dict, outer: Future, reason: str
    ) -> None:
        task["breaks"] += 1
        with self._pool_lock:
            failed, closed = self._failed, self._closed
        if failed or closed:
            _settle_exception(
                outer,
                PoolBroken(
                    "worker pool rebuild budget exhausted"
                    if failed
                    else "worker pool shut down"
                ),
            )
            return
        records = task["records"]
        if task["breaks"] >= 2:
            # Twice is enemy action: bisect the batch down to the poison
            # document — in quarantine (a dedicated one-worker executor),
            # so probing can neither break the shared pool again nor be
            # framed by other batches breaking it.
            self._quarantine(engine, task, outer)
            return
        if task["attempt"] >= self._retry.max_retries:
            described = f"WorkerCrash: {reason} (retry budget exhausted)"
            _settle_result(
                outer, [(doc_id, None, described) for doc_id, _ in records]
            )
            return
        task["attempt"] += 1
        with self._pool_lock:
            self._retries += 1
        delay = self._retry.backoff(task["attempt"])
        _LOGGER.warning(
            "requeueing batch of %d documents in %.3gs (attempt %d; %s)",
            len(records),
            delay,
            task["attempt"],
            reason,
        )
        self._schedule_retry(delay, engine, task, outer)

    def _quarantine(self, engine: CompiledSpanner, task: dict, outer: Future) -> None:
        """Bisect a pool-breaking batch on a dedicated one-worker executor.

        Runs in a daemon thread: each probe ships a sub-batch to a fresh
        single-worker pool, so a poison document kills only its probe —
        the shared pool keeps serving every other batch — and collateral
        breaks of the shared pool cannot implicate innocent documents.
        Bisection converges geometrically to exactly the documents that
        reproducibly kill (or hang) a worker; everything else in the
        batch yields its normal result.
        """
        _LOGGER.warning(
            "bisecting batch of %d documents in quarantine after "
            "repeated pool breaks",
            len(task["records"]),
        )

        def probe(records) -> list:
            triples = self._probe_once(
                engine, records, task["kind"], task["spans"]
            )
            if triples is not None:
                return triples
            if len(records) == 1:
                doc_id = records[0][0]
                _LOGGER.warning("isolating poison document %r", doc_id)
                return [
                    (
                        doc_id,
                        None,
                        "WorkerCrash: document reproducibly kills its "
                        "worker (isolated)",
                    )
                ]
            mid = len(records) // 2
            return probe(records[:mid]) + probe(records[mid:])

        def run() -> None:
            try:
                _settle_result(outer, probe(task["records"]))
            except BaseException as error:  # pragma: no cover - safety net
                _settle_exception(outer, error)

        threading.Thread(
            target=run, name="repro-quarantine", daemon=True
        ).start()

    def _probe_once(self, engine, records, kind: str, spans: bool):
        """One quarantined attempt; ``None`` when the probe pool broke/hung."""
        probe_pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_init,
            initargs=(self._artifact_dir,),
        )
        try:
            future = probe_pool.submit(
                _evaluate_batch,
                engine.fingerprint,
                self._automaton_blob(engine),
                list(records),
                kind,
                spans,
                self._segment(engine),
            )
            try:
                triples, (fingerprint, snapshot) = future.result(
                    timeout=self._task_timeout
                )
            except BrokenExecutor:
                return None
            except FuturesTimeoutError:
                with self._pool_lock:
                    self._timeouts += 1
                return None
            except Exception as error:
                described = _describe(error)
                return [(doc_id, None, described) for doc_id, _ in records]
            with self._stats_lock:
                self._worker_stats[(snapshot["pid"], fingerprint)] = snapshot
            return triples
        finally:
            self._reap(probe_pool)

    def _rebuild(self, generation: int) -> None:
        """Replace the executor after a break; reap the old processes."""
        with self._pool_lock:
            if self._closed or self._failed:
                return
            if generation != self._generation:
                return  # this broken executor was already replaced
            old = self._pool
            self._generation += 1
            self._restarts += 1
            self._consecutive_rebuilds += 1
            self._last_restart = time.time()
            if self._consecutive_rebuilds > self._max_rebuilds:
                self._failed = True
                self._pool = None
                _LOGGER.error(
                    "worker pool failed after %d consecutive rebuilds; "
                    "callers degrade to in-process execution",
                    self._max_rebuilds,
                )
            else:
                self._pool = self._spawn_executor()
                _LOGGER.warning(
                    "worker pool rebuilt (restart #%d, %d/%d consecutive)",
                    self._restarts,
                    self._consecutive_rebuilds,
                    self._max_rebuilds,
                )
        if old is not None:
            self._reap(old)

    @staticmethod
    def _reap(old: ProcessPoolExecutor) -> None:
        # A hung worker never drains the call queue, so a plain shutdown
        # could block forever: kill the processes first, then release the
        # executor's threads/queues without waiting.
        for pid in list(getattr(old, "_processes", None) or {}):
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
        old.shutdown(wait=False, cancel_futures=True)

    def revive(self) -> None:
        """Reset a failed pool: fresh executor, fresh rebuild budget."""
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("cannot revive a shut-down WorkerPool")
            if not self._failed:
                return
            self._failed = False
            self._consecutive_rebuilds = 0
            self._generation += 1
            self._pool = self._spawn_executor()
            _LOGGER.warning("worker pool revived after degraded period")

    def resilience(self) -> dict:
        """Cumulative fault-handling counters and liveness state."""
        with self._pool_lock:
            return {
                "restarts": self._restarts,
                "retries": self._retries,
                "timeouts": self._timeouts,
                "consecutive_rebuilds": self._consecutive_rebuilds,
                "max_rebuilds": self._max_rebuilds,
                "failed": self._failed,
                "last_restart": self._last_restart,
                "task_timeout": self._task_timeout,
            }

    def _track_timer(self, timer: threading.Timer, outer: "Future | None" = None) -> None:
        with self._pool_lock:
            self._timers[timer] = outer

    def _discard_timer(self, timer: "threading.Timer | None") -> None:
        if timer is None:
            return
        with self._pool_lock:
            self._timers.pop(timer, None)

    def _schedule_retry(
        self, delay: float, engine: CompiledSpanner, task: dict, outer: Future
    ) -> None:
        def _fire() -> None:
            self._discard_timer(timer)
            self._dispatch(engine, task, outer)

        with self._pool_lock:
            if self._closed:
                _settle_exception(outer, PoolBroken("worker pool shut down"))
                return
            timer = threading.Timer(delay, _fire)
            timer.daemon = True
            self._timers[timer] = outer
        timer.start()

    def stats(self, fingerprint: str | None = None) -> dict:
        """Summed worker-side kernel/cache counters (latest per worker).

        Restricted to one engine when ``fingerprint`` is given; empty
        component dictionaries when no worker has reported yet.
        """
        with self._stats_lock:
            snapshots = [
                snapshot
                for (pid, fp), snapshot in self._worker_stats.items()
                if fingerprint is None or fp == fingerprint
            ]
            all_snapshots = list(self._worker_stats.values())
        kernel: dict[str, int] = {}
        cache: dict[str, int] = {}
        for snapshot in snapshots:
            for target, source in ((kernel, "kernel"), (cache, "cache")):
                for key, value in snapshot[source].items():
                    target[key] = target.get(key, 0) + value
        # Artifact and shm counters are store-wide per worker process
        # (cumulative across every engine the worker touched), so the
        # per-fingerprint filter does not apply: take the elementwise max
        # per pid — the counters only grow, so the max is the latest —
        # then sum pids.
        def merged_per_pid(source: str) -> dict[str, int]:
            per_pid: dict[int, dict[str, int]] = {}
            for snapshot in all_snapshots:
                merged = per_pid.setdefault(snapshot["pid"], {})
                for key, value in snapshot.get(source, {}).items():
                    merged[key] = max(merged.get(key, 0), value)
            totals: dict[str, int] = {}
            for merged in per_pid.values():
                for key, value in merged.items():
                    totals[key] = totals.get(key, 0) + value
            return totals

        shm = merged_per_pid("shm")
        if self._shm is not None:
            for key, value in self._shm.counters().items():
                shm[key] = shm.get(key, 0) + value
        return {
            "workers": len({snapshot["pid"] for snapshot in snapshots}),
            "kernel": kernel,
            "cache": cache,
            "artifacts": merged_per_pid("artifacts"),
            "shm": shm,
            "resilience": self.resilience(),
        }

    def shutdown(self, wait: bool = True) -> None:
        with self._pool_lock:
            self._closed = True
            timers = list(self._timers.items())
            self._timers.clear()
            pool = self._pool
        for timer, outer in timers:
            timer.cancel()
            if outer is not None:
                _settle_exception(outer, PoolBroken("worker pool shut down"))
        if pool is not None:
            pool.shutdown(wait=wait)
        # After the workers are done (their mapped pages survive the
        # unlink; only *new* attaches would fail): drop the segments.
        if self._shm is not None:
            self._shm.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"WorkerPool({self._workers} workers)"


def _unique_records(corpus: Corpus) -> Iterator[CorpusRecord]:
    """Stream corpus records, rejecting duplicate ids as they appear."""
    seen: set[str] = set()
    for doc_id, text in corpus:
        if doc_id in seen:
            raise CorpusError(f"duplicate document id {doc_id!r}")
        seen.add(doc_id)
        yield doc_id, text


def _chunked(records: Iterator[CorpusRecord], size: int) -> Iterator[list[CorpusRecord]]:
    while chunk := list(itertools.islice(records, size)):
        yield chunk


def _serial(engine: CompiledSpanner, records, decode: bool, spans: bool):
    for doc_id, text in records:
        yield CorpusResult(*_evaluate_one(engine, doc_id, text, decode, spans))


def _parallel(
    engine: CompiledSpanner,
    chunks: Iterator[list[CorpusRecord]],
    workers: int,
    ordered: bool,
    decode: bool,
    spans: bool,
    on_worker_stats=None,
    task_timeout: "float | None" = None,
    pool: "WorkerPool | None" = None,
    backend=None,
) -> Iterator[CorpusResult]:
    kind = "extract" if decode else "mappings"
    # Local import: repro.service.backend imports this module.
    from repro.service.backend import ProcessBackend

    owned = backend is None and pool is None
    if backend is None:
        backend = (
            ProcessBackend(pool=pool)
            if pool is not None
            else ProcessBackend(workers, task_timeout=task_timeout)
        )
    degraded = False
    # ``(future, chunk)`` in flight; a ``None`` future marks a chunk that
    # will be evaluated in-process (degraded mode) when its turn comes —
    # keeping it in the deque preserves corpus order in ordered mode.
    pending: "deque[tuple[Future | None, list[CorpusRecord]]]" = deque()

    def note_degraded() -> None:
        nonlocal degraded
        if not degraded:
            degraded = True
            _LOGGER.warning(
                "worker pool unavailable; evaluating remaining corpus "
                "chunks in-process"
            )

    def submit_next() -> bool:
        chunk = next(chunks, None)
        if chunk is None:
            return False
        if not degraded:
            try:
                pending.append(
                    (
                        backend.submit(engine, chunk, kind=kind, spans=spans),
                        chunk,
                    )
                )
                return True
            except PoolBroken:
                note_degraded()
        pending.append((None, chunk))
        return True

    try:
        backlog = max(1, backend.parallelism) * _BACKLOG_PER_WORKER
        for _ in range(backlog):
            if not submit_next():
                break
        while pending:
            if ordered:
                future, chunk = pending.popleft()
            else:
                position = next(
                    (
                        i
                        for i, (f, _) in enumerate(pending)
                        if f is None or f.done()
                    ),
                    None,
                )
                if position is None:
                    wait(
                        {f for f, _ in pending if f is not None},
                        return_when=FIRST_COMPLETED,
                    )
                    position = next(
                        i for i, (f, _) in enumerate(pending) if f.done()
                    )
                future, chunk = pending[position]
                del pending[position]
            error = future.exception() if future is not None else None
            submit_next()
            if future is None or isinstance(error, PoolBroken):
                # Graceful degradation: the pool is gone — evaluate this
                # chunk (and every later one) on the caller's own engine,
                # same per-document semantics, no documents lost.
                note_degraded()
                yield from _serial(engine, chunk, decode, spans)
                continue
            if error is not None:
                # The whole shard failed (e.g. unpicklable results): report
                # every document of the chunk rather than aborting the run.
                described = _describe(error)
                for doc_id, _ in chunk:
                    yield CorpusResult(doc_id, None, described)
                continue
            for doc_id, payload, problem in future.result():
                yield CorpusResult(doc_id, payload, problem)
        if on_worker_stats is not None:
            on_worker_stats(backend.stats(engine.fingerprint))
    finally:
        if owned:
            backend.close()


def evaluate_corpus(
    spanner,
    corpus,
    *,
    workers: int = 1,
    ordered: bool = True,
    chunk_size: int | None = None,
    on_worker_stats=None,
    task_timeout: "float | None" = None,
    pool: "WorkerPool | None" = None,
    backend=None,
    _decode: bool = False,
    _spans: bool = False,
) -> Iterator[CorpusResult]:
    """Evaluate one spanner over every document of a corpus.

    ``spanner`` is anything :func:`~repro.engine.compiled.compile_spanner`
    accepts; ``corpus`` anything :func:`~repro.service.corpus.as_corpus`
    accepts.  With ``workers > 1`` documents are sharded over a process
    pool in chunks of ``chunk_size``; with ``ordered=True`` (the default)
    results stream back in corpus order regardless of which worker
    finishes first.  Duplicate document ids raise
    :class:`~repro.util.errors.CorpusError`; evaluation failures are
    reported per document in the result stream.

    ``on_worker_stats``, if given, is called once after the last result —
    parallel runs pass the pool's summed worker-side kernel/cache counters
    (see :meth:`WorkerPool.stats`); serial runs skip the call, since the
    caller's own engine already carries the counters.

    Parallel runs are fault tolerant: a killed or hung worker rebuilds
    the pool and requeues its batches (``task_timeout`` arms a
    per-batch deadline, default ``REPRO_TASK_TIMEOUT``), and if the pool
    exhausts its rebuild budget the remaining documents are evaluated
    in-process — the result stream is identical either way.  ``pool``
    reuses a caller-owned :class:`WorkerPool` (and forces the parallel
    path) instead of spawning one per call; ``backend`` generalises that
    to any caller-owned :class:`~repro.service.backend.ExecutorBackend`
    (threads, processes, or a cluster of remote nodes — never closed by
    this function).

    >>> [r.doc_id for r in evaluate_corpus("x{a}", {"one": "a", "two": "b"})]
    ['one', 'two']
    >>> [len(r.mappings) for r in evaluate_corpus("x{a}", ["a", "b"])]
    [1, 0]
    >>> evaluate_corpus("x{a}", ["a"], workers=0)
    Traceback (most recent call last):
        ...
    ValueError: workers must be at least 1
    """
    # Validate eagerly — bad arguments raise here, at the call site, not
    # at the first iteration of the returned generator.
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if pool is not None and backend is not None:
        raise ValueError("pass at most one of pool= and backend=")
    engine = cached_spanner(spanner)
    records = _unique_records(as_corpus(corpus))

    def stream() -> Iterator[CorpusResult]:
        if workers == 1 and pool is None and backend is None:
            yield from _serial(engine, records, _decode, _spans)
            return
        chunks = _chunked(records, chunk_size or DEFAULT_CHUNK_SIZE)
        yield from _parallel(
            engine,
            chunks,
            workers,
            ordered,
            _decode,
            _spans,
            on_worker_stats,
            task_timeout,
            pool,
            backend,
        )

    return stream()


def extract_corpus(
    spanner,
    corpus,
    *,
    workers: int = 1,
    ordered: bool = True,
    spans: bool = False,
    chunk_size: int | None = None,
    on_worker_stats=None,
    task_timeout: "float | None" = None,
    pool: "WorkerPool | None" = None,
    backend=None,
) -> Iterator[CorpusResult]:
    """Like :func:`evaluate_corpus`, but with *decoded* per-document results.

    Each successful :class:`CorpusResult` carries a tuple of dictionaries —
    the engine's :meth:`~repro.engine.compiled.CompiledSpanner.extract`
    output (strings, or :class:`~repro.spans.span.Span` objects with
    ``spans=True``) — decoded inside the worker so the coordinating process
    never needs the document text back.

    >>> [r.mappings for r in extract_corpus(".*x{a+}.*", ["ba"])]
    [({'x': 'a'},)]
    """
    return evaluate_corpus(
        spanner,
        corpus,
        workers=workers,
        ordered=ordered,
        chunk_size=chunk_size,
        on_worker_stats=on_worker_stats,
        task_timeout=task_timeout,
        pool=pool,
        backend=backend,
        _decode=True,
        _spans=spans,
    )


def corpus_outputs(
    spanner, corpus, *, workers: int = 1
) -> "list[frozenset[Mapping]]":
    """The ordered mapping sets of a corpus (errors re-raised).

    The list-returning convenience mirroring
    :meth:`~repro.engine.compiled.CompiledSpanner.evaluate_many`, for
    callers who want batch semantics with corpus-level parallelism.

    >>> [len(out) for out in corpus_outputs(".*x{a+}.*", ["ba", "bb"])]
    [1, 0]
    """
    outputs = []
    for result in evaluate_corpus(spanner, corpus, workers=workers, ordered=True):
        if not result.ok:
            raise CorpusError(
                f"document {result.doc_id!r} failed: {result.error}"
            )
        outputs.append(result.mappings)
    return outputs
