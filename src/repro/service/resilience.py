"""Fault-tolerance primitives: retry policy, deadlines, circuit breakers.

The service layer's executors (:class:`~repro.service.evaluate.WorkerPool`,
the server dispatcher) share three small mechanisms from this module:

* :class:`RetryPolicy` — a bounded retry budget with exponential backoff
  and jitter, used when a worker process dies (``BrokenProcessPool``) or
  a task blows its deadline;
* a **task deadline** (:func:`task_timeout_from_env`, the
  ``REPRO_TASK_TIMEOUT`` / ``--task-timeout`` knob) — how long one batch
  may run in a worker before the pool declares it hung, kills the
  worker, and retries;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine; the server dispatcher keeps one per ``(pattern, opt_level)``
  so a pathological pattern that keeps failing to compile fails fast
  (HTTP 422) instead of recompiling under coalesced load.

Exceptions: :class:`PoolBroken` is raised by a worker pool whose rebuild
budget is exhausted (callers degrade to in-process execution);
:class:`BreakerOpen` by a breaker refusing work (the HTTP layer answers
422 with ``Retry-After``).

>>> policy = RetryPolicy(max_retries=3, base_delay=0.1, jitter=0.0)
>>> [policy.backoff(attempt) for attempt in (1, 2, 3)]
[0.1, 0.2, 0.4]
>>> breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
>>> breaker.record_failure(); breaker.state
'closed'
>>> breaker.record_failure(); breaker.state
'open'
>>> breaker.allow()
False
"""

from __future__ import annotations

import os
import random
import threading
import time
import warnings
from dataclasses import dataclass

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "PoolBroken",
    "RetryPolicy",
    "task_timeout_from_env",
]

#: Environment default for the per-task deadline (seconds; unset: none).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
#: Environment override for the retry budget on worker death/timeouts.
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"


class PoolBroken(RuntimeError):
    """A worker pool that exhausted its rebuild budget (or was shut down
    mid-recovery).  Callers fall back to in-process execution."""


class BreakerOpen(Exception):
    """A circuit breaker refused the request; retry after ``retry_after``."""

    def __init__(self, key, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker open for {key!r}; "
            f"retry in {retry_after:.0f}s"
        )
        self.key = key
        self.retry_after = retry_after


def _positive_env_float(name: str) -> float | None:
    """A positive float from the environment, or ``None`` (invalid warns)."""
    text = os.environ.get(name, "").strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        value = -1.0
    if value <= 0:
        warnings.warn(
            f"ignoring invalid {name}={text!r} (want a positive number)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value


def task_timeout_from_env() -> float | None:
    """The ``REPRO_TASK_TIMEOUT`` deadline in seconds, or ``None``."""
    return _positive_env_float(TASK_TIMEOUT_ENV)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    ``backoff(attempt)`` (1-based) grows ``base_delay * 2**(attempt-1)``
    capped at ``max_delay``, stretched by up to ``jitter`` (a fraction)
    of itself so a fleet of retriers does not thunder back in lockstep.
    The jitter draws from :mod:`random` — it shifts *when* work retries,
    never *what* it computes, so results stay deterministic.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        if self.jitter:
            delay *= 1 + self.jitter * random.random()
        return delay

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy, with ``REPRO_TASK_RETRIES`` honoured."""
        text = os.environ.get(TASK_RETRIES_ENV, "").strip()
        if not text:
            return cls()
        try:
            retries = int(text)
        except ValueError:
            retries = -1
        if retries < 0:
            warnings.warn(
                f"ignoring invalid {TASK_RETRIES_ENV}={text!r} "
                f"(want a non-negative integer)",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls()
        return cls(max_retries=retries)


class CircuitBreaker:
    """Closed → open → half-open failure gate (thread-safe).

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` refuses everything until ``reset_timeout``
    seconds have passed, then admits exactly one probe (half-open).  The
    probe's :meth:`record_success` closes the breaker again; its
    :meth:`record_failure` re-opens it for another full timeout.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek()

    def _peek(self) -> str:
        # Must hold the lock.  An open breaker past its timeout *reads*
        # as half-open; the transition is committed by allow().
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether one request may proceed right now.

        In the half-open window exactly one caller is admitted as the
        probe; everyone else keeps getting refused until the probe
        reports back.
        """
        with self._lock:
            state = self._peek()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._state == self.OPEN:
                self._state = self.HALF_OPEN  # this caller is the probe
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe window (0 when closed)."""
        with self._lock:
            if self._state == self.CLOSED:
                return 0.0
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                # The probe failed: straight back to open, fresh timeout.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"{self._failures}/{self.failure_threshold} failures)"
        )
