"""Compiled-spanner memoisation keyed by the *post-optimisation* plan.

:func:`repro.engine.tables.compile_va` already caches transition tables,
but it keys on VA object *identity-equality* through ``lru_cache`` — two
structurally identical automata built independently (say, by two requests
parsing the same pattern) hash to distinct cache slots only when their
dataclass equality differs, and the cache holds the whole
:class:`~repro.automata.va.VA` alive as its key.

The service layer instead keys on the compilation planner's output:
:class:`SpannerCache` plans every source through :func:`repro.plan.plan`
and memoises whole :class:`~repro.engine.compiled.CompiledSpanner`
instances (tables *and* their document/verdict caches) under
:attr:`~repro.plan.Plan.fingerprint` — the structural digest of the
automaton *after* the pass pipeline.  Structurally different sources
that plan to the same automaton therefore share one compiled engine:

>>> cache = SpannerCache()
>>> cache.get("x{a}|x{a}") is cache.get("x{a}")   # simplify merges the union
True

:func:`va_fingerprint` (re-exported from
:mod:`repro.automata.fingerprint`) hashes the canonical transition list,
so any two equal automata — whether parsed, built, or unpickled in a
worker process — share one digest.

>>> from repro.spanner import Spanner
>>> first = Spanner.compile(".*x{a+}.*").automaton
>>> second = Spanner.compile(".*x{a+}.*").automaton
>>> first is second
False
>>> va_fingerprint(first) == va_fingerprint(second)
True
"""

from __future__ import annotations

import threading

from repro.automata.fingerprint import va_fingerprint
from repro.engine.compiled import CompiledSpanner
from repro.plan import DEFAULT_OPT_LEVEL, Plan, plan as build_plan

__all__ = [
    "DEFAULT_CACHE",
    "SpannerCache",
    "cached_spanner",
    "va_fingerprint",
]

#: Default bound on distinct spanners held by a cache (FIFO eviction, like
#: the engine's per-spanner document/verdict caches).
_DEFAULT_CAPACITY = 128


class SpannerCache:
    """Memoised :class:`CompiledSpanner` construction, keyed by plan fingerprint.

    Accepts everything :func:`~repro.plan.plan` accepts (RGX text, an
    AST, a rule, a VA, a ``Spanner``, a prepared ``Plan``).  String
    sources are additionally memoised by ``(pattern text, opt level)``,
    so the common serving pattern — the same pattern string on every
    request — skips parsing and planning entirely after the first hit.

    >>> cache = SpannerCache()
    >>> engine = cache.get(".*x{a+}.*")
    >>> cache.get(".*x{a+}.*") is engine   # same pattern text: no parse
    True
    >>> from repro.spanner import Spanner
    >>> cache.get(Spanner.compile(".*x{a+}.*")) is engine  # same plan
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (2, 1)
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        # All bookkeeping happens under this lock: the async server's
        # executor threads share one cache, and an unguarded dict-evict
        # racing a lookup could hand out a half-evicted entry.  Planning
        # and engine compilation stay *outside* the lock (they dominate
        # the cost); a lost race compiles twice and keeps the first.
        self._lock = threading.RLock()
        self._by_fingerprint: dict[str, CompiledSpanner] = {}
        self._by_pattern: dict[tuple[str, int], str] = {}
        self._hits = 0
        self._misses = 0
        self._artifacts = None

    def attach_artifacts(self, store) -> None:
        """Back this cache with an on-disk artifact store (or detach with ``None``).

        With a store attached, an in-memory miss first tries the store —
        string patterns resolve through its pattern refs without even
        planning, anything else plans and loads by fingerprint — and a
        fresh compile is saved back, so the *next* process starts warm.
        Artifact hit/miss/save counters live on the store
        (:meth:`ArtifactStore.counters`), not on this cache.
        """
        with self._lock:
            self._artifacts = store

    @property
    def artifacts(self):
        """The attached :class:`~repro.service.artifact_store.ArtifactStore`."""
        return self._artifacts

    def _insert(self, fingerprint, engine, pattern, level) -> CompiledSpanner:
        """First-insert-wins publication of ``engine`` under the lock."""
        with self._lock:
            cached = self._by_fingerprint.get(fingerprint)
            if cached is not None:
                # A concurrent get() compiled the same plan; keep the
                # canonical first entry so callers share one engine.
                self._hits += 1
                engine = cached
            else:
                self._misses += 1
                if len(self._by_fingerprint) >= self._capacity:
                    evicted = next(iter(self._by_fingerprint))
                    del self._by_fingerprint[evicted]
                    self._by_pattern = {
                        key: digest
                        for key, digest in self._by_pattern.items()
                        if digest != evicted
                    }
                self._by_fingerprint[fingerprint] = engine
            if pattern is not None:
                self._by_pattern[(pattern, level)] = fingerprint
            return engine

    def _resolve_plan(self, source, opt_level: int | None) -> Plan:
        """The plan for ``source``, reusing one the source already carries."""
        candidate = source if isinstance(source, Plan) else getattr(source, "plan", None)
        if not isinstance(candidate, Plan):
            candidate = None
        if candidate is not None and (
            opt_level is None or candidate.opt_level == opt_level
        ):
            return candidate
        base = candidate.source if candidate is not None else source
        return build_plan(base, opt_level=opt_level)

    def get(self, source, opt_level: int | None = None) -> CompiledSpanner:
        """The compiled spanner for ``source``, reused when its plan is known."""
        pattern = source if isinstance(source, str) else None
        level = DEFAULT_OPT_LEVEL if opt_level is None else opt_level
        store = self._artifacts
        if pattern is not None:
            with self._lock:
                fingerprint = self._by_pattern.get((pattern, level))
                if fingerprint is not None:
                    cached = self._by_fingerprint.get(fingerprint)
                    if cached is not None:
                        self._hits += 1
                        return cached
            if store is not None:
                # The pattern-ref side-channel: a previous process already
                # planned this exact text, so resolve its fingerprint and
                # load the finished engine without parsing or planning.
                fingerprint = store.resolve(pattern, level)
                if fingerprint is not None:
                    with self._lock:
                        cached = self._by_fingerprint.get(fingerprint)
                        if cached is not None:
                            self._hits += 1
                            self._by_pattern[(pattern, level)] = fingerprint
                            return cached
                    engine = store.load(fingerprint)  # heavy-ish: outside
                    if engine is not None:
                        return self._insert(fingerprint, engine, pattern, level)
        plan = self._resolve_plan(source, opt_level)  # heavy: outside the lock
        fingerprint = plan.fingerprint
        with self._lock:
            cached = self._by_fingerprint.get(fingerprint)
            if cached is not None:
                self._hits += 1
                if pattern is not None:
                    self._by_pattern[(pattern, level)] = fingerprint
                return cached
        engine = store.load(fingerprint) if store is not None else None
        if engine is None:
            if (
                isinstance(source, CompiledSpanner)
                and source.automaton is plan.automaton
            ):
                engine = source  # already compiled on exactly this plan
            else:
                engine = CompiledSpanner(plan=plan)  # heavy: outside the lock
            if store is not None:
                store.save(engine, opt_level=level, pattern=pattern)
        elif store is not None and pattern is not None:
            store.save(engine, opt_level=level, pattern=pattern)  # ref only
        return self._insert(fingerprint, engine, pattern, level)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_fingerprint)

    def __contains__(self, source) -> bool:
        """Membership without ever constructing an engine.

        A string is looked up by pattern text; anything else is *planned*
        — cheap relative to engine compilation — and looked up by plan
        fingerprint.  Sources that do not carry a plan of their own are
        resolved at the *default* opt level, so entries populated via
        ``get(source, opt_level=0|2)`` may not be visible here; an
        uncached pattern string whose *structure* is cached likewise
        reports ``False``.  :meth:`get` is the authoritative (and still
        cheap) path in both cases.
        """
        if isinstance(source, str):
            key = (source, DEFAULT_OPT_LEVEL)
            with self._lock:
                return self._by_pattern.get(key) in self._by_fingerprint
        try:
            plan = self._resolve_plan(source, None)
        except TypeError:
            return False
        with self._lock:
            return plan.fingerprint in self._by_fingerprint

    def fingerprints(self) -> list[str]:
        """The plan fingerprints of every cached engine (insertion order).

        The cluster's worker nodes advertise this list with each
        heartbeat, so the coordinator can route a pattern's batches to
        nodes that already hold its compiled engine warm.
        """
        with self._lock:
            return list(self._by_fingerprint)

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for capacity tuning and dashboards)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._by_fingerprint),
                "capacity": self._capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._by_fingerprint.clear()
            self._by_pattern.clear()
            self._hits = 0
            self._misses = 0

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SpannerCache({stats['size']}/{stats['capacity']} spanners, "
            f"{stats['hits']} hits, {stats['misses']} misses)"
        )


#: The process-wide default cache used by the service entry points.
DEFAULT_CACHE = SpannerCache()


def cached_spanner(source, opt_level: int | None = None) -> CompiledSpanner:
    """Compile through the process-wide :data:`DEFAULT_CACHE`.

    >>> cached_spanner("x{a}b") is cached_spanner("x{a}b")
    True
    """
    return DEFAULT_CACHE.get(source, opt_level)
