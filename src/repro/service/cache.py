"""Compiled-spanner memoisation keyed by a structural VA fingerprint.

:func:`repro.engine.tables.compile_va` already caches transition tables,
but it keys on VA object *identity-equality* through ``lru_cache`` — two
structurally identical automata built independently (say, by two requests
parsing the same pattern) hash to distinct cache slots only when their
dataclass equality differs, and the cache holds the whole
:class:`~repro.automata.va.VA` alive as its key.

The service layer instead fingerprints the automaton's *structure*:
:func:`va_fingerprint` hashes the canonical transition list, so any two
equal automata — whether parsed, built, or unpickled in a worker process —
share one digest.  :class:`SpannerCache` memoises whole
:class:`~repro.engine.compiled.CompiledSpanner` instances (tables *and*
their document/verdict caches) under that digest, which is what makes
repeated :func:`~repro.service.evaluate.evaluate_corpus` calls with the
same pattern reuse all compiled state.

>>> from repro.spanner import Spanner
>>> first = Spanner.compile(".*x{a+}.*").automaton
>>> second = Spanner.compile(".*x{a+}.*").automaton
>>> first is second
False
>>> va_fingerprint(first) == va_fingerprint(second)
True
"""

from __future__ import annotations

import hashlib

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.va import VA
from repro.engine.compiled import CompiledSpanner, compile_spanner

#: Default bound on distinct spanners held by a cache (FIFO eviction, like
#: the engine's per-spanner document/verdict caches).
_DEFAULT_CAPACITY = 128


def _canonical_label(label) -> tuple:
    if isinstance(label, Eps):
        return ("e",)
    if isinstance(label, Open):
        return ("o", label.variable)
    if isinstance(label, Close):
        return ("c", label.variable)
    assert isinstance(label, Sym)
    return ("s", label.charset.negated, tuple(sorted(label.charset.chars)))


def va_fingerprint(va: VA) -> str:
    """A stable hex digest of an automaton's structure.

    Two automata have equal fingerprints exactly when they have the same
    states, initial/final states, and transition multiset — including
    across processes and pickling round-trips, which is what lets worker
    processes share a cache key with the coordinating process.

    >>> from repro.spanner import Spanner
    >>> va = Spanner.compile("x{a}").automaton
    >>> fingerprint = va_fingerprint(va)
    >>> len(fingerprint), fingerprint == va_fingerprint(va)
    (64, True)
    """
    canonical = (
        va.num_states,
        va.initial,
        va.final,
        tuple(
            sorted(
                (source, _canonical_label(label), target)
                for source, label, target in va.transitions
            )
        ),
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


class SpannerCache:
    """Memoised :class:`CompiledSpanner` construction, keyed by fingerprint.

    Accepts everything :func:`~repro.engine.compiled.compile_spanner`
    accepts (RGX text, an AST, a VA, a ``Spanner``).  String sources are
    additionally memoised by the pattern text itself, so the common
    serving pattern — the same pattern string on every request — skips
    parsing entirely after the first hit.

    >>> cache = SpannerCache()
    >>> engine = cache.get(".*x{a+}.*")
    >>> cache.get(".*x{a+}.*") is engine   # same pattern text: no parse
    True
    >>> from repro.spanner import Spanner
    >>> cache.get(Spanner.compile(".*x{a+}.*")) is engine  # same structure
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (2, 1)
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._by_fingerprint: dict[str, CompiledSpanner] = {}
        self._by_pattern: dict[str, str] = {}
        self._hits = 0
        self._misses = 0

    def get(self, source) -> CompiledSpanner:
        """The compiled spanner for ``source``, reused when structurally known."""
        pattern = source if isinstance(source, str) else None
        if pattern is not None:
            fingerprint = self._by_pattern.get(pattern)
            if fingerprint is not None:
                cached = self._by_fingerprint.get(fingerprint)
                if cached is not None:
                    self._hits += 1
                    return cached
        engine = compile_spanner(source)
        fingerprint = va_fingerprint(engine.automaton)
        cached = self._by_fingerprint.get(fingerprint)
        if cached is not None:
            self._hits += 1
            engine = cached
        else:
            self._misses += 1
            if len(self._by_fingerprint) >= self._capacity:
                evicted = next(iter(self._by_fingerprint))
                del self._by_fingerprint[evicted]
                self._by_pattern = {
                    text: digest
                    for text, digest in self._by_pattern.items()
                    if digest != evicted
                }
            self._by_fingerprint[fingerprint] = engine
        if pattern is not None:
            self._by_pattern[pattern] = fingerprint
        return engine

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __contains__(self, source) -> bool:
        """Cheap membership: never parses or compiles.

        A string is looked up by pattern text; anything carrying an
        automaton (a VA, ``Spanner``, or ``CompiledSpanner``) by
        structural fingerprint.  An uncached pattern string whose
        *structure* is cached still reports ``False`` — :meth:`get` is
        the only way to resolve that, and it is the cheap path anyway.
        """
        if isinstance(source, str):
            return self._by_pattern.get(source) in self._by_fingerprint
        automaton = getattr(source, "automaton", source)
        if isinstance(automaton, VA):
            return va_fingerprint(automaton) in self._by_fingerprint
        return False

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for capacity tuning and dashboards)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._by_fingerprint),
            "capacity": self._capacity,
        }

    def clear(self) -> None:
        self._by_fingerprint.clear()
        self._by_pattern.clear()
        self._hits = 0
        self._misses = 0

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SpannerCache({stats['size']}/{stats['capacity']} spanners, "
            f"{stats['hits']} hits, {stats['misses']} misses)"
        )


#: The process-wide default cache used by the service entry points.
DEFAULT_CACHE = SpannerCache()


def cached_spanner(source) -> CompiledSpanner:
    """Compile through the process-wide :data:`DEFAULT_CACHE`.

    >>> cached_spanner("x{a}b") is cached_spanner("x{a}b")
    True
    """
    return DEFAULT_CACHE.get(source)
