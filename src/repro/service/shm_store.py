"""Host-wide shared-memory segments for compiled-engine artifacts.

A :class:`~repro.service.evaluate.WorkerPool` ships each automaton to its
workers as a pickled blob, and PR 7's :class:`ArtifactStore
<repro.service.artifact_store.ArtifactStore>` let warm workers mmap a
finished engine from disk instead of recompiling.  This module closes
the remaining gap: the *coordinating* process publishes each engine's
RPRA artifact bytes into one ``multiprocessing.shared_memory`` segment
keyed by plan fingerprint, and every worker on the host attaches the
same physical pages and rebuilds its engine as zero-copy views into
them — so per-worker engine memory stays flat no matter how many
workers share a pool, and cold workers skip both recompilation *and*
the disk read.

Attachment discipline (the part that is easy to get wrong):

* The **parent** owns every segment.  It creates them with
  ``SharedMemory(create=True)``, keeps the handles in a process-wide
  refcounted registry (two pools publishing the same engine share one
  segment), and unlinks them when the last pool holding a reference
  shuts down — with an ``atexit`` net for pools that never shut down
  cleanly.
* **Workers never construct a ``SharedMemory`` object.**  On CPython a
  child that merely *attaches* a segment registers it with its own
  resource tracker, which unlinks the segment out from under the parent
  when the child exits (and warns about a leak).  Workers instead open
  ``/dev/shm/<name>`` directly and ``mmap`` it read-only — same pages,
  no tracker involvement — and keep the mapping alive for as long as
  the engine's zero-copy mask views need it.

Every failure path falls back: a publish error means batches ship
without a segment, an attach error means the worker falls back to the
artifact store (and then to the pickled automaton), and both are
counted, so ``--stats`` and ``/metrics`` show exactly how engines
reached the workers (``repro_shm_*``).

>>> from repro.engine.compiled import compile_spanner
>>> engine = compile_spanner(".*x{a+}.*")
>>> store = ShmStore()
>>> segment = store.publish(engine)
>>> if segment is not None:  # shared memory available on this host
...     warm = attach_engine(segment, engine.fingerprint)
...     assert warm is not None
...     assert warm.matches("baa") and not warm.matches("bb")
...     store.close()
"""

from __future__ import annotations

import atexit
import mmap
import os
import threading

from repro.engine.artifact import ArtifactError, deserialize_engine, serialize_engine
from repro.service import faults

__all__ = ["ShmStore", "attach_engine", "shm_available", "worker_counters"]

#: Where POSIX shared-memory segments surface as files (Linux).  Workers
#: attach through this path; no directory means no shared memory.
_SHM_DIR = "/dev/shm"


def shm_available() -> bool:
    """Whether engine segments can work on this host.

    Requires ``multiprocessing.shared_memory`` *and* a ``/dev/shm`` for
    workers to attach through; ``REPRO_NO_SHM=1`` switches the layer off
    (the same 0/1 convention as the engine's ``REPRO_NO_*`` knobs).
    """
    if os.environ.get("REPRO_NO_SHM", "") not in ("", "0"):
        return False
    if not os.path.isdir(_SHM_DIR):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib module
        return False
    return True


# -- parent side: publish ----------------------------------------------------
#
# One process-wide registry of live segments, refcounted per fingerprint:
# each ShmStore (one per WorkerPool) acquires at most one reference per
# fingerprint and drops all of them on close().  The segment is unlinked
# when its last reference goes, so overlapping pools sharing an engine
# share its pages too.


class _Segment:
    __slots__ = ("name", "size", "memory", "refs")

    def __init__(self, name: str, size: int, memory) -> None:
        self.name = name
        self.size = size
        self.memory = memory
        self.refs = 0


_REGISTRY_LOCK = threading.Lock()
_REGISTRY: dict[str, _Segment] = {}
_SEQUENCE = 0


def _segment_name(fingerprint: str) -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"repro_{fingerprint[:16]}_{os.getpid()}_{_SEQUENCE}"


def _unlink(segment: _Segment) -> None:
    try:
        segment.memory.close()
        segment.memory.unlink()
    except OSError:  # pragma: no cover - already gone
        pass


@atexit.register
def _unlink_leftovers() -> None:
    """Safety net: never leave segments behind in ``/dev/shm``."""
    with _REGISTRY_LOCK:
        leftovers = list(_REGISTRY.values())
        _REGISTRY.clear()
    for segment in leftovers:
        _unlink(segment)


class ShmStore:
    """One pool's handle on the host-wide engine segments.

    :meth:`publish` maps a compiled engine to a live ``(name, size)``
    segment descriptor (serialising it at most once, or reusing the
    bytes another pool already published); :meth:`close` drops every
    reference this store holds, unlinking segments nobody else holds.
    Thread-safe; every method degrades to ``None`` rather than raising.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._held: dict[str, _Segment] = {}
        self._failed: set[str] = set()
        self._closed = False
        self._publishes = 0
        self._reuses = 0
        self._errors = 0
        self._bytes = 0

    def publish(self, engine, blob: bytes | None = None):
        """The ``(name, size)`` segment descriptor for ``engine``, or ``None``.

        The first call for a fingerprint serialises the engine (or takes
        the ready-made artifact ``blob``) and copies it into a fresh
        segment; later calls — from this store or any other — reuse it.
        ``None`` when shared memory is off or the publish failed; the
        caller just ships batches without a segment.
        """
        fingerprint = engine.fingerprint
        with self._lock:
            if self._closed or fingerprint in self._failed:
                return None
            held = self._held.get(fingerprint)
            if held is not None:
                self._reuses += 1
                return held.name, held.size
        if not shm_available():
            return None
        with _REGISTRY_LOCK:
            segment = _REGISTRY.get(fingerprint)
            if segment is not None:
                segment.refs += 1
        if segment is None:
            segment = self._create(fingerprint, engine, blob)
            if segment is None:
                with self._lock:
                    self._failed.add(fingerprint)
                    self._errors += 1
                return None
        with self._lock:
            if self._closed:  # raced with shutdown: give the ref back
                self._release(fingerprint, segment)
                return None
            if fingerprint not in self._held:
                self._held[fingerprint] = segment
                self._publishes += 1
                self._bytes += segment.size
            else:  # raced with ourselves: drop the duplicate reference
                self._release(fingerprint, segment)
                segment = self._held[fingerprint]
                self._reuses += 1
        return segment.name, segment.size

    def _create(self, fingerprint: str, engine, blob: bytes | None):
        from multiprocessing import shared_memory

        try:
            if blob is None:
                blob = serialize_engine(engine)
            memory = shared_memory.SharedMemory(
                name=_segment_name(fingerprint), create=True, size=len(blob)
            )
            memory.buf[: len(blob)] = blob
        except (OSError, ValueError, ArtifactError):
            return None
        segment = _Segment(memory.name, len(blob), memory)
        with _REGISTRY_LOCK:
            raced = _REGISTRY.get(fingerprint)
            if raced is not None:  # another thread won: keep theirs
                raced.refs += 1
            else:
                segment.refs = 1
                _REGISTRY[fingerprint] = segment
        if raced is not None:
            _unlink(segment)
            return raced
        return segment

    @staticmethod
    def _release(fingerprint: str, segment: _Segment) -> None:
        with _REGISTRY_LOCK:
            segment.refs -= 1
            last = segment.refs <= 0
            if last and _REGISTRY.get(fingerprint) is segment:
                del _REGISTRY[fingerprint]
        if last:
            _unlink(segment)

    def close(self) -> None:
        """Drop every reference; unlink segments nobody else holds."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            held = list(self._held.items())
            self._held.clear()
        for fingerprint, segment in held:
            self._release(fingerprint, segment)

    def counters(self) -> dict[str, int]:
        """This store's publish-side counters (``repro_shm_*`` names)."""
        with self._lock:
            return {
                "publishes": self._publishes,
                "reuses": self._reuses,
                "publish_errors": self._errors,
                "bytes": self._bytes,
                "segments": len(self._held),
            }

    def __enter__(self) -> "ShmStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        counters = self.counters()
        return (
            f"ShmStore({counters['segments']} segments, "
            f"{counters['bytes']} bytes)"
        )


# -- worker side: attach -----------------------------------------------------

#: Live read-only mappings by segment name — kept for the life of the
#: worker because rebuilt engines hold zero-copy views into the pages.
_ATTACHED: dict[str, tuple] = {}

_WORKER_COUNTERS = {"attaches": 0, "attach_errors": 0, "fallbacks": 0}


def worker_counters() -> dict[str, int]:
    """This process's attach-side counters (cumulative)."""
    return dict(_WORKER_COUNTERS)


def reset_worker_counters() -> None:
    """Zero the attach-side counters.

    Called by the worker-pool initializer: fork-started workers inherit
    the parent's module state, and counting the parent's attaches as the
    worker's would double-report in merged stats.
    """
    for key in _WORKER_COUNTERS:
        _WORKER_COUNTERS[key] = 0


def attach_engine(segment, fingerprint: str):
    """The engine rebuilt from a published segment, or ``None``.

    ``segment`` is the ``(name, size)`` descriptor shipped with a batch.
    Attaches by mapping ``/dev/shm/<name>`` read-only (deliberately
    *not* through ``SharedMemory`` — see the module docstring), trims
    the view to the published size, and validates the artifact the same
    way the disk store does.  Any failure counts and returns ``None``;
    the caller falls back to the artifact store or the pickled
    automaton.
    """
    try:
        faults.inject(faults.SHM_ATTACH)
        name, size = segment
        path = os.path.join(_SHM_DIR, name)
        cached = _ATTACHED.get(name)
        if cached is None:
            descriptor = os.open(path, os.O_RDONLY)
            try:
                mapped = mmap.mmap(descriptor, 0, access=mmap.ACCESS_READ)
            finally:
                os.close(descriptor)
            view = memoryview(mapped)[:size]
            _ATTACHED[name] = (mapped, view)
        else:
            _, view = cached
        engine = deserialize_engine(view, expected_fingerprint=fingerprint)
    except (OSError, ValueError, ArtifactError, faults.InjectedFault):
        _WORKER_COUNTERS["attach_errors"] += 1
        return None
    _WORKER_COUNTERS["attaches"] += 1
    return engine


def count_fallback() -> None:
    """Record that a batch shipped a segment the worker could not use."""
    _WORKER_COUNTERS["fallbacks"] += 1
