"""On-disk cache of compiled-engine artifacts, keyed by plan fingerprint.

:mod:`repro.engine.artifact` turns a compiled engine into one versioned,
checksummed byte blob; this module gives those blobs a home.  An
:class:`ArtifactStore` maps a post-plan automaton fingerprint to an
``.rpra`` file under a cache directory, so *any* process — a fresh CLI
invocation, a restarted server, a cold worker process — can skip
planning, table derivation, and kernel construction entirely and mmap
the finished engine instead.

Layout (all under the store root)::

    v1/<fp[:2]>/<fingerprint>.rpra    the artifact blobs, fan-out by prefix
    v1/refs/<sha256(level\\x00pattern)>   pattern → fingerprint side-channel

The ``refs`` files let a *string* pattern resolve straight to its
artifact without parsing or planning: the ref name hashes the pattern
text together with the opt level, and its content is the fingerprint
hex.  Anything that is not a plain pattern string still has to plan
first (planning is cheap next to compilation) and then loads by
fingerprint.

Concurrency is first-insert-wins, the same discipline as the in-memory
:class:`~repro.service.cache.SpannerCache`: writers serialise into a
private temp file and publish it with :func:`os.link`, which is atomic
and fails with ``FileExistsError`` when another process got there first
— the loser just deletes its temp file.  Readers never see a partial
artifact, and the checksum inside the blob catches torn or corrupted
files anyway: every :class:`~repro.engine.artifact.ArtifactError` is
counted, the offending file is quarantined (unlinked), and the caller
falls back to recompiling.

>>> import tempfile
>>> from repro.engine.compiled import compile_spanner
>>> store = ArtifactStore(tempfile.mkdtemp())
>>> engine = compile_spanner(".*x{a+}.*")
>>> store.save(engine, opt_level=1, pattern=".*x{a+}.*")
True
>>> warm = store.load(engine.fingerprint)
>>> sorted(m["x"].begin for m in warm.mappings("baa"))
[2, 2, 3]
>>> store.resolve(".*x{a+}.*", 1) == engine.fingerprint
True
>>> store.stats()["hits"], store.stats()["saves"]
(1, 1)
"""

from __future__ import annotations

import hashlib
import mmap
import os
import threading

from repro.engine.artifact import (
    ArtifactError,
    artifact_meta,
    deserialize_engine,
    serialize_engine,
)
from repro.service import faults

__all__ = ["ArtifactStore", "default_artifact_root", "store_from_env"]

#: Environment variable naming the cache directory.  Worker processes and
#: servers configured with an explicit directory export it here so every
#: child resolves the same store.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

_LAYOUT_VERSION = "v1"


def default_artifact_root() -> str:
    """The cache directory used when nothing more specific is configured.

    Respects ``XDG_CACHE_HOME`` when set, else ``~/.cache``.
    """
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-spanners", "artifacts")


def store_from_env() -> "ArtifactStore | None":
    """An :class:`ArtifactStore` at :data:`ARTIFACT_DIR_ENV`, or ``None``.

    The hook worker processes use: the coordinating process exports the
    directory into the environment, children pick it up here.  No
    variable set → no store, engines compile from the pickled automaton
    as before.
    """
    root = os.environ.get(ARTIFACT_DIR_ENV)
    return ArtifactStore(root) if root else None


class ArtifactStore:
    """Durable compiled engines under one directory, first-insert-wins.

    All methods are thread-safe and never raise on cache trouble: a
    missing, corrupt, or stale artifact is a miss (counted), and a
    failed save is an error (counted) — the caller always has the
    recompile path.
    """

    def __init__(self, root: str | None = None) -> None:
        if root is None:
            root = os.environ.get(ARTIFACT_DIR_ENV) or default_artifact_root()
        self._root = os.path.abspath(os.path.expanduser(str(root)))
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._saves = 0
        self._errors = 0

    # -- layout ------------------------------------------------------------

    @property
    def root(self) -> str:
        return self._root

    def artifact_path(self, fingerprint: str) -> str:
        """Where the artifact for ``fingerprint`` lives (may not exist)."""
        return os.path.join(
            self._root, _LAYOUT_VERSION, fingerprint[:2], f"{fingerprint}.rpra"
        )

    def _ref_path(self, pattern: str, opt_level: int) -> str:
        digest = hashlib.sha256(
            f"{opt_level}\x00{pattern}".encode()
        ).hexdigest()
        return os.path.join(self._root, _LAYOUT_VERSION, "refs", digest)

    # -- counters ----------------------------------------------------------

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def counters(self) -> dict[str, int]:
        """This process's hit/miss/save/error counters."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "saves": self._saves,
                "errors": self._errors,
            }

    # -- save --------------------------------------------------------------

    def save(self, engine, opt_level: int | None = None, pattern: str | None = None) -> bool:
        """Persist ``engine``; ``True`` when this call published the file.

        ``False`` means another writer already published an artifact for
        the same fingerprint (its bytes are equivalent — the format is
        deterministic given the engine) or the write failed (counted in
        ``errors``).  A ``pattern`` additionally records the
        pattern → fingerprint ref so later lookups skip planning.
        """
        fingerprint = engine.fingerprint
        final = self.artifact_path(fingerprint)
        published = False
        if not os.path.exists(final):
            try:
                blob = serialize_engine(
                    engine, opt_level=opt_level, expression=pattern
                )
                directory = os.path.dirname(final)
                os.makedirs(directory, exist_ok=True)
                temp = os.path.join(
                    directory,
                    f".{fingerprint}.{os.getpid()}.{threading.get_ident()}.tmp",
                )
                with open(temp, "wb") as handle:
                    handle.write(blob)
                try:
                    os.link(temp, final)  # atomic; loses to a faster writer
                    published = True
                finally:
                    os.unlink(temp)
            except FileExistsError:
                pass  # first-insert-wins: keep the other writer's file
            except OSError:
                self._count("_errors")
                return False
        if published:
            self._count("_saves")
        if pattern is not None:
            level = opt_level if opt_level is not None else -1
            self._save_ref(pattern, level, fingerprint)
        return published

    def _save_ref(self, pattern: str, opt_level: int, fingerprint: str) -> None:
        path = self._ref_path(pattern, opt_level)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            temp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
            with open(temp, "w", encoding="ascii") as handle:
                handle.write(fingerprint)
            os.replace(temp, path)  # refs are idempotent: last write fine
        except OSError:
            self._count("_errors")

    # -- load --------------------------------------------------------------

    def resolve(self, pattern: str, opt_level: int | None = None) -> str | None:
        """The fingerprint recorded for ``(pattern, opt_level)``, if any."""
        level = opt_level if opt_level is not None else -1
        try:
            with open(
                self._ref_path(pattern, level), encoding="ascii"
            ) as handle:
                fingerprint = handle.read().strip()
        except OSError:
            return None
        # A ref is only trustworthy while its artifact validates; a bogus
        # fingerprint fails there, never here.
        return fingerprint if len(fingerprint) == 64 else None

    def read_blob(self, fingerprint: str) -> "bytes | None":
        """The raw artifact bytes for ``fingerprint``, or ``None``.

        A plain read for callers that want the *bytes* rather than an
        engine — the shared-memory publisher reuses a saved artifact
        instead of re-serialising.  Deliberately counter-free: this is
        not a cache hit or miss, and the blob is validated wherever it
        is eventually deserialised.
        """
        try:
            with open(self.artifact_path(fingerprint), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def load(self, fingerprint: str):
        """The engine for ``fingerprint``, rebuilt zero-copy from its mmap.

        ``None`` on a miss.  A file that exists but fails validation —
        truncated, bit-flipped, written by a different format version,
        keyed under the wrong fingerprint — counts as an error *and* a
        miss, is quarantined, and returns ``None`` so the caller
        recompiles.
        """
        path = self.artifact_path(fingerprint)
        try:
            faults.inject(faults.ARTIFACT_LOAD)
        except faults.InjectedFault:
            self._count("_errors")
            self._count("_misses")
            return None
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):  # absent, unreadable, or empty
            self._count("_misses")
            return None
        try:
            # The memoryview slices taken by the ≤64-state fast path keep
            # the mapping alive for as long as the kernel does; we never
            # close it explicitly.
            engine = deserialize_engine(mapped, expected_fingerprint=fingerprint)
        except ArtifactError:
            self._count("_errors")
            self._count("_misses")
            self._quarantine(path)
            return None
        self._count("_hits")
        return engine

    def _quarantine(self, path: str) -> None:
        try:
            os.unlink(path)  # make room for a good rewrite
        except OSError:
            pass

    # -- inspection / maintenance -----------------------------------------

    def _artifact_files(self):
        base = os.path.join(self._root, _LAYOUT_VERSION)
        try:
            shards = sorted(os.listdir(base))
        except OSError:
            return
        for shard in shards:
            if shard == "refs":
                continue
            directory = os.path.join(base, shard)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                if name.endswith(".rpra"):
                    yield os.path.join(directory, name)

    def list(self) -> list[dict]:
        """One record per stored artifact: meta plus file size and path.

        Unreadable or invalid files are reported with an ``"error"`` key
        instead of being silently skipped — ``repro cache list`` is the
        tool for noticing a corrupted cache.
        """
        records = []
        for path in self._artifact_files():
            record: dict = {"path": path, "size": None}
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                record["size"] = len(blob)
                meta = artifact_meta(blob)
            except (OSError, ArtifactError) as error:
                record["error"] = str(error)
            else:
                record.update(
                    fingerprint=meta.get("fingerprint"),
                    expression=meta.get("expression"),
                    opt_level=meta.get("opt_level"),
                    num_states=meta.get("num_states"),
                    num_classes=meta.get("num_classes"),
                )
            records.append(record)
        return records

    def clear(self) -> int:
        """Delete every artifact and ref; the number of artifacts removed."""
        removed = 0
        for path in list(self._artifact_files()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        refs = os.path.join(self._root, _LAYOUT_VERSION, "refs")
        try:
            names = os.listdir(refs)
        except OSError:
            names = []
        for name in names:
            try:
                os.unlink(os.path.join(refs, name))
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Counters plus on-disk totals (artifact count and bytes)."""
        artifacts = 0
        size = 0
        for path in self._artifact_files():
            artifacts += 1
            try:
                size += os.path.getsize(path)
            except OSError:
                pass
        out = self.counters()
        out["artifacts"] = artifacts
        out["bytes"] = size
        out["root"] = self._root
        return out

    def __repr__(self) -> str:
        counters = self.counters()
        return (
            f"ArtifactStore({self._root!r}, {counters['hits']} hits, "
            f"{counters['misses']} misses)"
        )
