"""High-level spanner API — the convenience layer for downstream users.

A :class:`Spanner` wraps any of the paper's formalisms behind one object
with a compiled automaton, cached classification (sequential? functional?),
evaluation, streaming enumeration, extraction of *decoded* results, and
the algebra/static-analysis operations::

    >>> from repro.spanner import Spanner
    >>> sp = Spanner.compile(".*Seller: x{[^,\\n]*},.*")
    >>> sp.extract("Seller: John, ID75\\n")
    [{'x': 'John'}]

`extract` returns dictionaries of *strings* (or, with ``spans=True``, of
:class:`~repro.spans.span.Span`) — one per output mapping, with absent
optional fields simply missing from the dictionary, which is the paper's
incomplete-information story in API form.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from functools import cached_property

from repro.automata.simulate import evaluate_va
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.rgx.ast import Rgx
from repro.rgx.parser import parse
from repro.rgx.properties import is_functional
from repro.spans.document import Document, as_text
from repro.spans.mapping import ExtendedMapping, Mapping, Variable
from repro.util.errors import SpannerError


class Spanner:
    """A compiled document spanner under the mapping semantics."""

    def __init__(
        self,
        automaton: VA,
        expression: Rgx | None = None,
        *,
        opt_level: int | None = None,
    ) -> None:
        self._automaton = automaton
        self._expression = expression
        self._opt_level = opt_level

    # -- construction -----------------------------------------------------------

    @classmethod
    def compile(
        cls, pattern: "str | Rgx", *, opt_level: int | None = None
    ) -> "Spanner":
        """Compile concrete RGX syntax (or an AST) into a spanner.

        ``opt_level`` selects the compilation planner's pass pipeline for
        the engine behind this spanner (see :mod:`repro.plan`); the
        spanner's own :attr:`automaton` stays the straight translation,
        which is what the algebra and static-analysis operations use.
        """
        expression = parse(pattern) if isinstance(pattern, str) else pattern
        return cls(to_va(expression), expression, opt_level=opt_level)

    @classmethod
    def from_automaton(cls, automaton: VA) -> "Spanner":
        return cls(automaton)

    # -- inspection ------------------------------------------------------------

    @property
    def automaton(self) -> VA:
        return self._automaton

    @property
    def expression(self) -> Rgx | None:
        """The source RGX, when compiled from one."""
        return self._expression

    @property
    def variables(self) -> frozenset[Variable]:
        return self._automaton.variables

    @cached_property
    def plan(self):
        """The compilation plan for this spanner (lazy; see :mod:`repro.plan`)."""
        from repro.plan import plan as build_plan

        return build_plan(self, opt_level=self._opt_level)

    @cached_property
    def compiled(self):
        """The compiled engine behind this spanner (tables, caches, batch API).

        Compiled from :attr:`plan`, so the engine sweeps the planner's
        optimised automaton while this object keeps the straight
        translation for algebra and analysis.
        """
        from repro.engine.compiled import compile_spanner

        return compile_spanner(self.plan)

    @cached_property
    def is_sequential(self) -> bool:
        """Membership in the tractable fragment (Theorem 5.7).

        Answered directly on the raw automaton — classification must not
        pay for planning or engine compilation (``--check`` is static).
        """
        from repro.automata.sequential import is_sequential

        return is_sequential(self._automaton)

    @cached_property
    def is_functional(self) -> bool:
        """Does the source expression lie in funcRGX (Theorem 4.1)?"""
        if self._expression is None:
            raise SpannerError("functionality is defined on expressions")
        return is_functional(self._expression)

    # -- evaluation -------------------------------------------------------------

    def mappings(self, document: "Document | str") -> set[Mapping]:
        """``⟦γ⟧_d`` — all output mappings."""
        return evaluate_va(self._automaton, as_text(document))

    def enumerate(self, document: "Document | str") -> Iterator[Mapping]:
        """Stream the mappings via the compiled engine's Algorithm 2
        (polynomial delay when :attr:`is_sequential`)."""
        return self.compiled.enumerate(as_text(document))

    def evaluate_many(
        self, documents: Iterable["Document | str"]
    ) -> list[set[Mapping]]:
        """Batch evaluation: ``⟦γ⟧_d`` for every document, compiling once."""
        return self.compiled.evaluate_many(documents)

    def extract(
        self, document: "Document | str", spans: bool = False
    ) -> list[dict[str, object]]:
        """Decoded results: one dict per mapping, absent fields omitted.

        >>> Spanner.compile("x{a}(y{b}|ε)c*").extract("ac")
        [{'x': 'a'}]
        """
        text = as_text(document)
        results = []
        for mapping in sorted(
            self.mappings(text),
            key=lambda m: sorted((v, s) for v, s in m.items()),
        ):
            if spans:
                results.append({v: s for v, s in mapping.items()})
            else:
                results.append(
                    {v: s.content(text) for v, s in mapping.items()}
                )
        return results

    def matches(self, document: "Document | str") -> bool:
        """``⟦γ⟧_d ≠ ∅`` (NonEmp, Section 5.1)."""
        return self.compiled.matches(as_text(document))

    def check(self, document: "Document | str", mapping: Mapping) -> bool:
        """``µ ∈ ⟦γ⟧_d`` (ModelCheck, Section 5.1)."""
        return self.compiled.check(as_text(document), mapping)

    def eval(
        self, document: "Document | str", pinned: ExtendedMapping
    ) -> bool:
        """The ``Eval`` decision problem (Section 5.1, memoised)."""
        return self.compiled.eval(as_text(document), pinned)

    # -- algebra (Theorem 4.5) ---------------------------------------------------

    def union(self, other: "Spanner") -> "Spanner":
        from repro.automata.algebra import union_va

        return Spanner(union_va(self._automaton, other._automaton))

    def project(self, variables) -> "Spanner":
        from repro.automata.algebra import project_va

        return Spanner(project_va(self._automaton, set(variables)))

    def join(self, other: "Spanner") -> "Spanner":
        from repro.automata.algebra import join_va

        return Spanner(join_va(self._automaton, other._automaton))

    # -- static analysis (Section 6) ----------------------------------------------

    def is_satisfiable(self) -> bool:
        from repro.analysis.satisfiability import satisfiable_va

        return satisfiable_va(self._automaton)

    def witness(self) -> str | None:
        from repro.analysis.satisfiability import satisfying_document

        return satisfying_document(self._automaton)

    def contained_in(self, other: "Spanner") -> bool:
        from repro.analysis.containment import contained_va

        return contained_va(self._automaton, other._automaton)

    def equivalent_to(self, other: "Spanner") -> bool:
        from repro.analysis.containment import equivalent_va

        return equivalent_va(self._automaton, other._automaton)

    def __repr__(self) -> str:
        source = f" from {self._expression}" if self._expression else ""
        return (
            f"Spanner({self._automaton.num_states} states, "
            f"variables {sorted(self.variables)}{source})"
        )
