"""Static analysis: satisfiability and containment (paper, Section 6)."""

from repro.analysis.containment import (
    contained_det_sequential_point_disjoint,
    contained_va,
    containment_counterexample,
    equivalent_va,
    is_point_disjoint_va,
)
from repro.analysis.satisfiability import (
    satisfiable_rgx,
    satisfiable_rule,
    satisfiable_rule_bounded,
    satisfiable_va,
    satisfying_document,
    witness_length_bound,
)

__all__ = [
    "contained_det_sequential_point_disjoint",
    "contained_va",
    "containment_counterexample",
    "equivalent_va",
    "is_point_disjoint_va",
    "satisfiable_rgx",
    "satisfiable_rule",
    "satisfiable_rule_bounded",
    "satisfiable_va",
    "satisfying_document",
    "witness_length_bound",
]
