"""Satisfiability of spanners (paper, Section 6, Theorems 6.1–6.3).

``Sat[L]`` asks whether some document makes ``⟦γ⟧_d`` non-empty.

* **Sequential VA** — plain graph reachability from the initial to the
  final state (Theorem 6.2's NLOGSPACE algorithm): every initial-to-final
  path of a sequential automaton is a valid run, and letters can always be
  instantiated because letter predicates are non-empty.
* **General VA** — reachability in the product with a per-variable status
  (the NP upper bound of Theorem 6.1; our deterministic implementation is
  exponential in the number of variables only).  Lemma D.1's pumping bound
  ``(2|V|+1)·|Q|`` on witness length is exposed for the tests.
* **Rules** — sequential tree-like rules are always satisfiable
  (Theorem 6.3); simple rules are decided through the translation pipeline
  of Propositions 4.8/4.9, whose surviving disjuncts are functional
  tree-like and therefore satisfiable.
"""

from __future__ import annotations

from repro.automata.labels import Close, Open, Sym
from repro.automata.sequential import is_sequential
from repro.automata.va import VA
from repro.rules.graph import is_tree_like
from repro.rules.rule import Rule
from repro.util.errors import NotSupportedError

_FRESH, _OPEN, _DONE = range(3)


def witness_length_bound(va: VA) -> int:
    """Lemma D.1: a satisfiable VA accepts a document of this length."""
    return (2 * len(va.variables) + 1) * va.num_states


def satisfiable_va(va: VA) -> bool:
    """``Sat[VA]`` — dispatches on sequentiality (Theorems 6.1/6.2)."""
    return satisfying_document(va) is not None


def satisfying_document(va: VA) -> str | None:
    """A witness document, or ``None`` when the spanner is unsatisfiable."""
    if is_sequential(va):
        return _sequential_witness(va)
    return _general_witness(va)


def _sequential_witness(va: VA) -> str | None:
    """Theorem 6.2: reachability suffices for sequential automata."""
    parents: dict[int, tuple[int, object]] = {}
    frontier = [va.initial]
    seen = {va.initial}
    while frontier:
        state = frontier.pop()
        if state == va.final:
            return _read_letters(va, parents, state)
        for label, target in va.out_edges(state):
            if target not in seen:
                seen.add(target)
                parents[target] = (state, label)
                frontier.append(target)
    if va.initial == va.final:
        return ""
    return None


def _general_witness(va: VA) -> str | None:
    """Status-product reachability for arbitrary VA (Theorem 6.1 bound)."""
    variables = tuple(sorted(va.mentioned_variables))
    index = {variable: i for i, variable in enumerate(variables)}
    start = (va.initial, (_FRESH,) * len(variables))
    parents: dict[tuple, tuple[tuple, object]] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        key = frontier.pop()
        state, statuses = key
        if state == va.final:
            return _read_letters_product(parents, key)
        for label, target in va.out_edges(state):
            if isinstance(label, Open):
                i = index[label.variable]
                if statuses[i] != _FRESH:
                    continue
                nxt = (target, statuses[:i] + (_OPEN,) + statuses[i + 1 :])
            elif isinstance(label, Close):
                i = index[label.variable]
                if statuses[i] != _OPEN:
                    continue
                nxt = (target, statuses[:i] + (_DONE,) + statuses[i + 1 :])
            else:
                nxt = (target, statuses)
            if nxt not in seen:
                seen.add(nxt)
                parents[nxt] = (key, label)
                frontier.append(nxt)
    return None


def _read_letters(va: VA, parents: dict, state: int) -> str:
    letters: list[str] = []
    current = state
    while current != va.initial:
        previous, label = parents[current]
        if isinstance(label, Sym):
            letters.append(label.charset.witness())
        current = previous
    return "".join(reversed(letters))


def _read_letters_product(parents: dict, key: tuple) -> str:
    letters: list[str] = []
    current = key
    while current in parents:
        previous, label = parents[current]
        if isinstance(label, Sym):
            letters.append(label.charset.witness())
        current = previous
    return "".join(reversed(letters))


def satisfiable_rgx(expression) -> bool:
    """``Sat[RGX]`` via the Thompson translation.

    Functional RGX is always satisfiable (§4.3) and sequential RGX yields
    sequential automata, so the fast path of Theorem 6.2 applies to the
    tractable fragments; spanRGX in general hits the NP-hard case
    (Theorem 6.1, exercised by benchmark E9).
    """
    from repro.automata.thompson import to_va

    return satisfiable_va(to_va(expression))


def satisfiable_rule(rule: Rule, budget: int = 20_000) -> bool:
    """``Sat`` of extraction rules (Theorem 6.3).

    Sequential tree-like rules are always satisfiable.  Simple rules go
    through the 4.8/4.9 pipeline: the rule is satisfiable iff some
    functional tree-like disjunct survives.  Non-simple rules are not
    supported (the paper's pipeline is stated for simple rules).
    """
    from repro.rules.translate import daglike_to_treelike, to_functional_daglike

    if is_tree_like(rule) and rule.is_sequential():
        return True
    if not rule.is_simple():
        raise NotSupportedError(
            "satisfiability via the 4.8/4.9 pipeline needs a simple rule; "
            "use satisfiable_rule_bounded for brute force"
        )
    for daglike in to_functional_daglike(rule, budget):
        if daglike_to_treelike(daglike, budget):
            return True
    return False


def satisfiable_rule_bounded(
    rule: Rule, max_length: int, alphabet: str | None = None
) -> bool:
    """Brute-force rule satisfiability over documents up to ``max_length``.

    Complete only up to the bound — used to cross-check
    :func:`satisfiable_rule` on small instances.
    """
    from itertools import product as cartesian

    if alphabet is None:
        letters: set[str] = set()
        for formula in rule.formulas():
            for node in _letters_of(formula):
                letters |= node
        alphabet = "".join(sorted(letters)) or "a"
        alphabet += _fresh_letter(alphabet)
    for length in range(max_length + 1):
        for combo in cartesian(alphabet, repeat=length):
            if rule.evaluate("".join(combo)):
                return True
    return False


def _letters_of(formula):
    from repro.rgx.ast import Letter

    from repro.rgx.ast import walk

    for node in walk(formula):
        if isinstance(node, Letter) and not node.charset.negated:
            yield set(node.charset.chars)


def _fresh_letter(alphabet: str) -> str:
    for candidate in "zqwk~":
        if candidate not in alphabet:
            return candidate
    return chr(0x100)
