"""Containment of spanners (paper, Section 6, Theorems 6.4–6.7).

``Containment[L]``: is ``⟦γ1⟧_d ⊆ ⟦γ2⟧_d`` for every document ``d``?

* :func:`contained_va` — the PSPACE algorithm of Theorem 6.4: search for a
  counterexample label sequence over pairs of subset-states, guessing
  either a letter (a character atom) or a coalesced set of variable
  operations, all permutations of which are applied (the paper's
  ``Perm(P)`` closure).  Both automata are sequentialised first so a run's
  operations coincide with its mapping's operations; a global
  per-variable status keeps guessed sequences valid.
* :func:`containment_counterexample` — same search, returning a witness
  ``(document, mapping)`` when containment fails.
* :func:`contained_det_sequential_point_disjoint` — Theorem 6.7's
  polynomial pair-simulation for deterministic sequential automata whose
  mappings are point-disjoint (each ``(d, µ)`` then has a *unique* label
  sequence, so simulating ``A2`` deterministically along ``A1``'s
  transitions is complete).
"""

from __future__ import annotations

from repro.alphabet import CharSet
from repro.automata.determinize import character_atoms
from repro.automata.labels import Close, Eps, Label, Open, Sym
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.va import VA
from repro.spans.mapping import Mapping, Variable
from repro.spans.span import Span
from repro.util.errors import AutomatonError, BudgetExceededError

_FRESH, _OPEN, _DONE = range(3)

DEFAULT_STATE_BUDGET = 200_000


def _closure(va: VA, states: frozenset[int]) -> frozenset[int]:
    seen = set(states)
    frontier = list(states)
    while frontier:
        state = frontier.pop()
        for label, target in va.out_edges(state):
            if isinstance(label, Eps) and target not in seen:
                seen.add(target)
                frontier.append(target)
    return frozenset(seen)


def _step_letter(va: VA, states: frozenset[int], char: str) -> frozenset[int]:
    moved = {
        target
        for state in states
        for label, target in va.out_edges(state)
        if isinstance(label, Sym) and label.charset.contains(char)
    }
    return _closure(va, frozenset(moved))


def _op_reach(
    va: VA,
    states: frozenset[int],
    statuses: dict[Variable, int],
    allowed: frozenset[Label] | None = None,
) -> dict[frozenset[Label], frozenset[int]]:
    """All coalesced operation sets performable from ``states``.

    Returns a map ``O ↦ states reachable performing exactly O`` where the
    union ranges over every ordering of ``O`` valid for the per-variable
    statuses (a close needs its variable open, or its open earlier in the
    same set).  This is the paper's ``Perm(P)`` closure computed by subset
    dynamic programming instead of explicit permutations — same result,
    ``2^{|P|}`` instead of ``|P|!``.
    """
    reach: dict[frozenset[Label], set[int]] = {frozenset(): set(states)}
    frontier: list[tuple[frozenset[Label], frozenset[int]]] = [
        (frozenset(), states)
    ]
    while frontier:
        done, current = frontier.pop()
        for state in current:
            for label, target in va.out_edges(state):
                if not isinstance(label, (Open, Close)):
                    continue
                if allowed is not None and label not in allowed:
                    continue
                if label in done:
                    continue
                if not _op_valid(label, done, statuses):
                    continue
                extended = done | {label}
                closed = _closure(va, frozenset((target,)))
                known = reach.get(extended)
                if known is None:
                    reach[extended] = set(closed)
                    frontier.append((extended, frozenset(closed)))
                elif not closed <= known:
                    known |= closed
                    frontier.append((extended, frozenset(closed)))
    return {ops: frozenset(states) for ops, states in reach.items()}


def _op_valid(op: Label, done: frozenset[Label], statuses: dict[Variable, int]) -> bool:
    variable = op.variable  # type: ignore[union-attr]
    status = statuses.get(variable, _FRESH)
    if isinstance(op, Open):
        return status == _FRESH
    if status == _OPEN:
        return Close(variable) not in done
    return status == _FRESH and Open(variable) in done


class _ContainmentSearch:
    """Breadth-first counterexample search over subset pairs."""

    def __init__(self, first: VA, second: VA, budget: int) -> None:
        self.first = make_sequential(first)
        self.second = make_sequential(second)
        self.budget = budget
        self.variables = tuple(
            sorted(self.first.variables | self.second.variables)
        )
        self.index = {v: i for i, v in enumerate(self.variables)}
        self.atoms = character_atoms(
            self.first.charsets() + self.second.charsets() or [CharSet.any()]
        )

    def counterexample(self) -> tuple[str, Mapping] | None:
        # The fourth component flags that operations were already guessed
        # at the current position: the paper coalesces all operations
        # between two letters into ONE set, and splitting them across two
        # guesses would deny the right automaton its reorderings.
        initial = (
            _closure(self.first, frozenset((self.first.initial,))),
            _closure(self.second, frozenset((self.second.initial,))),
            (_FRESH,) * len(self.variables),
            False,
        )
        parents: dict[tuple, tuple[tuple, object]] = {}
        seen = {initial}
        frontier = [initial]
        while frontier:
            if len(seen) > self.budget:
                raise BudgetExceededError("containment search", self.budget)
            key = frontier.pop(0)
            s1, s2, statuses, ops_done_here = key
            if self.first.final in s1 and self.second.final not in s2:
                return self._rebuild(parents, key)
            # Guess a letter atom (moves to the next position).
            for atom in self.atoms:
                char = atom.witness()
                n1 = _step_letter(self.first, s1, char)
                if not n1:
                    continue  # A1 dies: never a counterexample down this path
                n2 = _step_letter(self.second, s2, char)
                nxt = (n1, n2, statuses, False)
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = (key, char)
                    frontier.append(nxt)
            if ops_done_here:
                continue
            # Guess the coalesced operation set of this position: exactly
            # the sets the left automaton can realise (subset DP); the
            # right automaton is then given every ordering of the same set.
            statuses_map = {
                variable: statuses[i]
                for i, variable in enumerate(self.variables)
            }
            first_reach = _op_reach(self.first, s1, statuses_map)
            for ops, n1 in first_reach.items():
                if not ops or not n1:
                    continue
                n2 = _op_reach(
                    self.second, s2, statuses_map, allowed=ops
                ).get(ops, frozenset())
                nxt = (n1, n2, self._update(statuses, ops), True)
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = (key, ops)
                    frontier.append(nxt)
        return None

    def _update(self, statuses: tuple[int, ...], ops: frozenset[Label]) -> tuple[int, ...]:
        updated = list(statuses)
        for op in ops:
            i = self.index[op.variable]  # type: ignore[union-attr]
            if isinstance(op, Open):
                updated[i] = _OPEN
            else:
                updated[i] = _DONE
        return tuple(updated)

    def _rebuild(self, parents: dict, key: tuple) -> tuple[str, Mapping]:
        steps: list[object] = []
        current = key
        while current in parents:
            previous, step = parents[current]
            steps.append(step)
            current = previous
        steps.reverse()
        document: list[str] = []
        opened: dict[Variable, int] = {}
        assignments: dict[Variable, Span] = {}
        for step in steps:
            if isinstance(step, str):
                document.append(step)
                continue
            position = len(document) + 1
            for op in sorted(step, key=str):
                if isinstance(op, Open):
                    opened[op.variable] = position
                else:
                    assignments[op.variable] = Span(opened[op.variable], position)
        return "".join(document), Mapping(assignments)


def containment_counterexample(
    first: VA, second: VA, budget: int = DEFAULT_STATE_BUDGET
) -> tuple[str, Mapping] | None:
    """A ``(document, mapping)`` with ``µ ∈ ⟦A1⟧_d \\ ⟦A2⟧_d``, if any."""
    return _ContainmentSearch(first, second, budget).counterexample()


def contained_va(first: VA, second: VA, budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """Theorem 6.4's algorithm: ``⟦A1⟧_d ⊆ ⟦A2⟧_d`` for all documents."""
    return containment_counterexample(first, second, budget) is None


def equivalent_va(first: VA, second: VA, budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """Semantic equivalence — containment both ways."""
    return contained_va(first, second, budget) and contained_va(
        second, first, budget
    )


# ---------------------------------------------------------------------------
# Theorem 6.7: deterministic sequential point-disjoint containment in PTIME
# ---------------------------------------------------------------------------


def _accepting_states(va: VA) -> frozenset[int]:
    """The final state plus states ε-glued to it (determinisation output)."""
    accepting = {va.final}
    changed = True
    while changed:
        changed = False
        for source, label, target in va.transitions:
            if isinstance(label, Eps) and target in accepting and source not in accepting:
                accepting.add(source)
                changed = True
    return frozenset(accepting)


def contained_det_sequential_point_disjoint(first: VA, second: VA) -> bool:
    """Theorem 6.7: polynomial containment by synchronous simulation.

    Requires both automata deterministic (up to final ε-glue) and
    sequential, and producing point-disjoint mappings; under those
    assumptions each ``(d, µ)`` of ``A1`` has a unique label sequence, so
    following ``A1``'s transitions while deterministically advancing
    ``A2`` explores all candidate counterexamples.
    """
    for va in (first, second):
        if not is_sequential(va):
            raise AutomatonError("Theorem 6.7 requires sequential automata")
    accepting1 = _accepting_states(first)
    accepting2 = _accepting_states(second)
    dead = -1
    start = (first.initial, second.initial)
    seen = {start}
    frontier = [start]
    while frontier:
        q1, q2 = frontier.pop()
        if q1 in accepting1 and (q2 == dead or q2 not in accepting2):
            return False
        for label, t1 in first.out_edges(q1):
            if isinstance(label, Eps):
                successors: list[tuple[int, int]] = [(t1, q2)]
            else:
                t2 = _unique_successor(second, q2, label) if q2 != dead else dead
                successors = [(t1, t2 if t2 is not None else dead)]
            for nxt in successors:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
    return True


def _unique_successor(va: VA, state: int, label: Label) -> int | None:
    """The deterministic move of ``va`` on a letter/operation (ε-closed
    only through final glue, which has no out-edges)."""
    if isinstance(label, Sym):
        witness = label.charset.witness()
        for candidate, target in va.out_edges(state):
            if isinstance(candidate, Sym) and candidate.charset.contains(witness):
                return target
        return None
    for candidate, target in va.out_edges(state):
        if candidate == label:
            return target
    return None


def contained_bounded(
    first: VA, second: VA, max_length: int, alphabet: str | None = None
) -> bool:
    """Brute-force containment over all documents up to ``max_length``.

    Complete only up to the bound — the cross-validation harness for
    :func:`contained_va` (Lemma D.1-style bounds make small documents
    decisive for small automata).
    """
    from itertools import product as cartesian

    from repro.automata.simulate import evaluate_va

    if alphabet is None:
        letters = representative_alphabet_for(first, second)
    else:
        letters = list(alphabet)
    for length in range(max_length + 1):
        for combo in cartesian(letters, repeat=length):
            document = "".join(combo)
            if not evaluate_va(first, document) <= evaluate_va(second, document):
                return False
    return True


def representative_alphabet_for(first: VA, second: VA) -> list[str]:
    """Representative letters covering both automata's predicates."""
    from repro.alphabet import representative_alphabet

    return representative_alphabet(first.charsets() + second.charsets())


def is_point_disjoint_va(va: VA, probe_documents: list[str]) -> bool:
    """Empirically check point-disjointness on probe documents.

    Exact checking is as hard as evaluation; the benchmarks only need a
    sanity check that their constructed automata have the property.
    """
    from repro.automata.simulate import evaluate_va

    for document in probe_documents:
        for mapping in evaluate_va(va, document):
            if not mapping.is_point_disjoint():
                return False
    return True
