"""Hamiltonian path → relational VA (Proposition 5.4, Figure 4).

The automaton opens every vertex variable at the initial state (in any
subset), then closes one variable per step along edges of the graph; an
accepting run closes ``|V|`` *distinct* variables — possible iff the
closing order follows a Hamiltonian path.  Every accepting run assigns
every variable the span ``(1, 1)`` over the empty document, so the
automaton is *relational* (all outputs share one domain), yet its
non-emptiness is NP-complete — the paper's point that the relational
restriction alone does not buy tractability.
"""

from __future__ import annotations

import random
from itertools import permutations

from repro.automata.labels import EPS, Close, Open
from repro.automata.va import VA, VABuilder

Graph = dict[str, set[str]]


def random_graph(vertex_count: int, edge_probability: float, seed: int = 0) -> Graph:
    """A random directed graph on ``v0 .. v{n-1}``."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(vertex_count)]
    graph: Graph = {v: set() for v in vertices}
    for source in vertices:
        for target in vertices:
            if source != target and rng.random() < edge_probability:
                graph[source].add(target)
    return graph


def brute_force_hamiltonian(graph: Graph) -> bool:
    """Exhaustive Hamiltonian-path check (reference for the tests)."""
    vertices = sorted(graph)
    for order in permutations(vertices):
        if all(order[i + 1] in graph[order[i]] for i in range(len(order) - 1)):
            return True
    return not vertices


def to_relational_va(graph: Graph) -> VA:
    """The Figure 4 construction.

    States: ``q0``, ``qf`` and ``p_{v,i}`` for each vertex ``v`` and level
    ``i ∈ [1, |V|]``.  Transitions: ``(q0, x_v⊢, q0)`` opens any subset of
    vertex variables; ``(q0, ⊣x_v, p_{v,1})`` starts the path anywhere;
    ``(p_{u,i}, ⊣x_v, p_{v,i+1})`` for each edge ``(u, v)``; and
    ``(p_{v,|V|}, ε, qf)``.
    """
    vertices = sorted(graph)
    count = len(vertices)
    builder = VABuilder()
    q0 = builder.add_state()
    qf = builder.add_state()
    level_state: dict[tuple[str, int], int] = {}
    for vertex in vertices:
        for level in range(1, count + 1):
            level_state[(vertex, level)] = builder.add_state()
    for vertex in vertices:
        builder.add(q0, Open(f"x_{vertex}"), q0)
        builder.add(q0, Close(f"x_{vertex}"), level_state[(vertex, 1)])
        builder.add(level_state[(vertex, count)], EPS, qf)
    for source in vertices:
        for target in sorted(graph[source]):
            for level in range(1, count):
                builder.add(
                    level_state[(source, level)],
                    Close(f"x_{target}"),
                    level_state[(target, level + 1)],
                )
    return builder.build(initial=q0, final=qf)


def va_nonempty_on_epsilon(graph: Graph) -> bool:
    """Decide Hamiltonicity through the reduction (NonEmp over ``""``)."""
    from repro.evaluation.eval_problem import non_empty_va

    return non_empty_va(to_relational_va(graph), "")
