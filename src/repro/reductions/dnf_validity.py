"""DNF validity → containment of deterministic sequential VA (Thm 6.6).

A propositional formula in disjunctive normal form (three literals per
clause) is valid iff every valuation satisfies some clause.  The paper
encodes valuations as mappings over the empty document: automaton ``A1``
forces a choice between the gadgets ``p_i`` / ``p̄_i`` for every
proposition and then tags all clause variables; automaton ``A2`` has one
branch per clause accepting exactly the valuations that satisfy it.  Then
``A1 ⊆ A2`` iff the DNF is valid.

Both automata are deterministic and sequential but *not* point-disjoint
(all spans share the point 1), matching Theorem 6.6's coNP-hardness —
benchmark E12 contrasts this with the polynomial point-disjoint case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.automata.va import VA, VABuilder

Literal = tuple[str, bool]  # (proposition, is_positive)


@dataclass(frozen=True)
class DnfFormula:
    """A disjunction of conjunctive clauses (three literals each)."""

    clauses: tuple[tuple[Literal, Literal, Literal], ...]

    @property
    def propositions(self) -> tuple[str, ...]:
        names: set[str] = set()
        for clause in self.clauses:
            for proposition, _ in clause:
                names.add(proposition)
        return tuple(sorted(names))

    def satisfied_by(self, valuation: dict[str, bool]) -> bool:
        return any(
            all(valuation[p] == positive for p, positive in clause)
            for clause in self.clauses
        )


def brute_force_valid(formula: DnfFormula) -> bool:
    """Exhaustive validity check (reference for the tests)."""
    names = formula.propositions
    for values in product((False, True), repeat=len(names)):
        if not formula.satisfied_by(dict(zip(names, values))):
            return False
    return True


def random_dnf(clause_count: int, proposition_count: int, seed: int = 0) -> DnfFormula:
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(max(proposition_count, 3))]
    clauses = []
    for _ in range(clause_count):
        chosen = rng.sample(names, 3)
        clauses.append(tuple((name, rng.random() < 0.5) for name in chosen))
    return DnfFormula(tuple(clauses))


def _literal_variable(proposition: str, positive: bool) -> str:
    return proposition if positive else f"not_{proposition}"


def to_containment_instance(formula: DnfFormula) -> tuple[VA, VA]:
    """The pair ``(A1, A2)`` with ``A1 ⊆ A2`` iff the formula is valid."""
    propositions = formula.propositions
    clauses = formula.clauses

    first = VABuilder()
    chain = first.add_states(len(propositions) + len(clauses) + 1)
    for i, proposition in enumerate(propositions):
        first.add_gadget(chain[i], _literal_variable(proposition, True), chain[i + 1])
        first.add_gadget(chain[i], _literal_variable(proposition, False), chain[i + 1])
    offset = len(propositions)
    for j in range(len(clauses)):
        first.add_gadget(chain[offset + j], f"c{j}", chain[offset + j + 1])
    a1 = first.build(initial=chain[0], final=chain[-1])

    second = VABuilder()
    start = second.add_state()
    final = second.add_state()
    for index, clause in enumerate(clauses):
        current = second.add_state()
        second.add_gadget(start, f"c{index}", current)
        for proposition, positive in clause:
            nxt = second.add_state()
            second.add_gadget(current, _literal_variable(proposition, positive), nxt)
            current = nxt
        in_clause = {proposition for proposition, _ in clause}
        for proposition in propositions:
            if proposition in in_clause:
                continue
            nxt = second.add_state()
            second.add_gadget(current, _literal_variable(proposition, True), nxt)
            second.add_gadget(current, _literal_variable(proposition, False), nxt)
            current = nxt
        for other in range(len(clauses)):
            if other == index:
                continue
            nxt = second.add_state()
            second.add_gadget(current, f"c{other}", nxt)
            current = nxt
        second.add(current, _eps(), final)
    a2 = second.build(initial=start, final=final)
    return a1, a2


def _eps():
    from repro.automata.labels import EPS

    return EPS


def containment_holds(formula: DnfFormula) -> bool:
    """Decide validity through the reduction (general containment)."""
    from repro.analysis.containment import contained_va

    first, second = to_containment_instance(formula)
    return contained_va(first, second)
