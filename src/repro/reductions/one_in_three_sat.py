"""1-IN-3-SAT and the paper's two reductions from it.

1-IN-3-SAT: given clauses of three positive propositional variables,
decide whether some assignment makes *exactly one* variable per clause
true.  The paper uses it twice:

* **Theorem 5.2** — reduction to ``NonEmp[spanRGX]`` over the empty
  document: variable ``x_{i,j}`` is assigned a span iff ``p_{i,j}`` is
  true, and conflict variables ``y_{i,j,k,l}`` occupy both sides of a
  conflict so that incompatible choices would have to assign the same
  variable twice (which Table 2's concatenation forbids);
* **Theorem 5.8** — reduction to satisfiability / non-emptiness of
  *functional dag-like rules* over the document ``#``: spans left of the
  ``#`` encode true, spans right of it false.

Both reductions double as benchmark workload generators (E2, E9, E10) and
are cross-checked against :func:`brute_force_one_in_three` in the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.rgx.ast import EPSILON, Rgx, char, concat, union, var as var_binding
from repro.rules.rule import Rule
from repro.spans.mapping import Variable


@dataclass(frozen=True)
class OneInThreeInstance:
    """A conjunction of clauses, each a triple of positive variables."""

    clauses: tuple[tuple[str, str, str], ...]

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(v for clause in self.clauses for v in clause)

    def satisfied_by(self, assignment: dict[str, bool]) -> bool:
        return all(
            sum(1 for v in clause if assignment.get(v, False)) == 1
            for clause in self.clauses
        )


def brute_force_one_in_three(instance: OneInThreeInstance) -> bool:
    """Exhaustive check — exponential reference solver for the tests."""
    names = sorted(instance.variables)
    for values in product((False, True), repeat=len(names)):
        if instance.satisfied_by(dict(zip(names, values))):
            return True
    return False


def random_instance(
    clause_count: int, variable_count: int, seed: int = 0
) -> OneInThreeInstance:
    """A random instance (variables may repeat across clauses)."""
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(variable_count)]
    clauses = []
    for _ in range(clause_count):
        clauses.append(tuple(rng.sample(names, 3)))
    return OneInThreeInstance(tuple(clauses))


# ---------------------------------------------------------------------------
# Theorem 5.2: 1-IN-3-SAT → NonEmp[spanRGX] on the empty document
# ---------------------------------------------------------------------------


def _conflicts(instance: OneInThreeInstance) -> dict[tuple[int, int], list[Variable]]:
    """``conflict(p_{i,j})`` as variable names ``y_{i,j,k,l}``.

    ``p_{i,j}`` conflicts with ``p_{k,l}`` (``i < k``) when making both
    true is impossible under the one-in-three regime: they name the same
    variable in different clause positions, or share a clause... — the
    paper's two conditions are implemented verbatim below.
    """
    clauses = instance.clauses
    table: dict[tuple[int, int], list[Variable]] = {
        (i, j): [] for i in range(len(clauses)) for j in range(3)
    }
    for i in range(len(clauses)):
        for k in range(i + 1, len(clauses)):
            for j in range(3):
                for l in range(3):
                    in_conflict = False
                    # ∃m: p_{i,j} = p_{k,m} and m ≠ l
                    for m in range(3):
                        if clauses[i][j] == clauses[k][m] and m != l:
                            in_conflict = True
                    # ∃m: p_{i,m} = p_{k,l} and m ≠ j
                    for m in range(3):
                        if clauses[i][m] == clauses[k][l] and m != j:
                            in_conflict = True
                    if in_conflict:
                        name = f"y_{i}_{j}_{k}_{l}"
                        table[(i, j)].append(name)
                        table[(k, l)].append(name)
    return table


def to_spanrgx(instance: OneInThreeInstance) -> Rgx:
    """The spanRGX ``γ_α`` of Theorem 5.2 (evaluate over document ``""``)."""
    conflicts = _conflicts(instance)
    clause_expressions: list[Rgx] = []
    for i in range(len(instance.clauses)):
        options: list[Rgx] = []
        for j in range(3):
            parts: list[Rgx] = [var_binding(f"x_{i}_{j}")]
            parts.extend(var_binding(name) for name in conflicts[(i, j)])
            options.append(concat(*parts))
        clause_expressions.append(union(*options))
    return concat(*clause_expressions) if clause_expressions else EPSILON


def spanrgx_nonempty_on_epsilon(instance: OneInThreeInstance) -> bool:
    """Decide the instance through the reduction (general VA evaluation)."""
    from repro.automata.thompson import to_va
    from repro.evaluation.eval_problem import non_empty_va

    return non_empty_va(to_va(to_spanrgx(instance)), "")


# ---------------------------------------------------------------------------
# Theorem 5.8: 1-IN-3-SAT → NonEmp / Sat of functional dag-like rules
# ---------------------------------------------------------------------------


def to_daglike_rule(instance: OneInThreeInstance) -> Rule:
    """The functional dag-like rule of Theorem 5.8 (document ``#``)."""
    clauses = instance.clauses
    n = len(clauses)
    conjuncts: list[tuple[Variable, Rgx]] = []
    for i in range(n):
        p1, p2, p3 = (var_binding(v) for v in clauses[i])
        if i < n - 1:
            nxt = var_binding(f"c{i + 1}")
            formula = union(
                concat(p1, nxt, p2, p3),
                concat(p2, nxt, p1, p3),
                concat(p3, nxt, p1, p2),
            )
        else:
            middle = concat(var_binding("T"), char("#"), var_binding("F"))
            formula = union(
                concat(p1, middle, p2, p3),
                concat(p2, middle, p1, p3),
                concat(p3, middle, p1, p2),
            )
        conjuncts.append((f"c{i}", formula))
    root = concat(var_binding("T"), var_binding("c0"), var_binding("F"))
    return Rule(root, tuple(conjuncts))


def rule_nonempty_on_hash(instance: OneInThreeInstance) -> bool:
    """Decide the instance through the Theorem 5.8 reduction."""
    return bool(to_daglike_rule(instance).evaluate("#"))
