"""The paper's hardness reductions, doubling as benchmark workloads."""

from repro.reductions.dnf_validity import (
    DnfFormula,
    brute_force_valid,
    containment_holds,
    random_dnf,
    to_containment_instance,
)
from repro.reductions.hamiltonian import (
    brute_force_hamiltonian,
    random_graph,
    to_relational_va,
    va_nonempty_on_epsilon,
)
from repro.reductions.one_in_three_sat import (
    OneInThreeInstance,
    brute_force_one_in_three,
    random_instance,
    rule_nonempty_on_hash,
    spanrgx_nonempty_on_epsilon,
    to_daglike_rule,
    to_spanrgx,
)

__all__ = [
    "DnfFormula",
    "OneInThreeInstance",
    "brute_force_hamiltonian",
    "brute_force_one_in_three",
    "brute_force_valid",
    "containment_holds",
    "random_dnf",
    "random_graph",
    "random_instance",
    "rule_nonempty_on_hash",
    "spanrgx_nonempty_on_epsilon",
    "to_containment_instance",
    "to_daglike_rule",
    "to_relational_va",
    "to_spanrgx",
]
