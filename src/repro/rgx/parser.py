"""Concrete syntax parser for variable regex.

The syntax mirrors the paper's notation as closely as plain text allows:

===========================  ==================================================
Syntax                       Meaning
===========================  ==================================================
``a``                        a letter of the alphabet
``ε`` or ``\\e``             the empty word
``.``                        ``Σ`` — any single letter
``[abc]`` / ``[^abc]``       a letter in / not in the set (ranges ``[a-z]`` ok)
``x{γ}``                     bind the span of ``γ`` to variable ``x``
``γ1γ2``                     concatenation (juxtaposition)
``γ1|γ2``                    union
``γ*`` / ``γ+`` / ``γ?``     Kleene star / plus (sugar) / optional (sugar)
``(γ)``                      grouping
``\\x``                      escape a metacharacter (also ``\\n``, ``\\t``)
===========================  ==================================================

A variable name is an identifier (``[A-Za-z_][A-Za-z0-9_]*``) **immediately
followed by** ``{``; any other identifier character is an ordinary letter.
Whitespace is significant (documents contain spaces), exactly as in the
paper's CSV examples.

>>> from repro.rgx import parse
>>> parse("a|b").options
(Letter(charset=CharSet(chars=frozenset({'a'}), negated=False)), Letter(charset=CharSet(chars=frozenset({'b'}), negated=False)))
"""

from __future__ import annotations

from repro.alphabet import CharSet
from repro.rgx.ast import (
    EPSILON,
    Letter,
    Rgx,
    Star,
    VarBind,
    concat,
    optional,
    plus,
    union,
)
from repro.util.errors import ParseError

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "e": ""}


class _Parser:
    """A hand-written recursive-descent parser (union < concat < postfix)."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- character stream ------------------------------------------------------

    def _peek(self) -> str | None:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def _advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def _expect(self, char: str) -> None:
        if self._peek() != char:
            raise ParseError(f"expected {char!r}", self.pos)
        self._advance()

    def _fail(self, message: str) -> ParseError:
        return ParseError(message, self.pos)

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> Rgx:
        expression = self._union()
        if self.pos != len(self.text):
            raise self._fail(f"unexpected character {self._peek()!r}")
        return expression

    def _union(self) -> Rgx:
        options = [self._concat()]
        while self._peek() == "|":
            self._advance()
            options.append(self._concat())
        return union(*options)

    def _concat(self) -> Rgx:
        parts: list[Rgx] = []
        while True:
            char = self._peek()
            if char is None or char in ")|}":
                break
            parts.append(self._postfix())
        if not parts:
            return EPSILON
        return concat(*parts)

    def _postfix(self) -> Rgx:
        expression = self._atom()
        while True:
            char = self._peek()
            if char == "*":
                self._advance()
                expression = Star(expression)
            elif char == "+":
                self._advance()
                expression = plus(expression)
            elif char == "?":
                self._advance()
                expression = optional(expression)
            else:
                return expression

    def _atom(self) -> Rgx:
        char = self._peek()
        if char is None:
            raise self._fail("unexpected end of expression")
        if char == "(":
            self._advance()
            inner = self._union()
            self._expect(")")
            return inner
        if char == "[":
            return self._char_class()
        if char == ".":
            self._advance()
            return Letter(CharSet.any())
        if char == "ε":
            self._advance()
            return EPSILON
        if char == "\\":
            return self._escaped()
        if char in "{}*+?":
            raise self._fail(f"unexpected metacharacter {char!r}")
        if char in _IDENT_START:
            return self._identifier_or_letters()
        self._advance()
        return Letter(CharSet.single(char))

    def _escaped(self) -> Rgx:
        self._advance()  # the backslash
        char = self._peek()
        if char is None:
            raise self._fail("dangling escape")
        self._advance()
        if char in _ESCAPES:
            replacement = _ESCAPES[char]
            if replacement == "":
                return EPSILON
            return Letter(CharSet.single(replacement))
        return Letter(CharSet.single(char))

    def _identifier_or_letters(self) -> Rgx:
        """Disambiguate ``x{...}`` (variable) from a run of letter characters.

        We scan the identifier; if it is immediately followed by ``{`` the
        whole identifier is a variable name, otherwise we consume only its
        *first* character as a letter (the rest will be parsed as further
        concatenation atoms, keeping ``ab*`` == ``a(b)*``).
        """
        start = self.pos
        while self._peek() is not None and self.text[self.pos] in _IDENT_CONT:
            self.pos += 1
        identifier = self.text[start : self.pos]
        if self._peek() == "{":
            self._advance()
            body = self._union()
            self._expect("}")
            return VarBind(identifier, body)
        # Not a variable: rewind and emit a single letter.
        self.pos = start + 1
        return Letter(CharSet.single(self.text[start]))

    def _char_class(self) -> Rgx:
        self._expect("[")
        negated = False
        if self._peek() == "^":
            negated = True
            self._advance()
        members: set[str] = set()
        while True:
            char = self._peek()
            if char is None:
                raise self._fail("unterminated character class")
            if char == "]":
                self._advance()
                break
            if char == "\\":
                self._advance()
                escaped = self._peek()
                if escaped is None:
                    raise self._fail("dangling escape in character class")
                self._advance()
                members.add(_ESCAPES.get(escaped, escaped) or escaped)
                continue
            self._advance()
            if self._peek() == "-" and self.pos + 1 < len(self.text) and self.text[self.pos + 1] != "]":
                self._advance()  # the dash
                high = self._advance()
                if ord(high) < ord(char):
                    raise self._fail(f"invalid range {char}-{high}")
                members.update(chr(code) for code in range(ord(char), ord(high) + 1))
            else:
                members.add(char)
        if not members and not negated:
            raise self._fail("empty character class matches nothing")
        return Letter(CharSet(frozenset(members), negated=negated))


def parse(text: str) -> Rgx:
    """Parse concrete RGX syntax into an AST.

    >>> parse("x{a*}b").parts[0].variable
    'x'
    """
    return _Parser(text).parse()
