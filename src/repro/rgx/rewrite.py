"""Conservative, semantics-preserving RGX simplifications.

State elimination (Theorem 4.3) and the rule translations of Section 4.3
generate syntactically noisy expressions (``ε . (ε . a)* . ε`` and the
like).  :func:`simplify` applies identities that hold under the Table 2
mapping semantics for *arbitrary* RGX (each is justified in the code):

* ``ε`` units in concatenations are dropped;
* ``ε* = ε`` and ``(γ*)* = γ*``;
* duplicate union options are merged;
* singleton concatenations/unions collapse.

The simplifier never changes ``⟦γ⟧_d`` (property-tested against the
reference evaluator).
"""

from __future__ import annotations

from repro.rgx.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Rgx,
    Star,
    Union,
    VarBind,
    concat,
    union,
)


def simplify(expression: Rgx) -> Rgx:
    """Apply the identities bottom-up until no rule fires."""
    previous = None
    current = expression
    while current != previous:
        previous = current
        current = _once(current)
    return current


def _once(expression: Rgx) -> Rgx:
    if isinstance(expression, VarBind):
        return VarBind(expression.variable, _once(expression.body))
    if isinstance(expression, Concat):
        parts = [_once(part) for part in expression.parts]
        # [R . ε] = [R]: an empty span concatenates neutrally and
        # contributes the empty mapping, so ε units can be dropped.
        parts = [part for part in parts if not isinstance(part, Epsilon)]
        return concat(*parts) if parts else EPSILON
    if isinstance(expression, Union):
        options: list[Rgx] = []
        for option in expression.options:
            rewritten = _once(option)
            if rewritten not in options:  # deduplicate, preserving order
                options.append(rewritten)
        return union(*options)
    if isinstance(expression, Star):
        body = _once(expression.body)
        if isinstance(body, Epsilon):
            # ε* derives only empty spans with empty mappings — exactly ε.
            return EPSILON
        if isinstance(body, Star):
            # (γ*)* and γ* denote the same concatenation closure.
            return body
        return Star(body)
    return expression
