"""Syntactic classes of RGX: functional, sequential, spanRGX.

* **funcRGX** (Section 4.1) — the original regex formulas of Fagin et al.:
  every word derivable from the expression assigns *exactly* the same set of
  variables, namely ``var(γ)``.
* **seqRGX** (Section 5.2) — the paper's key tractability condition: no
  variable is shared between concatenated subexpressions, stars are
  variable-free (and, so that Theorem 5.7's induction goes through, a
  binding ``x{γ}`` never re-mentions ``x`` inside ``γ``).
* **spanRGX** (Section 3.3) — the span regular expressions of Arenas et al.:
  every binding's body is ``Σ*``.

``funcRGX ⊆ seqRGX`` (used by Proposition 5.3), which is property-tested.
"""

from __future__ import annotations

from repro.rgx.ast import (
    ANY_STAR,
    Concat,
    Epsilon,
    Letter,
    Rgx,
    Star,
    Union,
    VarBind,
)
from repro.spans.mapping import Variable
from repro.util.errors import SpannerError


def functional_set(expression: Rgx) -> frozenset[Variable] | None:
    """The unique ``X`` such that the expression is functional wrt ``X``.

    Returns ``None`` when the expression is not functional.  Every RGX
    derives at least one word (there is no ``∅``), so when the expression is
    functional the witness set is unique and equals ``var(γ)``.
    """
    if isinstance(expression, (Epsilon, Letter)):
        return frozenset()
    if isinstance(expression, VarBind):
        inner = functional_set(expression.body)
        if inner is None or expression.variable in inner:
            return None
        return inner | {expression.variable}
    if isinstance(expression, Concat):
        combined: frozenset[Variable] = frozenset()
        for part in expression.parts:
            part_set = functional_set(part)
            if part_set is None or combined & part_set:
                return None
            combined |= part_set
        return combined
    if isinstance(expression, Union):
        sets = [functional_set(option) for option in expression.options]
        first = sets[0]
        if first is None or any(other != first for other in sets[1:]):
            return None
        return first
    if isinstance(expression, Star):
        if expression.body.variables():
            return None
        return frozenset()
    raise SpannerError(f"unknown RGX node {expression!r}")


def is_functional(expression: Rgx) -> bool:
    """Membership in funcRGX — the class of Theorem 4.1."""
    return functional_set(expression) is not None


def is_sequential(expression: Rgx) -> bool:
    """Membership in seqRGX — the tractable fragment of Theorem 5.7."""
    if isinstance(expression, (Epsilon, Letter)):
        return True
    if isinstance(expression, VarBind):
        if expression.variable in expression.body.variables():
            return False
        return is_sequential(expression.body)
    if isinstance(expression, Concat):
        seen: set[Variable] = set()
        for part in expression.parts:
            part_vars = part.variables()
            if seen & part_vars:
                return False
            seen |= part_vars
        return all(is_sequential(part) for part in expression.parts)
    if isinstance(expression, Union):
        return all(is_sequential(option) for option in expression.options)
    if isinstance(expression, Star):
        return not expression.body.variables()
    raise SpannerError(f"unknown RGX node {expression!r}")


def is_span_rgx(expression: Rgx) -> bool:
    """Membership in spanRGX: every binding body is ``Σ*`` (Section 3.3)."""
    if isinstance(expression, (Epsilon, Letter)):
        return True
    if isinstance(expression, VarBind):
        return expression.body == ANY_STAR
    if isinstance(expression, (Concat, Union)):
        return all(is_span_rgx(child) for child in expression.children())
    if isinstance(expression, Star):
        return is_span_rgx(expression.body)
    raise SpannerError(f"unknown RGX node {expression!r}")


def is_proper_span_rgx(expression: Rgx) -> bool:
    """The *proper* span regular expressions of Theorem 4.2.

    [2] syntactically allows ``x{Σ*} . x{Σ*}``, which under mapping
    semantics is unsatisfiable; proper expressions prohibit reusing a
    variable along a concatenation or under a star.  On spanRGX this
    coincides with sequentiality.
    """
    return is_span_rgx(expression) and is_sequential(expression)


def is_variable_free(expression: Rgx) -> bool:
    """True for ordinary regular expressions (no capture variables)."""
    return not expression.variables()


def derives_epsilon(expression: Rgx) -> bool:
    """Can the expression derive the empty word (ignoring variables)?

    Variables binding the empty span are permitted, so ``x{ε}`` derives ε
    in the sense relevant here: it can match an empty region.
    """
    if isinstance(expression, Epsilon):
        return True
    if isinstance(expression, Letter):
        return False
    if isinstance(expression, Star):
        return True
    if isinstance(expression, VarBind):
        return derives_epsilon(expression.body)
    if isinstance(expression, Concat):
        return all(derives_epsilon(part) for part in expression.parts)
    if isinstance(expression, Union):
        return any(derives_epsilon(option) for option in expression.options)
    raise SpannerError(f"unknown RGX node {expression!r}")


def derives_only_epsilon(expression: Rgx) -> bool:
    """Can the expression *only* match empty regions?

    Used by the cycle-elimination colouring of Theorem 4.7 (a node is black
    when every derivable word contains an alphabet symbol — i.e. when its
    expression does not satisfy this predicate ... see `nu`):
    here we ask the dual question needed by Proposition 4.9's rewriting.
    """
    if isinstance(expression, Epsilon):
        return True
    if isinstance(expression, Letter):
        return False
    if isinstance(expression, Star):
        return derives_only_epsilon(expression.body)
    if isinstance(expression, VarBind):
        return derives_only_epsilon(expression.body)
    if isinstance(expression, Concat):
        return all(derives_only_epsilon(part) for part in expression.parts)
    if isinstance(expression, Union):
        return all(derives_only_epsilon(option) for option in expression.options)
    raise SpannerError(f"unknown RGX node {expression!r}")
