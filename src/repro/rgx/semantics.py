"""The denotational semantics of RGX — a direct implementation of Table 2.

This is the library's *reference evaluator*: it computes the two-layer
semantics exactly as the paper defines it,

* ``[γ]_d``  — the set of pairs ``(s, µ)`` where subexpression ``γ`` parses
  the span ``s`` of document ``d`` producing partial mapping ``µ``;
* ``⟦γ⟧_d`` — the mappings whose span is the whole document.

The Kleene-star case is the infinite union ``[ε] ∪ [R] ∪ [R²] ∪ ...``,
computed as a least fixpoint (finite because there are finitely many spans
and finitely many mappings over a fixed document).

The evaluator is deliberately naive — worst-case exponential — because its
job is to be *obviously correct*: every automaton evaluator and every
language translation in this library is cross-validated against it.  Use
:mod:`repro.evaluation` for efficient evaluation.
"""

from __future__ import annotations

from repro.rgx.ast import Concat, Epsilon, Letter, Rgx, Star, Union, VarBind
from repro.spans.document import Document, as_text
from repro.spans.mapping import Mapping
from repro.spans.span import Span
from repro.util.errors import SpannerError

Pair = tuple[Span, Mapping]


def pair_semantics(expression: Rgx, document: "Document | str") -> set[Pair]:
    """``[γ]_d`` from Table 2 — all (span, mapping) parses of subspans."""
    text = as_text(document)
    cache: dict[Rgx, set[Pair]] = {}
    return _pairs(expression, text, cache)


def mappings(expression: Rgx, document: "Document | str") -> set[Mapping]:
    """``⟦γ⟧_d`` — the output of the spanner on the document (Table 2).

    >>> from repro.rgx import parse
    >>> sorted(m["x"] for m in mappings(parse("x{a*}b*"), "aabb"))
    [Span(begin=1, end=3)]
    """
    text = as_text(document)
    whole = Span(1, len(text) + 1)
    return {mu for span, mu in pair_semantics(expression, text) if span == whole}


def _pairs(expression: Rgx, text: str, cache: dict[Rgx, set[Pair]]) -> set[Pair]:
    cached = cache.get(expression)
    if cached is not None:
        return cached
    if isinstance(expression, Epsilon):
        result = {
            (Span(i, i), Mapping.empty()) for i in range(1, len(text) + 2)
        }
    elif isinstance(expression, Letter):
        result = {
            (Span(i, i + 1), Mapping.empty())
            for i in range(1, len(text) + 1)
            if expression.charset.contains(text[i - 1])
        }
    elif isinstance(expression, VarBind):
        body_pairs = _pairs(expression.body, text, cache)
        result = {
            (span, mu.extend(expression.variable, span))
            for span, mu in body_pairs
            if expression.variable not in mu
        }
    elif isinstance(expression, Concat):
        result = _pairs(expression.parts[0], text, cache)
        for part in expression.parts[1:]:
            result = _concatenate(result, _pairs(part, text, cache))
    elif isinstance(expression, Union):
        result = set()
        for option in expression.options:
            result |= _pairs(option, text, cache)
    elif isinstance(expression, Star):
        result = _star(_pairs(expression.body, text, cache), text)
    else:
        raise SpannerError(f"unknown RGX node {expression!r}")
    cache[expression] = result
    return result


def _concatenate(left: set[Pair], right: set[Pair]) -> set[Pair]:
    """Table 2's rule for ``R1 . R2``: adjacent spans, disjoint domains.

    Indexes the right-hand pairs by begin position so the merge is linear in
    the number of *matching* pairs rather than the full cross product.
    """
    by_begin: dict[int, list[Pair]] = {}
    for span, mu in right:
        by_begin.setdefault(span.begin, []).append((span, mu))
    result: set[Pair] = set()
    for span1, mu1 in left:
        for span2, mu2 in by_begin.get(span1.end, ()):
            if mu1.domain & mu2.domain:
                continue
            result.add((span1.concatenate(span2), mu1.disjoint_union(mu2)))
    return result


def _star(body_pairs: set[Pair], text: str) -> set[Pair]:
    """``[R*] = [ε] ∪ [R] ∪ [R²] ∪ ...`` as a least fixpoint."""
    result: set[Pair] = {
        (Span(i, i), Mapping.empty()) for i in range(1, len(text) + 2)
    }
    frontier = set(result)
    while frontier:
        grown = _concatenate(frontier, body_pairs)
        frontier = grown - result
        result |= frontier
    return result


def outputs_relation(expression: Rgx, document: "Document | str") -> bool:
    """True when ``⟦γ⟧_d`` is a *relation*: all mappings share one domain.

    Functional RGX always satisfies this (Theorem 4.1); general RGX need not.
    """
    produced = mappings(expression, document)
    domains = {mu.domain for mu in produced}
    return len(domains) <= 1


def classical_semantics(expression: Rgx, document: "Document | str") -> set[Mapping]:
    """The semantics of [2]'s span regular expressions (Theorem 4.2).

    ``⟦γ⟧'_d = M ⋈ ⟦γ⟧_d`` where ``M`` is the set of all *total* functions
    from ``var(γ)`` to ``span(d)``: variables the expression does not match
    take arbitrary values.  Exponential — small documents only.
    """
    from repro.spans.mapping import all_total_mappings, join

    text = as_text(document)
    total = all_total_mappings(expression.variables(), len(text))
    return join(total, mappings(expression, text))
