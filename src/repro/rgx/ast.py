"""Abstract syntax of variable regex (RGX) — paper, Section 3.1.

The grammar is::

    γ := ε | a | x{γ} | γ . γ | γ | γ | γ*

with ``a ∈ Σ`` and ``x ∈ V``.  Two ergonomic extensions that do not change
expressiveness:

* letters are :class:`~repro.alphabet.CharSet` predicates, so ``Σ`` (any
  letter) and ``Σ - S`` are single nodes instead of huge unions — exactly how
  the paper itself writes expressions such as ``x{(Σ - {,})*}``;
* concatenation and union are n-ary (flattened), which keeps printed
  expressions readable; semantics are unaffected by associativity.

Nodes are immutable and hashable; ``str()`` produces concrete syntax that
:func:`repro.rgx.parser.parse` reads back (round-trip property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alphabet import CharSet
from repro.spans.mapping import Variable
from repro.util.errors import SpannerError

# Characters that must be escaped in concrete syntax.
_META = set("(){}|*+?.[]\\ε")


def _escape(char: str) -> str:
    if char in _META or char in "\n\t\r":
        named = {"\n": "\\n", "\t": "\\t", "\r": "\\r"}
        return named.get(char, "\\" + char)
    return char


def _starts_with_binding(piece: str) -> bool:
    """Does the printed text begin with ``ident{`` (a variable binding)?"""
    index = 0
    while index < len(piece) and (piece[index].isalnum() or piece[index] == "_"):
        index += 1
    return index > 0 and index < len(piece) and piece[index] == "{"


@dataclass(frozen=True)
class Rgx:
    """Base class of RGX nodes."""

    def variables(self) -> frozenset[Variable]:
        """``var(γ)`` — all variables occurring in the expression."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of AST nodes (the |γ| used in complexity statements)."""
        raise NotImplementedError

    def children(self) -> tuple["Rgx", ...]:
        return ()

    # precedence levels for printing: union 0 < concat 1 < star/atom 2
    def _precedence(self) -> int:
        return 2

    def _printed(self, parent_precedence: int) -> str:
        text = str(self)
        if self._precedence() < parent_precedence:
            return f"({text})"
        return text

    def __or__(self, other: "Rgx") -> "Rgx":
        return union(self, other)

    def __mul__(self, other: "Rgx") -> "Rgx":
        return concat(self, other)


@dataclass(frozen=True)
class Epsilon(Rgx):
    """The empty word ``ε``."""

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Letter(Rgx):
    """A single-letter predicate: one character drawn from a charset.

    ``Letter(CharSet.single("a"))`` is the paper's ``a``;
    ``Letter(CharSet.any())`` is ``Σ``; printed as ``.`` / classes ``[...]``.
    """

    charset: CharSet

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        if self.charset.is_single():
            return _escape(self.charset.the_single())
        if self.charset.negated and not self.charset.chars:
            return "."
        prefix = "^" if self.charset.negated else ""
        listed = "".join(_escape(c) for c in sorted(self.charset.chars))
        return f"[{prefix}{listed}]"


@dataclass(frozen=True)
class VarBind(Rgx):
    """``x{γ}`` — capture the span matched by ``γ`` into variable ``x``."""

    variable: Variable
    body: Rgx

    def variables(self) -> frozenset[Variable]:
        return self.body.variables() | {self.variable}

    def size(self) -> int:
        return 1 + self.body.size()

    def children(self) -> tuple[Rgx, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"{self.variable}{{{self.body}}}"


@dataclass(frozen=True)
class Concat(Rgx):
    """``γ1 . γ2 . ... . γn`` (n-ary, n >= 2, flattened)."""

    parts: tuple[Rgx, ...]
    _vars: frozenset[Variable] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise SpannerError("Concat requires at least two parts")
        if any(isinstance(part, Concat) for part in self.parts):
            raise SpannerError("Concat parts must be flattened (use concat())")
        object.__setattr__(self, "_vars", None)

    def variables(self) -> frozenset[Variable]:
        if self._vars is None:
            combined = frozenset().union(*(p.variables() for p in self.parts))
            object.__setattr__(self, "_vars", combined)
        return self._vars

    def size(self) -> int:
        return 1 + sum(part.size() for part in self.parts)

    def children(self) -> tuple[Rgx, ...]:
        return self.parts

    def _precedence(self) -> int:
        return 1

    def __str__(self) -> str:
        pieces: list[str] = []
        for part in self.parts:
            piece = part._printed(1)
            if (
                pieces
                and pieces[-1]
                and (pieces[-1][-1].isalnum() or pieces[-1][-1] == "_")
                and _starts_with_binding(piece)
            ):
                # "a" followed by "y{...}" would re-parse as variable "ay";
                # parenthesise the binding to keep printing injective.
                piece = f"({piece})"
            pieces.append(piece)
        return "".join(pieces)


@dataclass(frozen=True)
class Union(Rgx):
    """``γ1 | γ2 | ... | γn`` (n-ary, n >= 2, flattened)."""

    options: tuple[Rgx, ...]
    _vars: frozenset[Variable] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise SpannerError("Union requires at least two options")
        if any(isinstance(option, Union) for option in self.options):
            raise SpannerError("Union options must be flattened (use union())")
        object.__setattr__(self, "_vars", None)

    def variables(self) -> frozenset[Variable]:
        if self._vars is None:
            combined = frozenset().union(*(o.variables() for o in self.options))
            object.__setattr__(self, "_vars", combined)
        return self._vars

    def size(self) -> int:
        return 1 + sum(option.size() for option in self.options)

    def children(self) -> tuple[Rgx, ...]:
        return self.options

    def _precedence(self) -> int:
        return 0

    def __str__(self) -> str:
        return "|".join(option._printed(1) for option in self.options)


@dataclass(frozen=True)
class Star(Rgx):
    """``γ*`` — Kleene closure."""

    body: Rgx

    def variables(self) -> frozenset[Variable]:
        return self.body.variables()

    def size(self) -> int:
        return 1 + self.body.size()

    def children(self) -> tuple[Rgx, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"{self.body._printed(2)}*"


# ---------------------------------------------------------------------------
# smart constructors (the public way to build expressions programmatically)
# ---------------------------------------------------------------------------

EPSILON = Epsilon()
ANY = Letter(CharSet.any())
ANY_STAR = Star(ANY)


def char(letter: str) -> Letter:
    """A single concrete letter ``a``."""
    if len(letter) != 1:
        raise SpannerError(f"char() takes a single character, got {letter!r}")
    return Letter(CharSet.single(letter))


def chars(allowed: str) -> Letter:
    """One letter from a finite set, e.g. ``chars("abc")`` is ``[abc]``."""
    return Letter(CharSet.of(allowed))


def not_chars(excluded: str) -> Letter:
    """One letter *not* in the set — the paper's ``Σ - {...}``."""
    return Letter(CharSet.excluding(excluded))


def string(text: str) -> Rgx:
    """The concatenation of the letters of ``text`` (``ε`` when empty)."""
    if not text:
        return EPSILON
    if len(text) == 1:
        return char(text)
    return Concat(tuple(char(c) for c in text))


def concat(*parts: Rgx) -> Rgx:
    """Flattening n-ary concatenation; identity on a single part."""
    flat: list[Rgx] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*options: Rgx) -> Rgx:
    """Flattening n-ary union; identity on a single option."""
    flat: list[Rgx] = []
    for option in options:
        if isinstance(option, Union):
            flat.extend(option.options)
        else:
            flat.append(option)
    if not flat:
        raise SpannerError("union() of zero options (the paper's RGX has no ∅)")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(body: Rgx) -> Star:
    """``γ*``."""
    return Star(body)


def plus(body: Rgx) -> Rgx:
    """``γ+`` — sugar for ``γ . γ*``."""
    return concat(body, Star(body))


def optional(body: Rgx) -> Rgx:
    """``γ?`` — sugar for ``γ | ε``; the paper's idiom for optional fields."""
    return union(body, EPSILON)


def var(variable: Variable, body: Rgx | None = None) -> VarBind:
    """``x{γ}``; with no body, the spanRGX convention ``x{Σ*}``."""
    return VarBind(variable, ANY_STAR if body is None else body)


def concat_all(parts: list[Rgx]) -> Rgx:
    """Concatenation of a list (``ε`` when empty)."""
    return concat(*parts) if parts else EPSILON


def union_all(options: list[Rgx]) -> Rgx:
    """Union of a non-empty list."""
    return union(*options)


def walk(expression: Rgx):
    """Yield every subexpression, root first (pre-order)."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def map_expression(expression: Rgx, transform) -> Rgx:
    """Rebuild an expression bottom-up, applying ``transform`` to each node.

    ``transform(node)`` receives a node whose children have already been
    transformed, and returns its replacement.
    """
    if isinstance(expression, VarBind):
        rebuilt: Rgx = VarBind(expression.variable, map_expression(expression.body, transform))
    elif isinstance(expression, Concat):
        rebuilt = concat(*(map_expression(p, transform) for p in expression.parts))
    elif isinstance(expression, Union):
        rebuilt = union(*(map_expression(o, transform) for o in expression.options))
    elif isinstance(expression, Star):
        rebuilt = Star(map_expression(expression.body, transform))
    else:
        rebuilt = expression
    return transform(rebuilt)


def rename_variables(expression: Rgx, renaming: dict[Variable, Variable]) -> Rgx:
    """A copy of the expression with variables renamed."""

    def transform(node: Rgx) -> Rgx:
        if isinstance(node, VarBind) and node.variable in renaming:
            return VarBind(renaming[node.variable], node.body)
        return node

    return map_expression(expression, transform)
