"""Polynomial-delay enumeration via the ``Eval`` oracle (Theorem 5.1).

Algorithm 2 of the paper: refine an extended mapping one variable at a
time, trying every span of the document plus ``⊥``, and recurse only when
the oracle confirms a completion still exists.  When ``Eval`` is decidable
in polynomial time — sequential RGX/VA, Theorem 5.7 — the time between two
consecutive outputs is ``O(|vars| · |d|² · poly)``, a polynomial delay.

The module also exposes :func:`enumerate_direct`, the run-DAG evaluator of
:mod:`repro.automata.simulate`, as the non-oracle baseline for ablation A1.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.automata.va import VA
from repro.evaluation.eval_problem import eval_va
from repro.spans.document import Document, as_text
from repro.spans.mapping import NULL, ExtendedMapping, Mapping, Variable
from repro.spans.span import Span

EvalOracle = Callable[[ExtendedMapping], bool]


def enumerate_with_oracle(
    oracle: EvalOracle,
    variables: Iterable[Variable],
    document: "Document | str",
    start: ExtendedMapping | None = None,
) -> Iterator[Mapping]:
    """Algorithm 2, generic in the oracle.

    Yields every mapping ``µ' ∈ ⟦γ⟧_d`` with ``µ' ⊇ start`` exactly once
    (each output corresponds to one full assignment of spans/⊥ to the
    variables, and distinct assignments yield distinct mappings).
    """
    text = as_text(document)
    ordered = sorted(set(variables))
    spans = [Span(i, j) for i in range(1, len(text) + 2) for j in range(i, len(text) + 2)]
    initial = ExtendedMapping.empty() if start is None else start

    def recurse(current: ExtendedMapping, remaining: list[Variable]) -> Iterator[Mapping]:
        if not oracle(current):
            return
        if not remaining:
            yield current.assigned()
            return
        variable = remaining[0]
        rest = remaining[1:]
        if variable in current:
            yield from recurse(current, rest)
            return
        for value in spans:
            yield from recurse(current.pin(variable, value), rest)
        yield from recurse(current.pin(variable, NULL), rest)

    yield from recurse(initial, ordered)


def enumerate_va(va: VA, document: "Document | str") -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧_d`` with the ``Eval[VA]`` oracle (poly delay when
    the automaton is sequential)."""
    text = as_text(document)

    def oracle(candidate: ExtendedMapping) -> bool:
        return eval_va(va, text, candidate)

    return enumerate_with_oracle(oracle, va.mentioned_variables, text)


def enumerate_rgx(expression, document: "Document | str") -> Iterator[Mapping]:
    """Enumerate ``⟦γ⟧_d`` through the Thompson translation."""
    from repro.automata.thompson import to_va

    return enumerate_va(to_va(expression), document)


def enumerate_direct(va: VA, document: "Document | str") -> Iterator[Mapping]:
    """Baseline: materialise the run DAG and iterate (ablation A1).

    Exact and usually fast, but offers no delay guarantee — the gap to
    :func:`enumerate_va` is what benchmark A1 quantifies.
    """
    from repro.automata.simulate import evaluate_va

    yield from evaluate_va(va, document)
