"""Polynomial-delay enumeration via the ``Eval`` oracle (Theorem 5.1).

Algorithm 2 of the paper: refine an extended mapping one variable at a
time, trying every span of the document plus ``⊥``, and recurse only when
the oracle confirms a completion still exists.  When ``Eval`` is decidable
in polynomial time — sequential RGX/VA, Theorem 5.7 — the time between two
consecutive outputs is ``O(|vars| · |d|² · poly)``, a polynomial delay.

The module also exposes :func:`enumerate_direct`, the run-DAG evaluator of
:mod:`repro.automata.simulate`, as the non-oracle baseline for ablation A1.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.automata.va import VA
from repro.evaluation.eval_problem import eval_va
from repro.spans.document import Document, as_text
from repro.spans.mapping import NULL, ExtendedMapping, Mapping, Variable
from repro.spans.span import Span

EvalOracle = Callable[[ExtendedMapping], bool]


def enumerate_with_oracle(
    oracle: EvalOracle,
    variables: Iterable[Variable],
    document: "Document | str",
    start: ExtendedMapping | None = None,
) -> Iterator[Mapping]:
    """Algorithm 2, generic in the oracle.

    Yields every mapping ``µ' ∈ ⟦γ⟧_d`` with ``µ' ⊇ start`` exactly once
    (each output corresponds to one full assignment of spans/⊥ to the
    variables, and distinct assignments yield distinct mappings).

    The ``O(|d|²)`` candidate-span list is materialised lazily: when every
    variable is already pinned by ``start`` (or there are no variables at
    all) the algorithm never builds it.
    """
    text = as_text(document)
    ordered = sorted(set(variables))
    initial = ExtendedMapping.empty() if start is None else start
    spans: list[Span] = []
    unpinned = [variable for variable in ordered if variable not in initial]
    if unpinned:
        spans = [
            Span(i, j)
            for i in range(1, len(text) + 2)
            for j in range(i, len(text) + 2)
        ]

    def recurse(current: ExtendedMapping, remaining: list[Variable]) -> Iterator[Mapping]:
        if not oracle(current):
            return
        if not remaining:
            yield current.assigned()
            return
        variable = remaining[0]
        rest = remaining[1:]
        if variable in current:
            yield from recurse(current, rest)
            return
        for value in spans:
            yield from recurse(current.pin(variable, value), rest)
        yield from recurse(current.pin(variable, NULL), rest)

    yield from recurse(initial, ordered)


def enumerate_va(
    va: VA, document: "Document | str", compiled: bool = True
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧_d`` via Algorithm 2 (poly delay when sequential).

    By default this routes through the compiled engine
    (:mod:`repro.engine`): precompiled transition tables, span pruning, and
    prefix-sharing oracles, with the same outputs in the same order.  Pass
    ``compiled=False`` for the seed oracle loop — kept as the reference
    implementation and as the baseline of benchmark E19.
    """
    if compiled:
        from repro.engine.compiled import compile_spanner

        return compile_spanner(va).enumerate(document)
    return enumerate_va_oracle(va, document)


def enumerate_va_oracle(va: VA, document: "Document | str") -> Iterator[Mapping]:
    """The seed path: Algorithm 2 over the uncompiled ``Eval[VA]`` oracle."""
    text = as_text(document)

    def oracle(candidate: ExtendedMapping) -> bool:
        return eval_va(va, text, candidate)

    return enumerate_with_oracle(oracle, va.mentioned_variables, text)


def enumerate_rgx(
    expression, document: "Document | str", compiled: bool = True
) -> Iterator[Mapping]:
    """Enumerate ``⟦γ⟧_d`` through the Thompson translation."""
    from repro.automata.thompson import to_va

    return enumerate_va(to_va(expression), document, compiled=compiled)


def enumerate_direct(va: VA, document: "Document | str") -> Iterator[Mapping]:
    """Baseline: materialise the run DAG and iterate (ablation A1).

    Exact and usually fast, but offers no delay guarantee — the gap to
    :func:`enumerate_va` is what benchmark A1 quantifies.
    """
    from repro.automata.simulate import evaluate_va

    yield from evaluate_va(va, document)
