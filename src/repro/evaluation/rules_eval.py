"""Polynomial evaluation of sequential tree-like rules (Theorem 5.9).

The paper's algorithm embeds the pinned variable operations into the
document and walks the rule tree with an alternating procedure, guessing
the spans of free variables.  This module implements it as interval
dynamic programming:

* ``check(node, begin, end)`` (memoised) decides whether the node's
  formula matches the document interval, consuming the *embedded
  operations* of its pinned direct children (which both places and forces
  them), recursing into children for their subtrees;
* because spanRGX capture bodies are ``Σ*``, at most one child capture is
  open at a time, so a DP state is just ``(nfa state, position, remaining
  ops at this position, open position, matched required children)``;
* free children with a pinned descendant are *required* — they must be
  matched for the descendant to be instantiable — and tracked in the DP.

``Eval`` in PTIME turns into polynomial-delay enumeration via
Algorithm 2 (:func:`enumerate_treelike_rule`), which is what benchmark E7
measures.
"""

from __future__ import annotations

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.thompson import to_va
from repro.automata.va import VA
from repro.evaluation.enumerate import enumerate_with_oracle
from repro.rules.graph import DOC, is_tree_like
from repro.rules.rule import Rule
from repro.spans.document import Document, as_text
from repro.spans.mapping import ExtendedMapping, Variable
from repro.spans.span import Span
from repro.util.errors import RuleError


class _TreeRuleEvaluator:
    def __init__(self, rule: Rule, text: str, pinned: ExtendedMapping) -> None:
        self.text = text
        self.end = len(text) + 1
        self.rule = rule
        self.formula_of: dict[str, object] = {DOC: rule.root}
        self.formula_of.update(dict(rule.conjuncts))
        self.automata: dict[str, VA] = {
            node: to_va(formula) for node, formula in self.formula_of.items()
        }
        self.pinned_spans: dict[Variable, Span] = dict(pinned.assigned().items())
        self.nulled: frozenset[Variable] = pinned.nulled()
        self.children: dict[str, frozenset[Variable]] = {
            node: formula.variables()
            for node, formula in self.formula_of.items()
        }
        self._memo: dict[tuple[str, int, int], bool] = {}
        self._required: dict[str, bool] = {}

    # -- static structure ---------------------------------------------------------

    def required(self, node: Variable) -> bool:
        """Must this node be matched (pinned span here or deeper)?"""
        cached = self._required.get(node)
        if cached is not None:
            return cached
        result = node in self.pinned_spans or any(
            self.required(child)
            for child in self.children.get(node, frozenset())
        )
        self._required[node] = result
        return result

    def globally_consistent(self) -> bool:
        """Cheap rejections before any DP (the paper's step-1 checks)."""
        heads = set(self.rule.heads)
        for variable in self.pinned_spans:
            if variable not in heads:
                return False
        for variable in self.nulled:
            # A ⊥-pinned variable with a pinned descendant is contradictory.
            for child in self.children.get(variable, frozenset()):
                if self.required(child):
                    return False
        return True

    # -- the interval DP ------------------------------------------------------------

    def check(self, node: str, begin: int, end: int) -> bool:
        key = (node, begin, end)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._memo[key] = False  # cycle guard (tree: no real cycles)
        result = self._run_dp(node, begin, end)
        self._memo[key] = result
        return result

    def _batches(self, node: str, begin: int, end: int) -> dict[int, frozenset]:
        """Embedded operations of pinned direct children, per position."""
        batches: dict[int, set] = {}
        for child in self.children.get(node, frozenset()):
            span = self.pinned_spans.get(child)
            if span is None:
                continue
            batches.setdefault(span.begin, set()).add(Open(child))
            batches.setdefault(span.end, set()).add(Close(child))
        return {
            position: frozenset(ops) for position, ops in batches.items()
        }

    def _run_dp(self, node: str, begin: int, end: int) -> bool:
        va = self.automata[node]
        batches = self._batches(node, begin, end)
        # Every embedded operation must lie inside the interval.
        for position in batches:
            if not begin <= position <= end:
                return False
        required_children = tuple(
            sorted(
                child
                for child in self.children.get(node, frozenset())
                if child not in self.pinned_spans and self.required(child)
            )
        )
        all_required = frozenset(required_children)

        def batch_at(position: int) -> frozenset:
            return batches.get(position, frozenset())

        # DP state: (va state, position, remaining ops here, open position
        # of the current capture or None, matched required children).
        start = (va.initial, begin, batch_at(begin), None, frozenset())
        seen = {start}
        frontier = [start]
        while frontier:
            state, pos, remaining, open_pos, matched = frontier.pop()
            if (
                state == va.final
                and pos == end
                and not remaining
                and matched == all_required
            ):
                return True
            for label, target in va.out_edges(state):
                moves = self._moves(
                    label, target, pos, remaining, open_pos, matched, end, batch_at
                )
                for nxt in moves:
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
        return False

    def _moves(
        self,
        label,
        target: int,
        pos: int,
        remaining: frozenset,
        open_pos,
        matched: frozenset,
        end: int,
        batch_at,
    ):
        if isinstance(label, Eps):
            yield (target, pos, remaining, open_pos, matched)
            return
        if isinstance(label, Sym):
            if remaining or pos >= end or pos > len(self.text):
                return
            if label.charset.contains(self.text[pos - 1]):
                yield (target, pos + 1, batch_at(pos + 1), open_pos, matched)
            return
        if isinstance(label, Open):
            child = label.variable
            if child in self.nulled:
                return
            if child in self.pinned_spans:
                op = Open(child)
                if op in remaining:
                    yield (target, pos, remaining - {op}, pos, matched)
                return
            yield (target, pos, remaining, pos, matched)
            return
        if isinstance(label, Close):
            child = label.variable
            if open_pos is None:
                return
            if child in self.pinned_spans:
                op = Close(child)
                if op not in remaining:
                    return
                if not self.check(child, open_pos, pos):
                    return
                yield (target, pos, remaining - {op}, None, matched)
                return
            if not self.check(child, open_pos, pos):
                return
            new_matched = (
                matched | {child} if self.required(child) else matched
            )
            yield (target, pos, remaining, None, new_matched)


def eval_treelike_rule(
    rule: Rule, document: "Document | str", pinned: ExtendedMapping
) -> bool:
    """``Eval`` for sequential tree-like rules, in polynomial time."""
    if not is_tree_like(rule):
        raise RuleError("Theorem 5.9 expects a tree-like rule")
    if not rule.is_sequential():
        raise RuleError("Theorem 5.9 expects sequential formulas")
    normalized = rule.normalized()
    text = as_text(document)
    evaluator = _TreeRuleEvaluator(normalized, text, pinned)
    if not evaluator.globally_consistent():
        return False
    return evaluator.check(DOC, 1, len(text) + 1)


def enumerate_treelike_rule(rule: Rule, document: "Document | str"):
    """Polynomial-delay enumeration of ``⟦ϕ⟧_d`` (Theorems 5.9 + 5.1)."""
    text = as_text(document)
    normalized = rule.normalized()

    def oracle(candidate: ExtendedMapping) -> bool:
        return eval_treelike_rule(normalized, text, candidate)

    return enumerate_with_oracle(oracle, normalized.variables(), text)
