"""The ``Eval[L]`` decision problem (paper, Section 5.1).

``Eval`` takes an expression/automaton, a document, and an *extended*
mapping ``µ`` (variables pinned to spans, pinned to ``⊥``, or left free)
and asks whether some ``µ' ⊇ µ`` is in ``⟦γ⟧_d``.  Theorem 5.1 turns a
polynomial ``Eval`` into polynomial-delay enumeration, so this module is
the engine room of Section 5.

Two algorithms, dispatched on sequentiality:

* :func:`eval_sequential_va` — Theorem 5.7.  The paper embeds the pinned
  variable operations into the document as *coalesced* operation sets
  ``T_i`` and reduces to NFA acceptance; counting suffices because a
  sequential path can never repeat an operation.  Our sweep keeps, per
  document position, reachable pairs ``(state, #required ops performed)``.
  Pinned operations elsewhere are forbidden, free variables' operations
  act as ε-moves (sequentiality guarantees their consistency along any
  accepting path).

* :func:`eval_general_va` — the fixed-parameter-tractable algorithm behind
  Theorem 5.10.  Without sequentiality the sweep additionally tracks the
  *set* of required operations performed at the current position and a
  global status for every free variable — ``O(2^{2k} · 3^k)`` states per
  position, i.e. exponential only in the number of variables ``k``.
  (The paper iterates over the ``k!`` orderings of each coalesced set
  instead; the set-tracking formulation is the same FPT class and is
  benchmarked against the ordering-based variant in ablation A2.)
"""

from __future__ import annotations

from repro.automata.labels import Close, Eps, Label, Open, Sym
from repro.automata.sequential import is_sequential
from repro.automata.va import VA
from repro.spans.document import Document, as_text
from repro.spans.mapping import ExtendedMapping, Mapping, Variable
from repro.spans.span import Span


def eval_va(va: VA, document: "Document | str", pinned: ExtendedMapping) -> bool:
    """``Eval[VA]`` — dispatches on sequentiality (Theorems 5.7 / 5.10)."""
    if is_sequential(va):
        return eval_sequential_va(va, document, pinned)
    return eval_general_va(va, document, pinned)


def eval_rgx(expression, document: "Document | str", pinned: ExtendedMapping) -> bool:
    """``Eval[RGX]`` via the Thompson translation (Propositions 5.3/5.6)."""
    from repro.automata.thompson import to_va

    return eval_va(to_va(expression), document, pinned)


class _Requirements:
    """Pinned operations indexed by document position."""

    def __init__(
        self, va: VA, text: str, pinned: ExtendedMapping
    ) -> None:
        self.valid = True
        end = len(text) + 1
        self.opens: dict[int, set[Label]] = {}
        self.closes: dict[int, set[Label]] = {}
        self.required: dict[int, frozenset[Label]] = {}
        self.pinned_variables: set[Variable] = set()
        self.null_variables: set[Variable] = set()
        automaton_variables = va.variables
        for variable, value in pinned.items():
            if value is None:
                continue
            if isinstance(value, Span):
                if variable not in automaton_variables:
                    self.valid = False  # no run can ever assign it
                    return
                if value.end > end or value.begin < 1:
                    self.valid = False
                    return
                self.pinned_variables.add(variable)
                self.opens.setdefault(value.begin, set()).add(Open(variable))
                self.closes.setdefault(value.end, set()).add(Close(variable))
            else:
                self.null_variables.add(variable)
        for pos in range(1, end + 1):
            ops = self.opens.get(pos, set()) | self.closes.get(pos, set())
            if ops:
                self.required[pos] = frozenset(ops)

    def required_at(self, pos: int) -> frozenset[Label]:
        return self.required.get(pos, frozenset())

    def classify(self, label: Label, pos: int) -> str:
        """One of ``"required"``, ``"free"``, ``"forbidden"`` for an op here."""
        variable = label.variable  # type: ignore[union-attr]
        if variable in self.null_variables:
            # A variable opened but never closed is *unused* (VA semantics),
            # which is exactly what a ⊥ pin demands — so the open stays
            # available and only the close (which would assign) is forbidden.
            return "forbidden" if isinstance(label, Close) else "free"
        if variable in self.pinned_variables:
            return "required" if label in self.required_at(pos) else "forbidden"
        return "free"


def eval_sequential_va(
    va: VA, document: "Document | str", pinned: ExtendedMapping
) -> bool:
    """Theorem 5.7's polynomial algorithm (position sweep with counters)."""
    text = as_text(document)
    end = len(text) + 1
    requirements = _Requirements(va, text, pinned)
    if not requirements.valid:
        return False

    # Reachable (state, performed-count) pairs at the current position.
    current: set[tuple[int, int]] = set()
    _position_closure(va, {(va.initial, 0)}, current, requirements, 1)
    for pos in range(1, end):
        needed = len(requirements.required_at(pos))
        letter = text[pos - 1]
        seeds = {
            (target, 0)
            for state, count in current
            if count == needed
            for label, target in va.out_edges(state)
            if isinstance(label, Sym) and label.charset.contains(letter)
        }
        current = set()
        _position_closure(va, seeds, current, requirements, pos + 1)
        if not current:
            return False
    needed = len(requirements.required_at(end))
    return (va.final, needed) in current


def _position_closure(
    va: VA,
    seeds: set[tuple[int, int]],
    out: set[tuple[int, int]],
    requirements: _Requirements,
    pos: int,
) -> None:
    """Saturate ε/operation moves available without consuming a letter."""
    frontier = list(seeds)
    out.update(seeds)
    required = requirements.required_at(pos)
    total = len(required)
    while frontier:
        state, count = frontier.pop()
        for label, target in va.out_edges(state):
            if isinstance(label, Eps):
                nxt = (target, count)
            elif isinstance(label, (Open, Close)):
                kind = requirements.classify(label, pos)
                if kind == "forbidden":
                    continue
                if kind == "required":
                    if count >= total:
                        continue
                    nxt = (target, count + 1)
                else:
                    nxt = (target, count)
            else:
                continue
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)


_FRESH, _OPEN, _DONE = range(3)


def eval_general_va(
    va: VA, document: "Document | str", pinned: ExtendedMapping
) -> bool:
    """The FPT algorithm of Theorem 5.10 (set + status tracking)."""
    text = as_text(document)
    end = len(text) + 1
    requirements = _Requirements(va, text, pinned)
    if not requirements.valid:
        return False
    # ⊥-pinned variables stay status-tracked: their opens are legal ε-moves
    # (an unclosed open leaves the variable unused) but may fire at most once
    # on a run, and their closes are forbidden by `classify`.
    free_variables = tuple(
        sorted(va.mentioned_variables - requirements.pinned_variables)
    )
    index = {variable: i for i, variable in enumerate(free_variables)}

    # A sweep state: (automaton state, frozenset of required ops performed
    # at this position, statuses of free variables).
    initial = (va.initial, frozenset(), (_FRESH,) * len(free_variables))
    current: set[tuple] = set()
    _general_closure(va, {initial}, current, requirements, index, 1)
    for pos in range(1, end):
        required = requirements.required_at(pos)
        letter = text[pos - 1]
        seeds = set()
        for state, done, statuses in current:
            if done != required:
                continue
            for label, target in va.out_edges(state):
                if isinstance(label, Sym) and label.charset.contains(letter):
                    seeds.add((target, frozenset(), statuses))
        current = set()
        _general_closure(va, seeds, current, requirements, index, pos + 1)
        if not current:
            return False
    required = requirements.required_at(end)
    return any(
        state == va.final and done == required for state, done, _ in current
    )


def _general_closure(
    va: VA,
    seeds: set[tuple],
    out: set[tuple],
    requirements: _Requirements,
    index: dict[Variable, int],
    pos: int,
) -> None:
    frontier = list(seeds)
    out.update(seeds)
    required = requirements.required_at(pos)
    while frontier:
        state, done, statuses = frontier.pop()
        for label, target in va.out_edges(state):
            if isinstance(label, Eps):
                nxt = (target, done, statuses)
            elif isinstance(label, (Open, Close)):
                kind = requirements.classify(label, pos)
                if kind == "forbidden":
                    continue
                if kind == "required":
                    if label in done or label not in required:
                        continue
                    if (
                        isinstance(label, Close)
                        and Open(label.variable) in required
                        and Open(label.variable) not in done
                    ):
                        # Empty pinned span: the open must precede the close
                        # within this position for the run to be valid.
                        continue
                    nxt = (target, done | {label}, statuses)
                else:
                    i = index[label.variable]
                    if isinstance(label, Open):
                        if statuses[i] != _FRESH:
                            continue
                        updated = statuses[:i] + (_OPEN,) + statuses[i + 1 :]
                    else:
                        if statuses[i] != _OPEN:
                            continue
                        updated = statuses[:i] + (_DONE,) + statuses[i + 1 :]
                    nxt = (target, done, updated)
            else:
                continue
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)


def eval_va_permutation_baseline(
    va: VA, document: "Document | str", pinned: ExtendedMapping
) -> bool:
    """The paper's ordering-based FPT variant (ablation A2 baseline).

    At each position, iterate over all orderings of the coalesced required
    set ``T_i`` and check a path performing exactly that sequence exists
    (free operations and ε interleaved).  Exponentially slower in the
    per-position operation count than the set-tracking algorithm, with the
    same answers — asserted by the ablation benchmark.
    """
    from itertools import permutations

    text = as_text(document)
    end = len(text) + 1
    requirements = _Requirements(va, text, pinned)
    if not requirements.valid:
        return False
    # ⊥-pinned variables stay status-tracked: their opens are legal ε-moves
    # (an unclosed open leaves the variable unused) but may fire at most once
    # on a run, and their closes are forbidden by `classify`.
    free_variables = tuple(
        sorted(va.mentioned_variables - requirements.pinned_variables)
    )
    index = {variable: i for i, variable in enumerate(free_variables)}

    def position_reach(seeds: set[tuple], pos: int) -> set[tuple]:
        """(state, consumed-prefix-length, statuses) reach via one ordering."""
        required = sorted(requirements.required_at(pos), key=str)
        results: set[tuple] = set()
        orderings = [
            ordering
            for ordering in (permutations(required) if required else [()])
            if _ordering_valid(ordering)
        ]
        for ordering in orderings:
            reached: set[tuple] = set()
            frontier = [
                (state, 0, statuses) for (state, statuses) in seeds
            ]
            reached.update(frontier)
            while frontier:
                state, consumed, statuses = frontier.pop()
                for label, target in va.out_edges(state):
                    if isinstance(label, Eps):
                        nxt = (target, consumed, statuses)
                    elif isinstance(label, (Open, Close)):
                        kind = requirements.classify(label, pos)
                        if kind == "forbidden":
                            continue
                        if kind == "required":
                            if consumed >= len(ordering) or ordering[consumed] != label:
                                continue
                            nxt = (target, consumed + 1, statuses)
                        else:
                            i = index[label.variable]
                            if isinstance(label, Open):
                                if statuses[i] != _FRESH:
                                    continue
                                updated = statuses[:i] + (_OPEN,) + statuses[i + 1 :]
                            else:
                                if statuses[i] != _OPEN:
                                    continue
                                updated = statuses[:i] + (_DONE,) + statuses[i + 1 :]
                            nxt = (target, consumed, updated)
                    else:
                        continue
                    if nxt not in reached:
                        reached.add(nxt)
                        frontier.append(nxt)
            results |= {
                (state, statuses)
                for state, consumed, statuses in reached
                if consumed == len(ordering)
            }
        return results

    current = position_reach({(va.initial, (_FRESH,) * len(free_variables))}, 1)
    for pos in range(1, end):
        letter = text[pos - 1]
        seeds = {
            (target, statuses)
            for state, statuses in current
            for label, target in va.out_edges(state)
            if isinstance(label, Sym) and label.charset.contains(letter)
        }
        current = position_reach(seeds, pos + 1)
        if not current:
            return False
    return any(state == va.final for state, _ in current)


def _ordering_valid(ordering: tuple[Label, ...]) -> bool:
    """An ordering of coalesced operations must open before it closes."""
    members = set(ordering)
    seen: set[Label] = set()
    for label in ordering:
        if isinstance(label, Close):
            matching_open = Open(label.variable)
            if matching_open in members and matching_open not in seen:
                return False
        seen.add(label)
    return True


def model_check_va(va: VA, document: "Document | str", mapping: Mapping) -> bool:
    """``ModelCheck[VA]``: is ``µ ∈ ⟦A⟧_d`` exactly (Section 5.1)?

    Implemented as the special case of ``Eval`` where every variable of the
    automaton not assigned by ``µ`` is pinned to ``⊥``.
    """
    pinned = ExtendedMapping.total_for(mapping, va.mentioned_variables)
    return eval_va(va, document, pinned)


def non_empty_va(va: VA, document: "Document | str") -> bool:
    """``NonEmp[VA]``: is ``⟦A⟧_d`` non-empty?  (= ``Eval`` with empty µ.)"""
    return eval_va(va, document, ExtendedMapping.empty())
