"""Evaluation of extraction languages (paper, Section 5)."""

from repro.evaluation.enumerate import (
    enumerate_direct,
    enumerate_rgx,
    enumerate_va,
    enumerate_va_oracle,
    enumerate_with_oracle,
)
from repro.evaluation.eval_problem import (
    eval_general_va,
    eval_rgx,
    eval_sequential_va,
    eval_va,
    eval_va_permutation_baseline,
    model_check_va,
    non_empty_va,
)

__all__ = [
    "enumerate_direct",
    "enumerate_rgx",
    "enumerate_va",
    "enumerate_va_oracle",
    "enumerate_with_oracle",
    "eval_general_va",
    "eval_rgx",
    "eval_sequential_va",
    "eval_va",
    "eval_va_permutation_baseline",
    "model_check_va",
    "non_empty_va",
]
